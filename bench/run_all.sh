#!/usr/bin/env bash
# Builds the benchmark suite in Release mode and runs every bench_*
# binary, then merges the BENCH_*.json files the JSON-emitting benches
# write into one BENCH_summary.json.
#
#   $ bench/run_all.sh <stamp>
#
# `stamp` is required and recorded verbatim in the summary (a commit
# hash, a CI run id, ...); the script does not read the clock, so reruns
# of the same tree with the same stamp produce byte-identical summaries.
# Exits nonzero if any bench fails — every bench still runs, and the
# failures are listed at the end.
#
# MDDC_SWEEP_MAX_FACTS is exported through to the benches that honor it
# (the scaling sweeps), so e.g.
#
#   $ MDDC_SWEEP_MAX_FACTS=100000 bench/run_all.sh nightly-42
#
# keeps the whole suite to a few minutes on a laptop, and
#
#   $ MDDC_SWEEP_MAX_FACTS=10000000 bench/run_all.sh soak-42
#
# is the large-scale 10^7-fact mode (several GB of RSS; the sweeps that
# honor the cap extend their fact axis to it). Benches that emit JSON
# record the process peak RSS (getrusage ru_maxrss) in their BENCH_*.json
# so memory regressions show up in the merged summary alongside time.
set -euo pipefail

if [ "$#" -lt 1 ] || [ -z "${1}" ]; then
  echo "usage: $0 <stamp>" >&2
  echo "  stamp: a non-empty run identifier (commit hash, CI run id, ...)" >&2
  exit 1
fi
STAMP="$1"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${REPO_ROOT}/build-bench"

cmake -S "${REPO_ROOT}" -B "${BUILD_DIR}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${BUILD_DIR}" -j

# Benches write their BENCH_*.json next to the cwd; collect them in one
# place so the merge below sees exactly this run's output.
RUN_DIR="${BUILD_DIR}/bench-results"
rm -rf "${RUN_DIR}"
mkdir -p "${RUN_DIR}"
cd "${RUN_DIR}"

# Run every bench even if one fails; collect failures and report them at
# the end so a broken bench can't hide behind an early exit.
FAILED=()
for bench in "${BUILD_DIR}"/bench/bench_*; do
  [ -x "${bench}" ] || continue
  echo "==== $(basename "${bench}") ===="
  if ! "${bench}"; then
    echo "FAILED: $(basename "${bench}")" >&2
    FAILED+=("$(basename "${bench}")")
  fi
done

# Merge every BENCH_*.json into BENCH_summary.json (skipping the summary
# itself, so reruns are idempotent). Plain shell concatenation: each
# per-bench file is already a complete JSON object.
SUMMARY="BENCH_summary.json"
rm -f "${SUMMARY}"
{
  printf '{\n  "stamp": "%s",\n  "benches": [\n' "${STAMP}"
  first=1
  for json in BENCH_*.json; do
    [ "${json}" = "${SUMMARY}" ] && continue
    [ -f "${json}" ] || continue
    [ "${first}" -eq 0 ] && printf '    ,\n'
    first=0
    sed 's/^/    /' "${json}"
  done
  printf '  ]\n}\n'
} > "${SUMMARY}"

echo "wrote ${RUN_DIR}/${SUMMARY}"

if [ "${#FAILED[@]}" -gt 0 ]; then
  echo "${#FAILED[@]} bench(es) failed:" >&2
  printf '  %s\n' "${FAILED[@]}" >&2
  exit 1
fi
