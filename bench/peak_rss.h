#ifndef MDDC_BENCH_PEAK_RSS_H_
#define MDDC_BENCH_PEAK_RSS_H_

// Shared by the JSON-emitting benches: every BENCH_*.json records the
// process peak RSS next to its timings so memory regressions show up in
// the merged BENCH_summary.json (see bench/run_all.sh).

#include <sys/resource.h>

#include <cstddef>

namespace mddc_bench {

/// Peak resident set size of this process so far, in kilobytes
/// (getrusage ru_maxrss).
inline std::size_t PeakRssKb() {
  struct rusage usage = {};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<std::size_t>(usage.ru_maxrss);
}

}  // namespace mddc_bench

#endif  // MDDC_BENCH_PEAK_RSS_H_
