// Compiled-rollup-index sweep: fan-out x depth x fact count, the
// flat-table aggregate path (engine/rollup_index.h) against the memoized
// closure traversal it replaces, with a one-time bit-identity check per
// configuration before any timing counts. Results go to stdout as a
// table and to BENCH_rollup.json as machine-readable records.
//
//   $ ./bench/bench_rollup_index
//
// MDDC_SWEEP_MAX_FACTS caps the largest fact count (default 1000000),
// e.g. MDDC_SWEEP_MAX_FACTS=100000 for a quick run or sanitizer builds.
//
// The hierarchy is hand-built, strict and non-temporal — `depth` ragged
// levels below top, every value with `fanout` children — so the
// strictness gate holds, the flat table engages, and the measured time
// is rollup resolution rather than workload generation.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "algebra/operators.h"
#include "engine/executor.h"
#include "engine/rollup_index.h"
#include "io/serialize.h"
#include "peak_rss.h"

namespace {

using namespace mddc;

/// A strict `depth`-level hierarchy (excluding top): level 0 is the
/// bottom with fanout^(depth-1) values, each level-k value's parent is
/// its index divided by `fanout` at level k+1.
struct SyntheticDim {
  Dimension dimension;
  CategoryTypeIndex bottom = 0;
  CategoryTypeIndex coarsest = 0;  // highest category below top
  std::vector<ValueId> bottom_values;
};

SyntheticDim MakeHierarchy(std::size_t fanout, std::size_t depth) {
  DimensionTypeBuilder builder("Synth");
  for (std::size_t level = 0; level < depth; ++level) {
    builder.AddCategory("L" + std::to_string(level),
                        AggregationType::kConstant);
    if (level > 0) {
      builder.AddOrder("L" + std::to_string(level - 1),
                       "L" + std::to_string(level));
    }
  }
  auto type = std::move(builder.Build()).ValueOrDie();
  Dimension dimension(type);

  std::uint64_t next_id = 1;
  std::vector<std::vector<ValueId>> levels(depth);
  std::size_t width = 1;
  for (std::size_t level = depth; level-- > 0;) {
    CategoryTypeIndex category = *type->Find("L" + std::to_string(level));
    for (std::size_t i = 0; i < width; ++i) {
      ValueId id(next_id++);
      (void)dimension.AddValue(category, id);
      levels[level].push_back(id);
      if (level + 1 < depth) {
        (void)dimension.AddOrder(id, levels[level + 1][i / fanout]);
      }
    }
    width *= fanout;
  }

  SyntheticDim result{std::move(dimension), *type->Find("L0"),
                      *type->Find("L" + std::to_string(depth - 1)),
                      std::move(levels[0])};
  return result;
}

MdObject MakeMo(const SyntheticDim& synth, std::size_t num_facts,
                std::shared_ptr<FactRegistry> registry) {
  MdObject mo("Event", {synth.dimension}, registry,
              TemporalType::kSnapshot);
  for (std::size_t i = 0; i < num_facts; ++i) {
    FactId fact = registry->Atom(i);
    (void)mo.AddFact(fact);
    (void)mo.Relate(0, fact,
                    synth.bottom_values[i % synth.bottom_values.size()],
                    Lifespan::AlwaysSpan());
  }
  return mo;
}

struct SweepRow {
  std::size_t fanout = 0;
  std::size_t depth = 0;
  std::size_t facts = 0;
  double memo_ms = 0.0;
  double index_ms = 0.0;
  double speedup = 1.0;
  std::size_t index_hits = 0;
  bool bit_identical = false;
};

double TimeAggregateMs(const MdObject& mo, const AggregateSpec& spec,
                       ExecContext* exec, int iterations) {
  double best = 1e300;
  for (int i = 0; i < iterations; ++i) {
    auto start = std::chrono::steady_clock::now();
    auto result = AggregateFormation(mo, spec, exec);
    auto stop = std::chrono::steady_clock::now();
    if (!result.ok()) {
      std::fprintf(stderr, "aggregate failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (ms < best) best = ms;
  }
  return best;
}

void WriteJson(const std::vector<SweepRow>& rows, const char* path) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"rollup_index\",\n  \"peak_rss_kb\": %zu,\n"
               "  \"rows\": [\n",
               mddc_bench::PeakRssKb());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& r = rows[i];
    std::fprintf(out,
                 "    {\"fanout\": %zu, \"depth\": %zu, \"facts\": %zu, "
                 "\"memo_ms\": %.3f, \"index_ms\": %.3f, "
                 "\"speedup_vs_memo\": %.3f, \"index_hits\": %zu, "
                 "\"bit_identical\": %s}%s\n",
                 r.fanout, r.depth, r.facts, r.memo_ms, r.index_ms,
                 r.speedup, r.index_hits,
                 r.bit_identical ? "true" : "false",
                 i + 1 == rows.size() ? "" : ",");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main() {
  std::size_t max_facts = 1000000;
  if (const char* cap = std::getenv("MDDC_SWEEP_MAX_FACTS")) {
    max_facts = static_cast<std::size_t>(std::strtoull(cap, nullptr, 10));
  }

  std::vector<SweepRow> rows;
  std::printf("%7s %6s %9s %10s %10s %9s %10s %6s\n", "fanout", "depth",
              "facts", "memo_ms", "index_ms", "speedup", "index_hits",
              "ident");
  for (std::size_t fanout : {std::size_t{4}, std::size_t{16}}) {
    for (std::size_t depth : {std::size_t{3}, std::size_t{5}}) {
      if (fanout == 16 && depth == 5) continue;  // 65k values is plenty
      SyntheticDim synth = MakeHierarchy(fanout, depth);
      for (std::size_t facts : {std::size_t{10000}, std::size_t{100000},
                                std::size_t{1000000}}) {
        if (facts > max_facts) continue;
        auto registry = std::make_shared<FactRegistry>();
        MdObject mo = MakeMo(synth, facts, registry);
        // Roll all the way up to the coarsest real category: the longest
        // traversal, and one flat-table lookup for the index.
        AggregateSpec spec{AggFunction::SetCount(),
                           {synth.coarsest},
                           ResultDimensionSpec::Auto(),
                           kNowChronon,
                           /*enforce_aggregation_types=*/true};
        const int iterations = facts >= 1000000 ? 3 : 5;

        SweepRow row;
        row.fanout = fanout;
        row.depth = depth;
        row.facts = facts;

        auto memoized = AggregateFormation(mo, spec);
        if (!memoized.ok()) {
          std::fprintf(stderr, "memoized aggregate failed: %s\n",
                       memoized.status().ToString().c_str());
          return 1;
        }
        const std::string memo_bytes =
            std::move(io::WriteMo(*memoized)).ValueOrDie();
        {
          // Bit-identity, once per configuration, before any timing.
          ExecContext check(1, /*min_facts=*/1);
          auto indexed = AggregateFormation(mo, spec, &check);
          row.bit_identical =
              indexed.ok() &&
              std::move(io::WriteMo(*indexed)).ValueOrDie() == memo_bytes;
          if (!row.bit_identical) {
            std::fprintf(stderr,
                         "FATAL: indexed aggregate not bit-identical at "
                         "fanout=%zu depth=%zu facts=%zu\n",
                         fanout, depth, facts);
            return 1;
          }
          if (check.stats.index_fallbacks != 0) {
            std::fprintf(stderr,
                         "FATAL: flat-table gate failed on a strict "
                         "hierarchy\n");
            return 1;
          }
        }

        row.memo_ms = TimeAggregateMs(mo, spec, nullptr, iterations);
        ExecContext ctx(1, /*min_facts=*/1);
        row.index_ms = TimeAggregateMs(mo, spec, &ctx, iterations);
        row.speedup =
            row.index_ms > 0.0 ? row.memo_ms / row.index_ms : 1.0;
        row.index_hits = ctx.stats.index_hits;
        rows.push_back(row);
        std::printf("%7zu %6zu %9zu %10.3f %10.3f %9.2f %10zu %6s\n",
                    row.fanout, row.depth, row.facts, row.memo_ms,
                    row.index_ms, row.speedup, row.index_hits,
                    row.bit_identical ? "yes" : "NO");
      }
    }
  }
  WriteJson(rows, "BENCH_rollup.json");
  return 0;
}
