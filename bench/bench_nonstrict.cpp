// Non-strict hierarchies (requirement 5): the cost and the semantics of
// aggregation when low-level diagnoses live in several families. Shows
// (a) the correct once-per-group counting under growing non-strictness,
// (b) the aggregation-type degradation that blocks unsafe reuse, and
// (c) the cost trend as non-strictness grows (more groups per fact).
//
//   $ ./bench/bench_nonstrict

#include <benchmark/benchmark.h>

#include <iostream>

#include "algebra/operators.h"
#include "core/properties.h"
#include "workload/clinical_generator.h"

namespace {

using namespace mddc;

ClinicalMo BuildWorkload(double non_strict_rate) {
  ClinicalWorkloadParams params;
  params.num_patients = 400;
  params.num_groups = 4;
  params.non_strict_rate = non_strict_rate;
  // Isolate the non-strictness effect: one certain, low-level diagnosis
  // per patient and no temporal churn, so any count overlap comes from
  // the hierarchy alone.
  params.mean_extra_diagnoses = 0.0;
  params.reclassified_rate = 0.0;
  params.uncertain_rate = 0.0;
  params.coarse_granularity_rate = 0.0;
  return std::move(
             GenerateClinicalWorkload(params,
                                      std::make_shared<FactRegistry>()))
      .ValueOrDie();
}

AggregateSpec GroupSpec(const ClinicalMo& workload) {
  AggregateSpec spec{AggFunction::SetCount(), {}, ResultDimensionSpec::Auto(),
                     kNowChronon, true};
  for (std::size_t i = 0; i < workload.mo.dimension_count(); ++i) {
    spec.grouping.push_back(i == workload.diagnosis_dim
                                ? workload.group
                                : workload.mo.dimension(i).type().top());
  }
  return spec;
}

void PrintSemanticsSummary() {
  std::cout << "Semantics under growing non-strictness (400 patients):\n";
  std::cout << "  rate | strict? | sum of group counts | result agg type\n";
  for (double rate : {0.0, 0.15, 0.5}) {
    ClinicalMo workload = BuildWorkload(rate);
    bool strict = IsStrict(workload.mo.dimension(workload.diagnosis_dim));
    auto result = AggregateFormation(workload.mo, GroupSpec(workload));
    double total = 0.0;
    const std::size_t result_dim = result->dimension_count() - 1;
    for (FactId fact : result->facts()) {
      auto pairs = result->relation(result_dim).ForFact(fact);
      // A fact set may span several groups; add its count once per group
      // link, mirroring what naive reuse would do.
      auto group_links =
          result->relation(workload.diagnosis_dim).ForFact(fact);
      total += group_links.size() *
               *result->dimension(result_dim)
                    .NumericValueOf(pairs.front()->value);
    }
    const DimensionType& result_type =
        result->dimension(result_dim).type();
    std::cout << "  " << rate << "  | " << (strict ? "yes" : "no ")
              << "     | " << total << " (patients: "
              << workload.mo.fact_count() << ")        | "
              << AggregationTypeName(result_type.AggType(result_type.bottom()))
              << "\n";
  }
  std::cout << "  -> with non-strictness the per-group counts overlap "
               "(sum > patients), so the result is typed c and cannot be "
               "re-aggregated.\n\n";
}

void BM_AggregateNonStrict(benchmark::State& state) {
  double rate = static_cast<double>(state.range(0)) / 100.0;
  ClinicalMo workload = BuildWorkload(rate);
  AggregateSpec spec = GroupSpec(workload);
  for (auto _ : state) {
    auto result = AggregateFormation(workload.mo, spec);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_AggregateNonStrict)->Arg(0)->Arg(15)->Arg(50);

void BM_StrictnessCheck(benchmark::State& state) {
  double rate = static_cast<double>(state.range(0)) / 100.0;
  ClinicalMo workload = BuildWorkload(rate);
  for (auto _ : state) {
    bool strict = IsStrict(workload.mo.dimension(workload.diagnosis_dim));
    benchmark::DoNotOptimize(strict);
  }
}
BENCHMARK(BM_StrictnessCheck)->Arg(0)->Arg(50);

}  // namespace

int main(int argc, char** argv) {
  PrintSemanticsSummary();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
