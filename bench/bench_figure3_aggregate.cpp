// Regenerates Figure 3 of the paper: the result MO of Example 12's
// aggregate formation — set-count of patients per diagnosis group, with
// the explicit Count < Range result dimension ("0-1", ">1"). Asserts the
// exact published contents: R1 = {({1,2},11), ({2},12)} and
// R7 = {({1,2},2), ({2},1)}.
//
//   $ ./bench/bench_figure3_aggregate

#include <cstdlib>
#include <iostream>

#include "algebra/operators.h"
#include "workload/case_study.h"

namespace {

using namespace mddc;

template <typename T>
T Unwrap(Result<T> result) {
  if (!result.ok()) {
    std::cerr << "error: " << result.status() << "\n";
    std::exit(1);
  }
  return std::move(result).ValueOrDie();
}

bool Verify(bool condition, const char* what) {
  std::cout << (condition ? " [ok] " : " [FAIL] ") << what << "\n";
  return condition;
}

}  // namespace

int main() {
  CaseStudy cs = Unwrap(BuildCaseStudy());

  // Figure 3's result dimension: Count values 0..10 grouped into the
  // ranges "0-1" and ">1".
  DimensionTypeBuilder builder("Result");
  builder.AddCategory("Count", AggregationType::kSum)
      .AddCategory("Range", AggregationType::kConstant)
      .AddOrder("Count", "Range");
  Dimension prototype(Unwrap(builder.Build()));
  CategoryTypeIndex count_cat = *prototype.type().Find("Count");
  CategoryTypeIndex range_cat = *prototype.type().Find("Range");
  ValueId range_low(9000);
  ValueId range_high(9001);
  (void)prototype.AddValue(range_cat, range_low);
  (void)prototype.AddValue(range_cat, range_high);
  Representation& range_rep = prototype.RepresentationFor(range_cat, "Value");
  (void)range_rep.Set(range_low, "0-1");
  (void)range_rep.Set(range_high, ">1");
  Representation& count_rep = prototype.RepresentationFor(count_cat, "Value");
  for (std::uint64_t c = 0; c <= 10; ++c) {
    (void)prototype.AddValue(count_cat, ValueId(c));
    (void)count_rep.Set(ValueId(c), std::to_string(c));
    (void)prototype.AddOrder(ValueId(c), c <= 1 ? range_low : range_high);
  }

  AggregateSpec spec{AggFunction::SetCount(), {}, ResultDimensionSpec::Auto(),
                     kNowChronon, true};
  for (std::size_t i = 0; i < cs.mo.dimension_count(); ++i) {
    spec.grouping.push_back(
        i == cs.diagnosis
            ? *cs.mo.dimension(i).type().Find("Diagnosis Group")
            : cs.mo.dimension(i).type().top());
  }
  spec.result = ResultDimensionSpec::Explicit(
      prototype, [](double value) -> Result<ValueId> {
        if (value < 0 || value > 10) {
          return Status::InvalidArgument("count outside prototype range");
        }
        return ValueId(static_cast<std::uint64_t>(value));
      });

  MdObject result = Unwrap(AggregateFormation(cs.mo, spec));

  std::cout << "=========================================================\n";
  std::cout << " Figure 3 (ICDE'99): Result MO for aggregate formation\n";
  std::cout << " alpha[Result, set-count, Diagnosis Group, T, ...](Patient)\n";
  std::cout << "=========================================================\n\n";
  std::cout << result.ToString() << "\n";

  FactRegistry& registry = *cs.registry;
  FactId p1 = registry.Atom(1);
  FactId p2 = registry.Atom(2);
  FactId both = registry.Set({p1, p2});
  FactId only2 = registry.Set({p2});
  const std::size_t result_dim = result.dimension_count() - 1;
  const Dimension& counts = result.dimension(result_dim);

  auto value_of = [&](FactId fact, std::size_t dim) {
    auto pairs = result.relation(dim).ForFact(fact);
    return pairs.empty() ? ValueId() : pairs.front()->value;
  };

  std::cout << "Checks against the published figure:\n";
  bool ok = true;
  ok &= Verify(result.fact_count() == 2, "two fact sets: {1,2} and {2}");
  ok &= Verify(value_of(both, cs.diagnosis) == ValueId(11),
               "R1 contains ({1,2}, 11)");
  ok &= Verify(value_of(only2, cs.diagnosis) == ValueId(12),
               "R1 contains ({2}, 12)");
  ok &= Verify(value_of(both, result_dim) == ValueId(2),
               "R7 contains ({1,2}, 2)");
  ok &= Verify(value_of(only2, result_dim) == ValueId(1),
               "R7 contains ({2}, 1)");
  ok &= Verify(counts.LessEqAt(ValueId(2), ValueId(9001)),
               "count 2 rolls up into range '>1'");
  ok &= Verify(counts.LessEqAt(ValueId(1), ValueId(9000)),
               "count 1 rolls up into range '0-1'");
  ok &= Verify(result.dimension_count() == 7,
               "seven dimensions (six arguments + Result)");
  std::size_t trivial = 0;
  for (std::size_t i = 0; i < 6; ++i) {
    if (result.dimension(i).type().category_count() == 1) ++trivial;
  }
  ok &= Verify(trivial == 5,
               "five trivial dimensions (only TOP categories remain)");
  ok &= Verify(
      counts.type().AggType(counts.type().bottom()) ==
          AggregationType::kConstant,
      "result aggregation type degraded to c (non-strict hierarchy): "
      "counts cannot be double-counted by re-aggregation");
  std::cout << (ok ? "\nALL FIGURE 3 CHECKS PASSED\n"
                   : "\nFIGURE 3 REPRODUCTION FAILED\n");
  return ok ? 0 : 1;
}
