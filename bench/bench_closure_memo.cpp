// Ablation for the paper's future-work item "efficient implementation
// using special-purpose algorithms and data structures": the dimension's
// memoized reachability closure versus recomputing containment per query.
// Measures characterization, aggregate formation and property checks with
// the memo on and off.
//
//   $ ./bench/bench_closure_memo

#include <benchmark/benchmark.h>

#include "algebra/operators.h"
#include "core/properties.h"
#include "workload/clinical_generator.h"

namespace {

using namespace mddc;

ClinicalMo BuildWorkload(std::size_t patients) {
  ClinicalWorkloadParams params;
  params.num_patients = patients;
  params.num_groups = 4;
  return std::move(
             GenerateClinicalWorkload(params,
                                      std::make_shared<FactRegistry>()))
      .ValueOrDie();
}

void ConfigureMemo(const ClinicalMo& workload, bool enabled) {
  for (std::size_t i = 0; i < workload.mo.dimension_count(); ++i) {
    workload.mo.dimension(i).set_memoization_enabled(enabled);
  }
}

void BM_AggregateWithMemo(benchmark::State& state) {
  ClinicalMo workload = BuildWorkload(static_cast<std::size_t>(
      state.range(0)));
  ConfigureMemo(workload, state.range(1) == 1);
  AggregateSpec spec{AggFunction::SetCount(),
                     {workload.group,
                      workload.mo.dimension(1).type().top()},
                     ResultDimensionSpec::Auto(),
                     kNowChronon,
                     true};
  for (auto _ : state) {
    if (state.range(1) == 0) {
      // Off: also clear any warmth from previous iterations.
      ConfigureMemo(workload, false);
    }
    auto result = AggregateFormation(workload.mo, spec);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(state.range(1) == 1 ? "memo=on" : "memo=off");
}
BENCHMARK(BM_AggregateWithMemo)
    ->Args({400, 0})
    ->Args({400, 1})
    ->Args({1600, 0})
    ->Args({1600, 1});

void BM_CharacterizeAllWithMemo(benchmark::State& state) {
  ClinicalMo workload = BuildWorkload(800);
  ConfigureMemo(workload, state.range(0) == 1);
  for (auto _ : state) {
    if (state.range(0) == 0) ConfigureMemo(workload, false);
    std::size_t total = 0;
    for (FactId fact : workload.mo.facts()) {
      total += workload.mo.CharacterizedBy(fact, 0).size();
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetLabel(state.range(0) == 1 ? "memo=on" : "memo=off");
}
BENCHMARK(BM_CharacterizeAllWithMemo)->Arg(0)->Arg(1);

void BM_StrictnessCheckWithMemo(benchmark::State& state) {
  ClinicalMo workload = BuildWorkload(400);
  ConfigureMemo(workload, state.range(0) == 1);
  for (auto _ : state) {
    if (state.range(0) == 0) ConfigureMemo(workload, false);
    benchmark::DoNotOptimize(IsStrict(workload.mo.dimension(0)));
  }
  state.SetLabel(state.range(0) == 1 ? "memo=on" : "memo=off");
}
BENCHMARK(BM_StrictnessCheckWithMemo)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
