// Three-way ablation for the paper's future-work item "efficient
// implementation using special-purpose algorithms and data structures":
// aggregate formation with
//
//   raw   — containment recomputed per query (memoization disabled),
//   memo  — the dimension's memoized reachability closure, and
//   index — the compiled rollup snapshot (engine/rollup_index.h), which
//           falls back to the memo when the strictness gate fails;
//
// over a strict workload (retail: the flat table engages) and a
// non-strict temporal one (clinical: the gate fails, proving fallback
// parity). One-time bit-identity across all modes per workload, then a
// stdout table and BENCH_closure_memo.json.
//
//   $ ./bench/bench_closure_memo

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "algebra/operators.h"
#include "engine/executor.h"
#include "io/serialize.h"
#include "peak_rss.h"
#include "workload/clinical_generator.h"
#include "workload/retail_generator.h"

namespace {

using namespace mddc;

struct Case {
  std::string workload;
  MdObject mo;
  AggregateSpec spec;
};

std::vector<CategoryTypeIndex> GroupingAt(const MdObject& mo,
                                          std::size_t dim,
                                          CategoryTypeIndex category) {
  std::vector<CategoryTypeIndex> grouping;
  for (std::size_t i = 0; i < mo.dimension_count(); ++i) {
    grouping.push_back(i == dim ? category : mo.dimension(i).type().top());
  }
  return grouping;
}

std::vector<Case> BuildCases() {
  std::vector<Case> cases;
  {
    RetailWorkloadParams params;
    params.num_purchases = 2000;
    RetailMo retail = std::move(GenerateRetailWorkload(
                                    params,
                                    std::make_shared<FactRegistry>()))
                          .ValueOrDie();
    AggregateSpec spec{
        AggFunction::SetCount(),
        GroupingAt(retail.mo, retail.product_dim, retail.category),
        ResultDimensionSpec::Auto(), kNowChronon,
        /*enforce_aggregation_types=*/true};
    cases.push_back({"retail_strict", std::move(retail.mo), spec});
  }
  {
    ClinicalWorkloadParams params;
    params.num_patients = 800;
    params.num_groups = 4;
    ClinicalMo clinical = std::move(GenerateClinicalWorkload(
                                        params,
                                        std::make_shared<FactRegistry>()))
                              .ValueOrDie();
    AggregateSpec spec{
        AggFunction::SetCount(),
        GroupingAt(clinical.mo, clinical.diagnosis_dim, clinical.group),
        ResultDimensionSpec::Auto(), kNowChronon,
        /*enforce_aggregation_types=*/true};
    cases.push_back({"clinical_nonstrict", std::move(clinical.mo), spec});
  }
  return cases;
}

void ConfigureMemo(const MdObject& mo, bool enabled) {
  for (std::size_t i = 0; i < mo.dimension_count(); ++i) {
    mo.dimension(i).set_memoization_enabled(enabled);
  }
}

struct ModeRow {
  std::string workload;
  std::string mode;
  double wall_ms = 0.0;
  double speedup_vs_raw = 1.0;
  std::size_t index_hits = 0;
  std::size_t index_fallbacks = 0;
  bool bit_identical = false;
};

void WriteJson(const std::vector<ModeRow>& rows, const char* path) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"closure_memo\",\n  \"peak_rss_kb\": %zu,\n"
               "  \"rows\": [\n",
               mddc_bench::PeakRssKb());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ModeRow& r = rows[i];
    std::fprintf(out,
                 "    {\"workload\": \"%s\", \"mode\": \"%s\", "
                 "\"wall_ms\": %.3f, \"speedup_vs_raw\": %.3f, "
                 "\"index_hits\": %zu, \"index_fallbacks\": %zu, "
                 "\"bit_identical\": %s}%s\n",
                 r.workload.c_str(), r.mode.c_str(), r.wall_ms,
                 r.speedup_vs_raw, r.index_hits, r.index_fallbacks,
                 r.bit_identical ? "true" : "false",
                 i + 1 == rows.size() ? "" : ",");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main() {
  constexpr int kIterations = 5;
  std::vector<ModeRow> rows;
  std::printf("%20s %6s %10s %9s %6s %10s %6s\n", "workload", "mode",
              "wall_ms", "speedup", "hits", "fallbacks", "ident");
  for (Case& c : BuildCases()) {
    // Ground truth once per workload: the memoized sequential engine.
    ConfigureMemo(c.mo, true);
    auto reference = AggregateFormation(c.mo, c.spec);
    if (!reference.ok()) {
      std::fprintf(stderr, "aggregate failed: %s\n",
                   reference.status().ToString().c_str());
      return 1;
    }
    const std::string reference_bytes =
        std::move(io::WriteMo(*reference)).ValueOrDie();

    double raw_ms = 0.0;
    for (const std::string& mode : {std::string("raw"),
                                    std::string("memo"),
                                    std::string("index")}) {
      ModeRow row;
      row.workload = c.workload;
      row.mode = mode;
      ExecContext ctx(1, /*min_facts=*/1);
      ExecContext* exec = mode == "index" ? &ctx : nullptr;
      ConfigureMemo(c.mo, mode != "raw");

      // Bit-identity, once per mode, before any timing.
      {
        auto result = AggregateFormation(c.mo, c.spec, exec);
        row.bit_identical =
            result.ok() && std::move(io::WriteMo(*result)).ValueOrDie() ==
                               reference_bytes;
        if (!row.bit_identical) {
          std::fprintf(stderr, "FATAL: %s/%s not bit-identical\n",
                       c.workload.c_str(), mode.c_str());
          return 1;
        }
      }

      double best = 1e300;
      for (int i = 0; i < kIterations; ++i) {
        // Raw must not profit from warmth left by a previous iteration.
        if (mode == "raw") ConfigureMemo(c.mo, false);
        auto start = std::chrono::steady_clock::now();
        auto result = AggregateFormation(c.mo, c.spec, exec);
        auto stop = std::chrono::steady_clock::now();
        if (!result.ok()) {
          std::fprintf(stderr, "aggregate failed: %s\n",
                       result.status().ToString().c_str());
          return 1;
        }
        double ms = std::chrono::duration<double, std::milli>(stop - start)
                        .count();
        if (ms < best) best = ms;
      }
      row.wall_ms = best;
      if (mode == "raw") raw_ms = best;
      row.speedup_vs_raw = best > 0.0 ? raw_ms / best : 1.0;
      row.index_hits = ctx.stats.index_hits;
      row.index_fallbacks = ctx.stats.index_fallbacks;
      rows.push_back(row);
      std::printf("%20s %6s %10.3f %9.2f %6zu %10zu %6s\n",
                  row.workload.c_str(), row.mode.c_str(), row.wall_ms,
                  row.speedup_vs_raw, row.index_hits, row.index_fallbacks,
                  row.bit_identical ? "yes" : "NO");
      ConfigureMemo(c.mo, true);
    }
  }
  WriteJson(rows, "BENCH_closure_memo.json");
  return 0;
}
