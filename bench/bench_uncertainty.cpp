// Uncertainty handling (requirement 8): overhead of probabilistic
// attachments — probability-threshold selection, characterization with
// probability derivation, and exact count distributions — compared with
// the crisp equivalents.
//
//   $ ./bench/bench_uncertainty

#include <benchmark/benchmark.h>

#include "algebra/operators.h"
#include "uncertainty/probability.h"
#include "workload/clinical_generator.h"

namespace {

using namespace mddc;

ClinicalMo BuildWorkload(double uncertain_rate) {
  ClinicalWorkloadParams params;
  params.num_patients = 400;
  params.num_groups = 4;
  params.uncertain_rate = uncertain_rate;
  return std::move(
             GenerateClinicalWorkload(params,
                                      std::make_shared<FactRegistry>()))
      .ValueOrDie();
}

ValueId FirstGroup(const ClinicalMo& workload) {
  return workload.mo.dimension(workload.diagnosis_dim)
      .ValuesIn(workload.group)
      .front();
}

void BM_CrispSelection(benchmark::State& state) {
  ClinicalMo workload = BuildWorkload(0.0);
  Predicate predicate =
      Predicate::CharacterizedBy(workload.diagnosis_dim, FirstGroup(workload));
  for (auto _ : state) {
    auto result = Select(workload.mo, predicate);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_CrispSelection);

void BM_ProbabilityThresholdSelection(benchmark::State& state) {
  ClinicalMo workload = BuildWorkload(0.3);
  Predicate predicate = Predicate::MinProbability(
      workload.diagnosis_dim, FirstGroup(workload), 0.8);
  for (auto _ : state) {
    auto result = Select(workload.mo, predicate);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ProbabilityThresholdSelection);

void BM_CharacterizationWithProbability(benchmark::State& state) {
  double rate = static_cast<double>(state.range(0)) / 100.0;
  ClinicalMo workload = BuildWorkload(rate);
  for (auto _ : state) {
    double expected = 0.0;
    for (FactId fact : workload.mo.facts()) {
      for (const auto& c :
           workload.mo.CharacterizedBy(fact, workload.diagnosis_dim)) {
        expected += c.prob;
      }
    }
    benchmark::DoNotOptimize(expected);
  }
}
BENCHMARK(BM_CharacterizationWithProbability)->Arg(0)->Arg(30)->Arg(100);

void BM_CountDistribution(benchmark::State& state) {
  std::vector<double> probabilities(
      static_cast<std::size_t>(state.range(0)), 0.7);
  for (auto _ : state) {
    auto distribution = CountDistribution(probabilities);
    benchmark::DoNotOptimize(distribution);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CountDistribution)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Complexity(benchmark::oNSquared);

void BM_ExpectedCountVsExact(benchmark::State& state) {
  // Expectation is linear; the full distribution quadratic — the shape
  // argument for reporting expectations at scale.
  std::vector<double> probabilities(1024, 0.7);
  if (state.range(0) == 0) {
    for (auto _ : state) {
      benchmark::DoNotOptimize(ExpectedCount(probabilities));
    }
  } else {
    for (auto _ : state) {
      benchmark::DoNotOptimize(CountDistribution(probabilities));
    }
  }
}
BENCHMARK(BM_ExpectedCountVsExact)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
