// Memory-layout sweep (docs/memory_layout.md): the aggregate-formation
// pipeline on the flat layout — shared interners, flat-hash indexes, CSR
// by-fact spans and query-lifetime arenas — against the context-free
// ordered-map/heap baseline it replaced, across fact counts. Per
// configuration, one bit-identity check (serialized result bytes) runs
// before any timing counts; timings then report the single-thread
// speedup, the heap-allocation count per steady-state query on both
// paths, and the process peak RSS. Results go to stdout as a table and
// to BENCH_memory.json as machine-readable records.
//
//   $ ./bench/bench_memory_layout
//
// MDDC_SWEEP_MAX_FACTS caps the largest fact count (default 1000000);
// MDDC_SWEEP_MAX_FACTS=10000000 enables the large-scale 10^7-fact mode
// (several GB of RSS), MDDC_SWEEP_MAX_FACTS=100000 a quick run.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "algebra/operators.h"
#include "common/strings.h"
#include "engine/executor.h"
#include "io/serialize.h"
#include "peak_rss.h"

// Allocation counter: the same replacement-operator harness as
// tests/alloc_count_test.cc, counting every heap allocation so the sweep
// can report allocations per query on the old and new paths.
namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace mddc;

constexpr std::size_t kGroups = 64;
constexpr std::size_t kFanout = 8;  // bottom values per group

struct Workload {
  MdObject mo;
  CategoryTypeIndex parent_category = 0;
};

/// A strict non-temporal product hierarchy plus a summed measure — the
/// shape whose per-fact scratch the arenas absorb.
Workload MakeWorkload(std::size_t num_facts) {
  DimensionTypeBuilder product_builder("Product");
  product_builder.AddCategory("Item", AggregationType::kConstant)
      .AddCategory("Group", AggregationType::kConstant)
      .AddOrder("Item", "Group");
  auto product_type = std::move(product_builder.Build()).ValueOrDie();
  Dimension products(product_type);
  const CategoryTypeIndex item = *product_type->Find("Item");
  const CategoryTypeIndex group = *product_type->Find("Group");
  std::vector<ValueId> items;
  std::uint64_t next_id = 1;
  for (std::size_t g = 0; g < kGroups; ++g) {
    ValueId group_id(next_id++);
    (void)products.AddValue(group, group_id);
    for (std::size_t i = 0; i < kFanout; ++i) {
      ValueId item_id(next_id++);
      (void)products.AddValue(item, item_id);
      (void)products.AddOrder(item_id, group_id);
      items.push_back(item_id);
    }
  }

  DimensionTypeBuilder measure_builder("Amount");
  measure_builder.AddCategory("Value", AggregationType::kSum);
  auto measure_type = std::move(measure_builder.Build()).ValueOrDie();
  Dimension amounts(measure_type);
  const CategoryTypeIndex reading = measure_type->bottom();
  Representation& rep = amounts.RepresentationFor(reading, "Value");
  constexpr std::size_t kDistinctAmounts = 256;
  std::vector<ValueId> amount_values;
  for (std::size_t i = 0; i < kDistinctAmounts; ++i) {
    ValueId id(1000000 + i);
    (void)amounts.AddValue(reading, id);
    (void)rep.Set(id, FormatDouble(0.25 * static_cast<double>(i + 1)));
    amount_values.push_back(id);
  }

  auto registry = std::make_shared<FactRegistry>();
  MdObject mo("Purchase", {std::move(products), std::move(amounts)},
              registry, TemporalType::kSnapshot);
  for (std::size_t i = 0; i < num_facts; ++i) {
    FactId fact = registry->Atom(i);
    (void)mo.AddFact(fact);
    (void)mo.Relate(0, fact, items[(i * 31) % items.size()],
                    Lifespan::AlwaysSpan());
    (void)mo.Relate(1, fact, amount_values[i % amount_values.size()],
                    Lifespan::AlwaysSpan());
  }
  return Workload{std::move(mo), group};
}

struct SweepRow {
  std::size_t facts = 0;
  double old_ms = 0.0;   // context-free ordered-map/heap baseline
  double new_ms = 0.0;   // flat layout, 1 thread
  double new8_ms = 0.0;  // flat layout, 8 threads
  double speedup = 1.0;  // old / new (single thread)
  std::size_t old_allocs = 0;  // per steady-state query
  std::size_t new_allocs = 0;
  bool bit_identical = false;
};

struct TimedRun {
  double ms = 0.0;
  std::size_t allocs = 0;
};

/// Best-of-N wall time plus the allocation count of the *last* run —
/// steady state, since the context's arenas are warm by then.
TimedRun TimeAggregate(const MdObject& mo, const AggregateSpec& spec,
                       ExecContext* exec, int iterations) {
  TimedRun run;
  run.ms = 1e300;
  for (int i = 0; i < iterations; ++i) {
    const std::size_t allocs_before =
        g_alloc_count.load(std::memory_order_relaxed);
    auto start = std::chrono::steady_clock::now();
    auto result = AggregateFormation(mo, spec, exec);
    auto stop = std::chrono::steady_clock::now();
    if (!result.ok()) {
      std::fprintf(stderr, "aggregate failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (ms < run.ms) run.ms = ms;
    run.allocs =
        g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  }
  return run;
}


void WriteJson(const std::vector<SweepRow>& rows, std::size_t peak_rss_kb,
               const char* path) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"memory_layout\",\n"
               "  \"peak_rss_kb\": %zu,\n  \"rows\": [\n",
               peak_rss_kb);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& r = rows[i];
    std::fprintf(
        out,
        "    {\"facts\": %zu, \"old_ms\": %.3f, \"new_ms\": %.3f, "
        "\"new8_ms\": %.3f, \"speedup_new_vs_old\": %.3f, "
        "\"old_allocs_per_query\": %zu, \"new_allocs_per_query\": %zu, "
        "\"bit_identical\": %s}%s\n",
        r.facts, r.old_ms, r.new_ms, r.new8_ms, r.speedup, r.old_allocs,
        r.new_allocs, r.bit_identical ? "true" : "false",
        i + 1 == rows.size() ? "" : ",");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main() {
  std::size_t max_facts = 1000000;
  if (const char* cap = std::getenv("MDDC_SWEEP_MAX_FACTS")) {
    max_facts = static_cast<std::size_t>(std::strtoull(cap, nullptr, 10));
  }

  std::vector<SweepRow> rows;
  std::printf("%9s %10s %10s %10s %9s %12s %12s %6s\n", "facts", "old_ms",
              "new_ms", "new8_ms", "speedup", "old_allocs", "new_allocs",
              "ident");
  for (std::size_t facts :
       {std::size_t{100000}, std::size_t{1000000}, std::size_t{10000000}}) {
    if (facts > max_facts) continue;
    Workload workload = MakeWorkload(facts);
    AggregateSpec spec{AggFunction::Sum(1),
                       {workload.parent_category,
                        workload.mo.dimension(1).type().top()},
                       ResultDimensionSpec::Auto(),
                       kNowChronon,
                       /*enforce_aggregation_types=*/true};
    const int iterations = facts >= 1000000 ? 3 : 5;

    // Bit-identity before any timing: the flat layout must reproduce the
    // ordered-map baseline byte for byte at 1 and 8 threads.
    auto baseline = AggregateFormation(workload.mo, spec);
    if (!baseline.ok()) {
      std::fprintf(stderr, "baseline aggregate failed: %s\n",
                   baseline.status().ToString().c_str());
      return 1;
    }
    const std::string baseline_bytes =
        std::move(io::WriteMo(*baseline)).ValueOrDie();
    bool bit_identical = true;
    for (std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
      ExecContext check(threads, /*min_facts=*/1);
      auto flat = AggregateFormation(workload.mo, spec, &check);
      if (!flat.ok() ||
          std::move(io::WriteMo(*flat)).ValueOrDie() != baseline_bytes) {
        bit_identical = false;
      }
    }
    if (!bit_identical) {
      std::fprintf(stderr, "FATAL: flat layout not bit-identical at "
                   "facts=%zu\n", facts);
      return 1;
    }

    SweepRow row;
    row.facts = facts;
    row.bit_identical = bit_identical;
    TimedRun old_run =
        TimeAggregate(workload.mo, spec, nullptr, iterations);
    row.old_ms = old_run.ms;
    row.old_allocs = old_run.allocs;
    {
      ExecContext exec(1, /*min_facts=*/1);
      TimedRun new_run =
          TimeAggregate(workload.mo, spec, &exec, iterations + 1);
      row.new_ms = new_run.ms;
      row.new_allocs = new_run.allocs;
    }
    {
      ExecContext exec(8, /*min_facts=*/1);
      row.new8_ms =
          TimeAggregate(workload.mo, spec, &exec, iterations + 1).ms;
    }
    row.speedup = row.new_ms > 0 ? row.old_ms / row.new_ms : 1.0;
    std::printf("%9zu %10.3f %10.3f %10.3f %8.2fx %12zu %12zu %6s\n",
                row.facts, row.old_ms, row.new_ms, row.new8_ms, row.speedup,
                row.old_allocs, row.new_allocs,
                row.bit_identical ? "yes" : "NO");
    rows.push_back(row);
  }

  const std::size_t peak_rss_kb = mddc_bench::PeakRssKb();
  std::printf("peak rss: %zu kB\n", peak_rss_kb);
  WriteJson(rows, peak_rss_kb, "BENCH_memory.json");
  return 0;
}
