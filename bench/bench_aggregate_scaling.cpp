// Aggregate-formation scaling: cost of alpha[...] versus population size,
// grouping level and hierarchy fan-out on the synthetic clinical
// workload. Regenerates the shape expected of the model's central
// operator: cost grows with facts and with the depth of rollup work, and
// grouping at TOP degenerates to a single group.
//
//   $ ./bench/bench_aggregate_scaling

#include <benchmark/benchmark.h>

#include "algebra/operators.h"
#include "workload/clinical_generator.h"

namespace {

using namespace mddc;

ClinicalMo BuildWorkload(std::size_t patients, std::size_t fanout_min,
                         std::size_t fanout_max) {
  ClinicalWorkloadParams params;
  params.num_patients = patients;
  params.num_groups = 4;
  params.min_fanout = fanout_min;
  params.max_fanout = fanout_max;
  return std::move(
             GenerateClinicalWorkload(params,
                                      std::make_shared<FactRegistry>()))
      .ValueOrDie();
}

AggregateSpec SpecFor(const ClinicalMo& workload, CategoryTypeIndex level) {
  AggregateSpec spec{AggFunction::SetCount(), {}, ResultDimensionSpec::Auto(),
                     kNowChronon, true};
  for (std::size_t i = 0; i < workload.mo.dimension_count(); ++i) {
    spec.grouping.push_back(i == workload.diagnosis_dim
                                ? level
                                : workload.mo.dimension(i).type().top());
  }
  return spec;
}

void BM_AggregateByPatients(benchmark::State& state) {
  ClinicalMo workload =
      BuildWorkload(static_cast<std::size_t>(state.range(0)), 5, 10);
  AggregateSpec spec = SpecFor(workload, workload.group);
  for (auto _ : state) {
    auto result = AggregateFormation(workload.mo, spec);
    benchmark::DoNotOptimize(result);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AggregateByPatients)->Arg(100)->Arg(400)->Arg(1600);

void BM_AggregateByLevel(benchmark::State& state) {
  ClinicalMo workload = BuildWorkload(400, 5, 10);
  CategoryTypeIndex level;
  switch (state.range(0)) {
    case 0:
      level = workload.low_level;
      break;
    case 1:
      level = workload.family;
      break;
    case 2:
      level = workload.group;
      break;
    default:
      level = workload.mo.dimension(workload.diagnosis_dim).type().top();
      break;
  }
  AggregateSpec spec = SpecFor(workload, level);
  for (auto _ : state) {
    auto result = AggregateFormation(workload.mo, spec);
    benchmark::DoNotOptimize(result);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
  }
}
BENCHMARK(BM_AggregateByLevel)
    ->Arg(0)   // low level
    ->Arg(1)   // family
    ->Arg(2)   // group
    ->Arg(3);  // TOP

void BM_AggregateByFanout(benchmark::State& state) {
  // Fixed patients; hierarchy width grows with fan-out.
  std::size_t fanout = static_cast<std::size_t>(state.range(0));
  ClinicalMo workload = BuildWorkload(400, fanout, fanout);
  AggregateSpec spec = SpecFor(workload, workload.group);
  for (auto _ : state) {
    auto result = AggregateFormation(workload.mo, spec);
    benchmark::DoNotOptimize(result);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
  }
}
BENCHMARK(BM_AggregateByFanout)->Arg(5)->Arg(10)->Arg(20);

// Two-dimensional grouping: diagnosis group x residence county.
void BM_AggregateTwoDimensions(benchmark::State& state) {
  ClinicalMo workload =
      BuildWorkload(static_cast<std::size_t>(state.range(0)), 5, 10);
  AggregateSpec spec = SpecFor(workload, workload.group);
  spec.grouping[workload.residence_dim] = workload.county;
  for (auto _ : state) {
    auto result = AggregateFormation(workload.mo, spec);
    benchmark::DoNotOptimize(result);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
  }
}
BENCHMARK(BM_AggregateTwoDimensions)->Arg(100)->Arg(400);

}  // namespace

BENCHMARK_MAIN();
