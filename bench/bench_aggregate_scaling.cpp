// Aggregate-formation scaling: cost of alpha[...] versus population size,
// grouping level and hierarchy fan-out on the synthetic clinical
// workload. Regenerates the shape expected of the model's central
// operator: cost grows with facts and with the depth of rollup work, and
// grouping at TOP degenerates to a single group.
//
//   $ ./bench/bench_aggregate_scaling

#include <benchmark/benchmark.h>

#include "algebra/operators.h"
#include "engine/executor.h"
#include "io/serialize.h"
#include "workload/clinical_generator.h"
#include "workload/retail_generator.h"

namespace {

using namespace mddc;

ClinicalMo BuildWorkload(std::size_t patients, std::size_t fanout_min,
                         std::size_t fanout_max) {
  ClinicalWorkloadParams params;
  params.num_patients = patients;
  params.num_groups = 4;
  params.min_fanout = fanout_min;
  params.max_fanout = fanout_max;
  return std::move(
             GenerateClinicalWorkload(params,
                                      std::make_shared<FactRegistry>()))
      .ValueOrDie();
}

AggregateSpec SpecFor(const ClinicalMo& workload, CategoryTypeIndex level) {
  AggregateSpec spec{AggFunction::SetCount(), {}, ResultDimensionSpec::Auto(),
                     kNowChronon, true};
  for (std::size_t i = 0; i < workload.mo.dimension_count(); ++i) {
    spec.grouping.push_back(i == workload.diagnosis_dim
                                ? level
                                : workload.mo.dimension(i).type().top());
  }
  return spec;
}

void BM_AggregateByPatients(benchmark::State& state) {
  ClinicalMo workload =
      BuildWorkload(static_cast<std::size_t>(state.range(0)), 5, 10);
  AggregateSpec spec = SpecFor(workload, workload.group);
  for (auto _ : state) {
    auto result = AggregateFormation(workload.mo, spec);
    benchmark::DoNotOptimize(result);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AggregateByPatients)->Arg(100)->Arg(400)->Arg(1600);

void BM_AggregateByLevel(benchmark::State& state) {
  ClinicalMo workload = BuildWorkload(400, 5, 10);
  CategoryTypeIndex level;
  switch (state.range(0)) {
    case 0:
      level = workload.low_level;
      break;
    case 1:
      level = workload.family;
      break;
    case 2:
      level = workload.group;
      break;
    default:
      level = workload.mo.dimension(workload.diagnosis_dim).type().top();
      break;
  }
  AggregateSpec spec = SpecFor(workload, level);
  for (auto _ : state) {
    auto result = AggregateFormation(workload.mo, spec);
    benchmark::DoNotOptimize(result);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
  }
}
BENCHMARK(BM_AggregateByLevel)
    ->Arg(0)   // low level
    ->Arg(1)   // family
    ->Arg(2)   // group
    ->Arg(3);  // TOP

void BM_AggregateByFanout(benchmark::State& state) {
  // Fixed patients; hierarchy width grows with fan-out.
  std::size_t fanout = static_cast<std::size_t>(state.range(0));
  ClinicalMo workload = BuildWorkload(400, fanout, fanout);
  AggregateSpec spec = SpecFor(workload, workload.group);
  for (auto _ : state) {
    auto result = AggregateFormation(workload.mo, spec);
    benchmark::DoNotOptimize(result);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
  }
}
BENCHMARK(BM_AggregateByFanout)->Arg(5)->Arg(10)->Arg(20);

// Two-dimensional grouping: diagnosis group x residence county.
void BM_AggregateTwoDimensions(benchmark::State& state) {
  ClinicalMo workload =
      BuildWorkload(static_cast<std::size_t>(state.range(0)), 5, 10);
  AggregateSpec spec = SpecFor(workload, workload.group);
  spec.grouping[workload.residence_dim] = workload.county;
  for (auto _ : state) {
    auto result = AggregateFormation(workload.mo, spec);
    benchmark::DoNotOptimize(result);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
  }
}
BENCHMARK(BM_AggregateTwoDimensions)->Arg(100)->Arg(400);

// Thread sweep of the parallel engine on the strict retail workload
// (one product per purchase: the Section 3.4 preconditions hold, so the
// partition/merge path is legal). args: (purchases, threads). Before
// timing, each configuration verifies once that its parallel result
// serializes to exactly the sequential bytes.
void BM_AggregateParallelThreads(benchmark::State& state) {
  RetailWorkloadParams params;
  params.num_purchases = static_cast<std::size_t>(state.range(0));
  params.num_products = 200;
  RetailMo retail =
      std::move(GenerateRetailWorkload(params,
                                       std::make_shared<FactRegistry>()))
          .ValueOrDie();
  AggregateSpec spec{AggFunction::Sum(retail.amount_dim), {},
                     ResultDimensionSpec::Auto(), kNowChronon, true};
  for (std::size_t i = 0; i < retail.mo.dimension_count(); ++i) {
    spec.grouping.push_back(i == retail.product_dim
                                ? retail.category
                                : retail.mo.dimension(i).type().top());
  }
  const std::size_t threads = static_cast<std::size_t>(state.range(1));

  {
    // Bit-identity check, once per configuration.
    auto sequential = AggregateFormation(retail.mo, spec);
    ExecContext check_ctx(threads, /*min_facts=*/1);
    auto parallel = AggregateFormation(retail.mo, spec, &check_ctx);
    if (!sequential.ok() || !parallel.ok() ||
        *io::WriteMo(*sequential) != *io::WriteMo(*parallel)) {
      state.SkipWithError("parallel result is not bit-identical");
      return;
    }
  }

  ExecContext ctx(threads, /*min_facts=*/1);
  for (auto _ : state) {
    auto result = AggregateFormation(retail.mo, spec, &ctx);
    benchmark::DoNotOptimize(result);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["partitions"] = static_cast<double>(ctx.stats.partitions);
  state.counters["merge_ns"] = static_cast<double>(ctx.stats.merge_nanos);
}
BENCHMARK(BM_AggregateParallelThreads)
    ->ArgsProduct({{10000, 100000, 1000000}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
