// Valid-timeslice cost versus data size and temporal churn (the fraction
// of the diagnosis hierarchy re-coded at the 1980 epoch), plus the cost
// of analysis across change (characterization through bridge edges),
// plus a 1/2/4/8-thread sweep of the parallel timeslice over 10^4..10^6
// facts that runs before the google-benchmark suite and writes
// machine-readable records to BENCH_timeslice.json. Each sweep
// configuration verifies once that the parallel slice serializes to
// exactly the sequential bytes.
//
//   $ ./bench/bench_timeslice
//
// MDDC_SWEEP_MAX_FACTS caps the sweep's largest operand (default
// 1000000), e.g. for quick runs or sanitizer builds.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "algebra/timeslice.h"
#include "common/date.h"
#include "engine/executor.h"
#include "io/serialize.h"
#include "peak_rss.h"
#include "workload/clinical_generator.h"

namespace {

using namespace mddc;

ClinicalMo BuildWorkload(std::size_t patients, double churn) {
  ClinicalWorkloadParams params;
  params.num_patients = patients;
  params.num_groups = 4;
  params.reclassified_rate = churn;
  return std::move(
             GenerateClinicalWorkload(params,
                                      std::make_shared<FactRegistry>()))
      .ValueOrDie();
}

void BM_ValidTimeslicePatients(benchmark::State& state) {
  ClinicalMo workload =
      BuildWorkload(static_cast<std::size_t>(state.range(0)), 0.2);
  Chronon at = *ParseDate("15/06/85");
  for (auto _ : state) {
    auto sliced = ValidTimeslice(workload.mo, at);
    benchmark::DoNotOptimize(sliced);
    if (!sliced.ok()) state.SkipWithError(sliced.status().ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ValidTimeslicePatients)->Arg(100)->Arg(400)->Arg(1600);

void BM_ValidTimesliceChurn(benchmark::State& state) {
  double churn = static_cast<double>(state.range(0)) / 100.0;
  ClinicalMo workload = BuildWorkload(400, churn);
  Chronon at = *ParseDate("15/06/75");  // old era: churn decides how much
                                        // of the hierarchy exists
  for (auto _ : state) {
    auto sliced = ValidTimeslice(workload.mo, at);
    benchmark::DoNotOptimize(sliced);
    if (!sliced.ok()) state.SkipWithError(sliced.status().ToString().c_str());
  }
}
BENCHMARK(BM_ValidTimesliceChurn)->Arg(0)->Arg(20)->Arg(50);

void BM_SliceOldVsNewEra(benchmark::State& state) {
  ClinicalMo workload = BuildWorkload(400, 0.3);
  Chronon at = state.range(0) == 0 ? *ParseDate("15/06/75")
                                   : *ParseDate("15/06/95");
  for (auto _ : state) {
    auto sliced = ValidTimeslice(workload.mo, at);
    benchmark::DoNotOptimize(sliced);
  }
}
BENCHMARK(BM_SliceOldVsNewEra)->Arg(0)->Arg(1);

// Cost of characterization through cross-era bridge edges (Example 10's
// analysis across change) for every patient.
void BM_CharacterizeAcrossChange(benchmark::State& state) {
  ClinicalMo workload = BuildWorkload(400, 0.3);
  for (auto _ : state) {
    std::size_t total = 0;
    for (FactId fact : workload.mo.facts()) {
      total += workload.mo.CharacterizedBy(fact, workload.diagnosis_dim)
                   .size();
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_CharacterizeAcrossChange);

// ---- Parallel thread sweep ------------------------------------------------

/// A hand-built valid-time MO sized for the sweep: one small Status
/// dimension, every relation entry carrying a valid lifespan, half of
/// them expired before the slice point — so the slice does real
/// per-entry filtering and fact-coverage work and setup stays O(n).
MdObject MakeSweepOperand(std::size_t num_facts) {
  DimensionTypeBuilder builder("Status");
  builder.AddCategory("Status", AggregationType::kConstant);
  auto type = std::move(builder.Build()).ValueOrDie();
  Dimension dimension(type);
  CategoryTypeIndex status = *type->Find("Status");
  constexpr std::size_t kNumValues = 64;
  const Lifespan old_era = Lifespan::ValidDuring(
      TemporalElement(*Interval::Parse("[01/01/70-31/12/79]")));
  const Lifespan new_era = Lifespan::ValidDuring(
      TemporalElement(*Interval::Parse("[01/01/80-NOW]")));
  for (std::size_t v = 0; v < kNumValues; ++v) {
    (void)dimension.AddValue(status, ValueId(1000 + v),
                             v % 2 == 0 ? new_era : old_era);
  }
  auto registry = std::make_shared<FactRegistry>();
  MdObject mo("Event", {std::move(dimension)}, registry,
              TemporalType::kValidTime);
  for (std::size_t i = 0; i < num_facts; ++i) {
    FactId fact = registry->Atom(i);
    (void)mo.AddFact(fact);
    (void)mo.Relate(0, fact, ValueId(1000 + i % kNumValues),
                    i % 2 == 0 ? new_era : old_era);
  }
  return mo;
}

struct SweepRow {
  std::size_t facts = 0;
  std::size_t threads = 0;
  double wall_ms = 0.0;
  double speedup = 1.0;
  std::size_t pool_reuses = 0;
  bool bit_identical = false;
};

int RunThreadSweep() {
  std::size_t max_facts = 1000000;
  if (const char* cap = std::getenv("MDDC_SWEEP_MAX_FACTS")) {
    max_facts = static_cast<std::size_t>(std::strtoull(cap, nullptr, 10));
  }
  const Chronon at = *ParseDate("15/06/85");

  std::vector<SweepRow> rows;
  std::printf("%10s %8s %12s %10s %12s %6s\n", "facts", "threads",
              "wall_ms", "speedup", "pool_reuses", "ident");
  for (std::size_t facts : {std::size_t{10000}, std::size_t{100000},
                            std::size_t{1000000}}) {
    if (facts > max_facts) continue;
    MdObject mo = MakeSweepOperand(facts);
    const int iterations = facts >= 1000000 ? 3 : 5;

    auto sequential = ValidTimeslice(mo, at);
    if (!sequential.ok()) {
      std::fprintf(stderr, "sequential slice failed: %s\n",
                   sequential.status().ToString().c_str());
      return 1;
    }
    const std::string sequential_bytes =
        std::move(io::WriteMo(*sequential)).ValueOrDie();

    double baseline_ms = 0.0;
    for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                                std::size_t{4}, std::size_t{8}}) {
      SweepRow row;
      row.facts = facts;
      row.threads = threads;
      {
        ExecContext check(threads, /*min_facts=*/1);
        auto parallel = ValidTimeslice(mo, at, &check);
        row.bit_identical =
            parallel.ok() &&
            std::move(io::WriteMo(*parallel)).ValueOrDie() ==
                sequential_bytes;
        if (!row.bit_identical) {
          std::fprintf(stderr,
                       "FATAL: slice not bit-identical at %zu threads\n",
                       threads);
          return 1;
        }
      }
      ExecContext ctx(threads, /*min_facts=*/1);
      double best = 1e300;
      for (int i = 0; i < iterations; ++i) {
        auto start = std::chrono::steady_clock::now();
        auto result = ValidTimeslice(mo, at, &ctx);
        auto stop = std::chrono::steady_clock::now();
        if (!result.ok()) {
          std::fprintf(stderr, "slice failed: %s\n",
                       result.status().ToString().c_str());
          return 1;
        }
        double ms =
            std::chrono::duration<double, std::milli>(stop - start).count();
        if (ms < best) best = ms;
      }
      row.wall_ms = best;
      if (threads == 1) baseline_ms = row.wall_ms;
      row.speedup = baseline_ms > 0.0 ? baseline_ms / row.wall_ms : 1.0;
      row.pool_reuses = ctx.stats.pool_reuses;
      rows.push_back(row);
      std::printf("%10zu %8zu %12.3f %10.2f %12zu %6s\n", row.facts,
                  row.threads, row.wall_ms, row.speedup, row.pool_reuses,
                  row.bit_identical ? "yes" : "NO");
    }
  }

  std::FILE* out = std::fopen("BENCH_timeslice.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_timeslice.json\n");
    return 0;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"timeslice_scaling\",\n"
               "  \"peak_rss_kb\": %zu,\n  \"rows\": [\n",
               mddc_bench::PeakRssKb());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& r = rows[i];
    std::fprintf(out,
                 "    {\"facts\": %zu, \"threads\": %zu, "
                 "\"wall_ms\": %.3f, \"speedup_vs_1thread\": %.3f, "
                 "\"pool_reuses\": %zu, \"bit_identical\": %s}%s\n",
                 r.facts, r.threads, r.wall_ms, r.speedup, r.pool_reuses,
                 r.bit_identical ? "true" : "false",
                 i + 1 == rows.size() ? "" : ",");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_timeslice.json\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (int rc = RunThreadSweep(); rc != 0) return rc;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
