// Valid-timeslice cost versus data size and temporal churn (the fraction
// of the diagnosis hierarchy re-coded at the 1980 epoch), plus the cost
// of analysis across change (characterization through bridge edges).
//
//   $ ./bench/bench_timeslice

#include <benchmark/benchmark.h>

#include "algebra/timeslice.h"
#include "common/date.h"
#include "workload/clinical_generator.h"

namespace {

using namespace mddc;

ClinicalMo BuildWorkload(std::size_t patients, double churn) {
  ClinicalWorkloadParams params;
  params.num_patients = patients;
  params.num_groups = 4;
  params.reclassified_rate = churn;
  return std::move(
             GenerateClinicalWorkload(params,
                                      std::make_shared<FactRegistry>()))
      .ValueOrDie();
}

void BM_ValidTimeslicePatients(benchmark::State& state) {
  ClinicalMo workload =
      BuildWorkload(static_cast<std::size_t>(state.range(0)), 0.2);
  Chronon at = *ParseDate("15/06/85");
  for (auto _ : state) {
    auto sliced = ValidTimeslice(workload.mo, at);
    benchmark::DoNotOptimize(sliced);
    if (!sliced.ok()) state.SkipWithError(sliced.status().ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ValidTimeslicePatients)->Arg(100)->Arg(400)->Arg(1600);

void BM_ValidTimesliceChurn(benchmark::State& state) {
  double churn = static_cast<double>(state.range(0)) / 100.0;
  ClinicalMo workload = BuildWorkload(400, churn);
  Chronon at = *ParseDate("15/06/75");  // old era: churn decides how much
                                        // of the hierarchy exists
  for (auto _ : state) {
    auto sliced = ValidTimeslice(workload.mo, at);
    benchmark::DoNotOptimize(sliced);
    if (!sliced.ok()) state.SkipWithError(sliced.status().ToString().c_str());
  }
}
BENCHMARK(BM_ValidTimesliceChurn)->Arg(0)->Arg(20)->Arg(50);

void BM_SliceOldVsNewEra(benchmark::State& state) {
  ClinicalMo workload = BuildWorkload(400, 0.3);
  Chronon at = state.range(0) == 0 ? *ParseDate("15/06/75")
                                   : *ParseDate("15/06/95");
  for (auto _ : state) {
    auto sliced = ValidTimeslice(workload.mo, at);
    benchmark::DoNotOptimize(sliced);
  }
}
BENCHMARK(BM_SliceOldVsNewEra)->Arg(0)->Arg(1);

// Cost of characterization through cross-era bridge edges (Example 10's
// analysis across change) for every patient.
void BM_CharacterizeAcrossChange(benchmark::State& state) {
  ClinicalMo workload = BuildWorkload(400, 0.3);
  for (auto _ : state) {
    std::size_t total = 0;
    for (FactId fact : workload.mo.facts()) {
      total += workload.mo.CharacterizedBy(fact, workload.diagnosis_dim)
                   .size();
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_CharacterizeAcrossChange);

}  // namespace

BENCHMARK_MAIN();
