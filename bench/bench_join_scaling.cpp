// Identity-join thread-scaling sweep: 1/2/4/8 threads over 10^4..10^6
// facts, with a one-time bit-identity check per configuration (the
// parallel join must serialize to exactly the sequential bytes before
// its timings count). Results go to stdout as a table and to
// BENCH_join.json as machine-readable records.
//
//   $ ./bench/bench_join_scaling
//
// MDDC_SWEEP_MAX_FACTS caps the largest operand (default 1000000), e.g.
// MDDC_SWEEP_MAX_FACTS=100000 for a quick run or for sanitizer builds.
//
// Operands are hand-built MOs — one small Key dimension, facts related
// round-robin — so setup stays O(n) and the measured time is the join,
// not workload generation.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "algebra/operators.h"
#include "engine/executor.h"
#include "io/serialize.h"
#include "peak_rss.h"

namespace {

using namespace mddc;

constexpr std::size_t kNumKeys = 64;

MdObject MakeOperand(std::size_t num_facts, const std::string& suffix,
                     std::shared_ptr<FactRegistry> registry) {
  DimensionTypeBuilder builder("Key" + suffix);
  builder.AddCategory("Key", AggregationType::kConstant);
  auto type = std::move(builder.Build()).ValueOrDie();
  Dimension dimension(type);
  CategoryTypeIndex key = *type->Find("Key");
  for (std::size_t k = 0; k < kNumKeys; ++k) {
    (void)dimension.AddValue(key, ValueId(1000 + k), Lifespan::AlwaysSpan());
  }
  MdObject mo("Event" + suffix, {std::move(dimension)}, registry,
              TemporalType::kSnapshot);
  for (std::size_t i = 0; i < num_facts; ++i) {
    FactId fact = registry->Atom(i);
    (void)mo.AddFact(fact);
    (void)mo.Relate(0, fact, ValueId(1000 + i % kNumKeys),
                    Lifespan::AlwaysSpan());
  }
  return mo;
}

struct SweepRow {
  std::size_t facts = 0;
  std::size_t threads = 0;
  double wall_ms = 0.0;
  double speedup = 1.0;
  std::size_t pool_reuses = 0;
  std::size_t partitions = 0;
  bool bit_identical = false;
};

double TimeJoinMs(const MdObject& m1, const MdObject& m2, ExecContext* exec,
                  int iterations) {
  double best = 1e300;
  for (int i = 0; i < iterations; ++i) {
    auto start = std::chrono::steady_clock::now();
    auto result = exec == nullptr
                      ? Join(m1, m2, JoinPredicate::kEqual)
                      : Join(m1, m2, JoinPredicate::kEqual, exec);
    auto stop = std::chrono::steady_clock::now();
    if (!result.ok()) {
      std::fprintf(stderr, "join failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    double ms = std::chrono::duration<double, std::milli>(stop - start)
                    .count();
    if (ms < best) best = ms;
  }
  return best;
}

void WriteJson(const std::vector<SweepRow>& rows, const char* path) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"join_scaling\",\n  \"peak_rss_kb\": %zu,\n"
               "  \"rows\": [\n",
               mddc_bench::PeakRssKb());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& r = rows[i];
    std::fprintf(out,
                 "    {\"facts\": %zu, \"threads\": %zu, "
                 "\"wall_ms\": %.3f, \"speedup_vs_1thread\": %.3f, "
                 "\"pool_reuses\": %zu, \"partitions\": %zu, "
                 "\"bit_identical\": %s}%s\n",
                 r.facts, r.threads, r.wall_ms, r.speedup, r.pool_reuses,
                 r.partitions, r.bit_identical ? "true" : "false",
                 i + 1 == rows.size() ? "" : ",");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main() {
  std::size_t max_facts = 1000000;
  if (const char* cap = std::getenv("MDDC_SWEEP_MAX_FACTS")) {
    max_facts = static_cast<std::size_t>(std::strtoull(cap, nullptr, 10));
  }

  std::vector<SweepRow> rows;
  std::printf("%10s %8s %12s %10s %12s %6s\n", "facts", "threads",
              "wall_ms", "speedup", "pool_reuses", "ident");
  for (std::size_t facts : {std::size_t{10000}, std::size_t{100000},
                            std::size_t{1000000}}) {
    if (facts > max_facts) continue;
    auto registry = std::make_shared<FactRegistry>();
    MdObject m1 = MakeOperand(facts, "", registry);
    MdObject m2 = MakeOperand(facts, "'", registry);
    const int iterations = facts >= 1000000 ? 3 : 5;

    auto sequential = Join(m1, m2, JoinPredicate::kEqual);
    if (!sequential.ok()) {
      std::fprintf(stderr, "sequential join failed: %s\n",
                   sequential.status().ToString().c_str());
      return 1;
    }
    const std::string sequential_bytes =
        std::move(io::WriteMo(*sequential)).ValueOrDie();

    double baseline_ms = 0.0;
    for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                                std::size_t{4}, std::size_t{8}}) {
      SweepRow row;
      row.facts = facts;
      row.threads = threads;

      {
        // Bit-identity, once per configuration, before any timing.
        ExecContext check(threads, /*min_facts=*/1);
        auto parallel = Join(m1, m2, JoinPredicate::kEqual, &check);
        row.bit_identical =
            parallel.ok() &&
            std::move(io::WriteMo(*parallel)).ValueOrDie() ==
                sequential_bytes;
        if (!row.bit_identical) {
          std::fprintf(stderr,
                       "FATAL: join not bit-identical at %zu threads\n",
                       threads);
          return 1;
        }
      }

      ExecContext ctx(threads, /*min_facts=*/1);
      row.wall_ms = TimeJoinMs(m1, m2, &ctx, iterations);
      if (threads == 1) baseline_ms = row.wall_ms;
      row.speedup = baseline_ms > 0.0 ? baseline_ms / row.wall_ms : 1.0;
      row.pool_reuses = ctx.stats.pool_reuses;
      row.partitions = ctx.stats.partitions;
      rows.push_back(row);
      std::printf("%10zu %8zu %12.3f %10.2f %12zu %6s\n", row.facts,
                  row.threads, row.wall_ms, row.speedup, row.pool_reuses,
                  row.bit_identical ? "yes" : "NO");
    }
  }
  WriteJson(rows, "BENCH_join.json");
  return 0;
}
