// Requirement 6 head-to-head: counting patients per diagnosis group with
// many-to-many fact-dimension relationships.
//
//  * extended model: set-count over fact sets — correct by construction;
//  * star schema: COUNT(*) over duplicated fact rows — fast but WRONG
//    (double counts);
//  * star schema repaired: COUNT(DISTINCT patient) — correct counts, but
//    the same duplication still breaks SUMs.
//
// The custom main first prints the correctness comparison (who double
// counts, by how much), then runs the timing benchmarks.
//
//   $ ./bench/bench_many_to_many

#include <benchmark/benchmark.h>

#include <iostream>
#include <map>

#include "algebra/operators.h"
#include "baselines/star_schema.h"
#include "workload/clinical_generator.h"

namespace {

using namespace mddc;
using relational::AggregateTerm;
using relational::Relation;
using relational::Value;

constexpr std::size_t kPatients = 500;

ClinicalMo BuildWorkload() {
  ClinicalWorkloadParams params;
  params.num_patients = kPatients;
  params.num_groups = 4;
  params.mean_extra_diagnoses = 3.0;  // strongly many-to-many
  params.reclassified_rate = 0.0;     // keep the comparison atemporal
  params.uncertain_rate = 0.0;
  params.coarse_granularity_rate = 0.0;
  return std::move(
             GenerateClinicalWorkload(params,
                                      std::make_shared<FactRegistry>()))
      .ValueOrDie();
}

/// Flattens the clinical MO into a star schema: one fact row per
/// (patient, diagnosis) pair, one dimension row per (low-level, family,
/// group) path.
StarSchemaEngine BuildStar(const ClinicalMo& workload) {
  StarSchemaEngine engine;
  Relation diagnosis({"diag_key", "low", "grp"});
  std::map<std::pair<ValueId, ValueId>, std::int64_t> keys;
  const Dimension& dimension = workload.mo.dimension(workload.diagnosis_dim);
  std::int64_t next_key = 1;
  for (ValueId low : dimension.ValuesIn(workload.low_level)) {
    for (const auto& c : dimension.AncestorsIn(low, workload.group)) {
      keys[{low, c.value}] = next_key;
      (void)diagnosis.Insert(
          {Value(next_key), Value(static_cast<std::int64_t>(low.raw())),
           Value(static_cast<std::int64_t>(c.value.raw()))});
      ++next_key;
    }
  }
  (void)engine.AddDimensionTable("Diagnosis", std::move(diagnosis),
                                 "diag_key");
  Relation fact({"patient", "diag_fk"});
  for (const auto& entry :
       workload.mo.relation(workload.diagnosis_dim).entries()) {
    auto term = workload.mo.registry()->Get(entry.fact);
    for (const auto& c :
         dimension.AncestorsIn(entry.value, workload.group)) {
      auto key = keys.find({entry.value, c.value});
      if (key == keys.end()) continue;
      (void)fact.Insert({Value(static_cast<std::int64_t>(term->atom)),
                         Value(key->second)});
    }
  }
  (void)engine.SetFactTable(std::move(fact), {{"Diagnosis", "diag_fk"}});
  return engine;
}

AggregateSpec GroupSpec(const ClinicalMo& workload) {
  AggregateSpec spec{AggFunction::SetCount(), {}, ResultDimensionSpec::Auto(),
                     kNowChronon, true};
  for (std::size_t i = 0; i < workload.mo.dimension_count(); ++i) {
    spec.grouping.push_back(i == workload.diagnosis_dim
                                ? workload.group
                                : workload.mo.dimension(i).type().top());
  }
  return spec;
}

void PrintCorrectnessComparison() {
  ClinicalMo workload = BuildWorkload();
  StarSchemaEngine star = BuildStar(workload);

  // Ground truth: distinct patients per group from the MO.
  std::map<std::uint64_t, double> truth;
  auto aggregated = AggregateFormation(workload.mo, GroupSpec(workload));
  const std::size_t result_dim = aggregated->dimension_count() - 1;
  for (FactId fact : aggregated->facts()) {
    auto group_pairs =
        aggregated->relation(workload.diagnosis_dim).ForFact(fact);
    auto count_pairs = aggregated->relation(result_dim).ForFact(fact);
    if (group_pairs.empty() || count_pairs.empty()) continue;
    truth[group_pairs.front()->value.raw()] =
        *aggregated->dimension(result_dim)
             .NumericValueOf(count_pairs.front()->value);
  }

  auto star_counts = star.AggregateByLevel(
      "Diagnosis", "grp", {AggregateTerm::Func::kCountStar, "", "n"});

  std::cout << "Correctness: patients per diagnosis group ("
            << kPatients << " patients, many-to-many)\n";
  std::cout << "  group | MD model (correct) | star COUNT(*) | inflation\n";
  double total_truth = 0.0;
  double total_star = 0.0;
  for (const auto& tuple : star_counts->tuples()) {
    std::uint64_t group = static_cast<std::uint64_t>(*tuple[0].AsInt());
    double star_count = static_cast<double>(*tuple[1].AsInt());
    double correct = truth.count(group) ? truth[group] : 0.0;
    total_truth += correct;
    total_star += star_count;
    std::cout << "  " << group % 1000 << "     | " << correct
              << "              | " << star_count << "          | x"
              << (correct > 0 ? star_count / correct : 0.0) << "\n";
  }
  std::cout << "  TOTAL | " << total_truth << " | " << total_star
            << " | x" << total_star / total_truth
            << "  <- the star schema double counts\n\n";
}

void BM_MdModelSetCount(benchmark::State& state) {
  ClinicalMo workload = BuildWorkload();
  AggregateSpec spec = GroupSpec(workload);
  for (auto _ : state) {
    auto result = AggregateFormation(workload.mo, spec);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_MdModelSetCount);

void BM_StarCountStar(benchmark::State& state) {
  ClinicalMo workload = BuildWorkload();
  StarSchemaEngine star = BuildStar(workload);
  for (auto _ : state) {
    auto result = star.AggregateByLevel(
        "Diagnosis", "grp", {AggregateTerm::Func::kCountStar, "", "n"});
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_StarCountStar);

void BM_StarCountDistinct(benchmark::State& state) {
  ClinicalMo workload = BuildWorkload();
  StarSchemaEngine star = BuildStar(workload);
  for (auto _ : state) {
    auto result = star.AggregateByLevel(
        "Diagnosis", "grp",
        {AggregateTerm::Func::kCountDistinct, "patient", "n"});
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_StarCountDistinct);

}  // namespace

int main(int argc, char** argv) {
  PrintCorrectnessComparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
