#ifndef MDDC_BENCH_LATENCY_RECORDER_H_
#define MDDC_BENCH_LATENCY_RECORDER_H_

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <vector>

// Latency bookkeeping shared by the serving-tier benches
// (bench_serve_concurrency, bench_stress_mix): per-statement wall-time
// samples in milliseconds plus nearest-rank percentiles.

namespace mddc {
namespace bench {

/// Nearest-rank percentile; sorts the samples in place. Returns 0 when
/// there are none.
inline double PercentileMs(std::vector<double>& latencies_ms,
                           double fraction) {
  if (latencies_ms.empty()) return 0.0;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  std::size_t index = static_cast<std::size_t>(
      fraction * static_cast<double>(latencies_ms.size() - 1));
  return latencies_ms[index];
}

/// One thread's samples: record with Start()/Stop() around the measured
/// call, merge per-thread recorders after the join.
class LatencyRecorder {
 public:
  void Reserve(std::size_t samples) { ms_.reserve(samples); }

  void Start() { start_ = std::chrono::steady_clock::now(); }

  void Stop() {
    const auto end = std::chrono::steady_clock::now();
    ms_.push_back(
        std::chrono::duration<double, std::milli>(end - start_).count());
  }

  void Merge(const LatencyRecorder& other) {
    ms_.insert(ms_.end(), other.ms_.begin(), other.ms_.end());
  }

  std::size_t count() const { return ms_.size(); }

  /// Mutable: Percentile sorts the samples.
  std::vector<double>& samples() { return ms_; }

  double Percentile(double fraction) { return PercentileMs(ms_, fraction); }

 private:
  std::vector<double> ms_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace bench
}  // namespace mddc

#endif  // MDDC_BENCH_LATENCY_RECORDER_H_
