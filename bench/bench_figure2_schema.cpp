// Regenerates Figure 2 of the paper: the schema of the "Patient" MO — the
// six dimension-type lattices with their bottom/top elements and multiple
// hierarchies (Day < Week and Day < Month < Quarter < Year < Decade).
//
//   $ ./bench/bench_figure2_schema

#include <cstdlib>
#include <iostream>

#include "workload/case_study.h"

int main() {
  auto cs = mddc::BuildCaseStudy();
  if (!cs.ok()) {
    std::cerr << "error: " << cs.status() << "\n";
    return 1;
  }

  std::cout << "====================================================\n";
  std::cout << " Figure 2 (ICDE'99): Schema of the Patient case study\n";
  std::cout << "====================================================\n\n";
  std::cout << mddc::RenderSchemaLattices(*cs);

  std::cout << "Checks against the figure:\n";
  const mddc::DimensionType& dob = cs->mo.dimension(cs->dob).type();
  auto day = dob.Find("Day");
  std::cout << " * Day has " << dob.Pred(*day).size()
            << " immediate predecessor categories (Week, Month)\n";
  const mddc::DimensionType& diagnosis =
      cs->mo.dimension(cs->diagnosis).type();
  std::cout << " * Diagnosis chain: "
            << diagnosis.category(diagnosis.bottom()).name
            << " < Diagnosis Family < Diagnosis Group < TOP\n";
  const mddc::DimensionType& name = cs->mo.dimension(cs->name).type();
  std::cout << " * Name is simple: " << name.category_count()
            << " categories (Name, TOP)\n";
  const mddc::DimensionType& age = cs->mo.dimension(cs->age).type();
  std::cout << " * Age chain: Age < Five-year Group < Ten-year Group < TOP ("
            << age.category_count() << " categories)\n";
  return 0;
}
