// Serving-tier concurrency sweep: N reader sessions executing the same
// MDQL aggregate against an MoStore while one background writer keeps
// publishing new epochs (serve/mo_store.h, serve/mdql_server.h). The
// interesting numbers are aggregate read throughput and tail latency as
// sessions pile on — reads pin epochs with one atomic load and never
// take a lock, so throughput should degrade only with CPU
// oversubscription, not with writer activity.
//
//   $ ./bench/bench_serve_concurrency
//
// Sweeps sessions x facts (10^4..10^6 purchases); MDDC_SWEEP_MAX_FACTS
// caps the largest fact count (default 1000000), e.g.
// MDDC_SWEEP_MAX_FACTS=100000 for a quick run or sanitizer builds.
// MDDC_SERVE_QUERIES overrides the per-session query count and
// MDDC_SERVE_WRITER_MS the writer's inter-batch sleep (default 25ms —
// every batch re-seals the MO, so on a small machine a hotter writer
// turns the sweep into a measurement of seal contention only).
// Results go to stdout as a table and to BENCH_serve.json.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "latency_recorder.h"
#include "peak_rss.h"
#include "serve/mdql_server.h"
#include "serve/mo_store.h"
#include "workload/retail_generator.h"

namespace {

using namespace mddc;
using namespace mddc::serve;

constexpr const char* kQuery = "SELECT SUM(Amount) FROM sales BY Product.Category";

MdObject BuildSales(std::size_t purchases) {
  RetailWorkloadParams params;
  params.seed = 7;
  params.num_purchases = purchases;
  auto workload =
      GenerateRetailWorkload(params, std::make_shared<FactRegistry>());
  if (!workload.ok()) {
    std::fprintf(stderr, "workload generation failed: %s\n",
                 workload.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(workload).ValueOrDie().mo;
}

/// The background writer's batch: three new atomic facts, keyed outside
/// the generator's purchase space, related to the first bottom value of
/// the Product dimension.
Status ApplyBatch(MdObject& mo, std::uint64_t batch) {
  const CategoryTypeIndex bottom = mo.dimension(0).type().bottom();
  const ValueId value = mo.dimension(0).ValuesIn(bottom).front();
  for (std::uint64_t j = 0; j < 3; ++j) {
    const FactId fact = mo.registry()->Atom(9000000 + batch * 3 + j);
    MDDC_RETURN_NOT_OK(mo.AddFact(fact));
    MDDC_RETURN_NOT_OK(mo.Relate(0, fact, value));
  }
  return mo.CoverWithTop();
}

struct SweepRow {
  std::size_t facts = 0;
  std::size_t sessions = 0;
  std::size_t queries = 0;          // total across sessions
  std::uint64_t epochs = 0;         // writer publications during the run
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

SweepRow RunOne(MoStore& store, MdqlServer& server, std::size_t facts,
                std::size_t sessions, std::size_t queries_per_session,
                std::size_t writer_sleep_ms) {
  const std::uint64_t epoch_before = store.epoch();

  // Background writer: mutation batches at a steady cadence until the
  // readers are done. Each batch re-seals and publishes a new epoch.
  std::atomic<bool> stop{false};
  std::thread writer([&store, &stop, writer_sleep_ms] {
    std::uint64_t batch = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      Status status = store.Mutate("sales", [batch](MdObject& draft) {
        return ApplyBatch(draft, batch);
      });
      if (!status.ok()) {
        std::fprintf(stderr, "writer batch failed: %s\n",
                     status.ToString().c_str());
        std::exit(1);
      }
      ++batch;
      std::this_thread::sleep_for(std::chrono::milliseconds(writer_sleep_ms));
    }
  });

  std::vector<mddc::bench::LatencyRecorder> latencies(sessions);
  std::vector<std::thread> readers;
  readers.reserve(sessions);
  const auto wall_start = std::chrono::steady_clock::now();
  for (std::size_t s = 0; s < sessions; ++s) {
    latencies[s].Reserve(queries_per_session);
    readers.emplace_back([&server, &latencies, s, queries_per_session] {
      ServerSession session = server.Connect();
      for (std::size_t q = 0; q < queries_per_session; ++q) {
        latencies[s].Start();
        auto result = session.Execute(kQuery);
        latencies[s].Stop();
        if (!result.ok()) {
          std::fprintf(stderr, "read failed: %s\n",
                       result.status().ToString().c_str());
          std::exit(1);
        }
      }
    });
  }
  for (std::thread& t : readers) t.join();
  const auto wall_end = std::chrono::steady_clock::now();
  stop.store(true, std::memory_order_relaxed);
  writer.join();

  mddc::bench::LatencyRecorder all;
  for (const auto& per_session : latencies) all.Merge(per_session);
  const double wall_s =
      std::chrono::duration<double>(wall_end - wall_start).count();

  SweepRow row;
  row.facts = facts;
  row.sessions = sessions;
  row.queries = all.count();
  row.epochs = store.epoch() - epoch_before;
  row.qps = wall_s > 0.0 ? static_cast<double>(all.count()) / wall_s : 0.0;
  row.p50_ms = all.Percentile(0.50);
  row.p99_ms = all.Percentile(0.99);
  return row;
}

void WriteJson(const std::vector<SweepRow>& rows, const char* path) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"serve_concurrency\",\n"
               "  \"peak_rss_kb\": %zu,\n  \"rows\": [\n",
               mddc_bench::PeakRssKb());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& r = rows[i];
    std::fprintf(out,
                 "    {\"facts\": %zu, \"sessions\": %zu, \"queries\": %zu, "
                 "\"writer_epochs\": %llu, \"qps\": %.1f, "
                 "\"p50_ms\": %.3f, \"p99_ms\": %.3f}%s\n",
                 r.facts, r.sessions, r.queries,
                 static_cast<unsigned long long>(r.epochs), r.qps, r.p50_ms,
                 r.p99_ms, i + 1 == rows.size() ? "" : ",");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main() {
  std::size_t max_facts = 1000000;
  if (const char* cap = std::getenv("MDDC_SWEEP_MAX_FACTS")) {
    max_facts = static_cast<std::size_t>(std::strtoull(cap, nullptr, 10));
  }
  std::size_t queries_override = 0;
  if (const char* q = std::getenv("MDDC_SERVE_QUERIES")) {
    queries_override = static_cast<std::size_t>(std::strtoull(q, nullptr, 10));
  }
  std::size_t writer_sleep_ms = 25;
  if (const char* w = std::getenv("MDDC_SERVE_WRITER_MS")) {
    writer_sleep_ms = static_cast<std::size_t>(std::strtoull(w, nullptr, 10));
  }

  std::vector<SweepRow> rows;
  std::printf("%9s %9s %8s %8s %10s %9s %9s\n", "facts", "sessions",
              "queries", "epochs", "qps", "p50_ms", "p99_ms");
  for (std::size_t facts : {std::size_t{10000}, std::size_t{100000},
                            std::size_t{1000000}}) {
    if (facts > max_facts) continue;
    MoStore store;
    MdqlServer server(&store);
    {
      Status status = store.Publish("sales", BuildSales(facts));
      if (!status.ok()) {
        std::fprintf(stderr, "publish failed: %s\n",
                     status.ToString().c_str());
        return 1;
      }
    }
    // Fewer queries per session at larger fact counts keeps the whole
    // sweep to minutes; throughput is a rate, so the count only needs to
    // be large enough for stable percentiles.
    const std::size_t queries_per_session =
        queries_override != 0 ? queries_override
        : facts >= 1000000    ? 2
        : facts >= 100000     ? 6
                              : 12;
    for (std::size_t sessions :
         {std::size_t{1}, std::size_t{2}, std::size_t{8}, std::size_t{32}}) {
      SweepRow row = RunOne(store, server, facts, sessions,
                            queries_per_session, writer_sleep_ms);
      std::printf("%9zu %9zu %8zu %8llu %10.1f %9.3f %9.3f\n", row.facts,
                  row.sessions, row.queries,
                  static_cast<unsigned long long>(row.epochs), row.qps,
                  row.p50_ms, row.p99_ms);
      std::fflush(stdout);
      rows.push_back(row);
    }
  }

  WriteJson(rows, "BENCH_serve.json");
  return 0;
}
