// Summarizability-guided pre-aggregate reuse (Section 3.4's motivation):
// answering a coarse query from materialized finer partials versus
// rescanning the base MO — and the safety valve: non-summarizable
// materializations (AVG, or c-typed results) are never reused.
//
//   $ ./bench/bench_preagg_reuse

#include <benchmark/benchmark.h>

#include <iostream>

#include "engine/preagg_cache.h"
#include "workload/retail_generator.h"

namespace {

using namespace mddc;

RetailMo BuildRetail(std::size_t purchases) {
  RetailWorkloadParams params;
  params.num_purchases = purchases;
  return std::move(
             GenerateRetailWorkload(params, std::make_shared<FactRegistry>()))
      .ValueOrDie();
}

std::vector<CategoryTypeIndex> GroupingAt(const MdObject& mo,
                                          std::size_t dim,
                                          CategoryTypeIndex category) {
  std::vector<CategoryTypeIndex> grouping;
  for (std::size_t i = 0; i < mo.dimension_count(); ++i) {
    grouping.push_back(i == dim ? category : mo.dimension(i).type().top());
  }
  return grouping;
}

void BM_DepartmentSumFromBase(benchmark::State& state) {
  RetailMo retail = BuildRetail(static_cast<std::size_t>(state.range(0)));
  auto grouping =
      GroupingAt(retail.mo, retail.product_dim, retail.department);
  AggregateSpec spec{AggFunction::Sum(retail.amount_dim), grouping,
                     ResultDimensionSpec::Auto(), kNowChronon, true};
  for (auto _ : state) {
    auto result = AggregateFormation(retail.mo, spec);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DepartmentSumFromBase)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_DepartmentSumFromCategoryPartials(benchmark::State& state) {
  RetailMo retail = BuildRetail(static_cast<std::size_t>(state.range(0)));
  PreAggregateCache cache(retail.mo);
  // Materialize once at Category level (10 categories).
  (void)cache.Materialize(
      AggFunction::Sum(retail.amount_dim),
      GroupingAt(retail.mo, retail.product_dim, retail.category));
  auto coarse = GroupingAt(retail.mo, retail.product_dim, retail.department);
  for (auto _ : state) {
    // A fresh cache per iteration would re-materialize; instead query a
    // cache that holds only the category partials, clearing the memoized
    // department entry by using a new cache seeded the same way is
    // expensive — so measure the roll-up path via a cache whose exact
    // entry is evicted: simplest honest approach is rebuilding the cache
    // outside the timed region.
    state.PauseTiming();
    PreAggregateCache fresh(retail.mo);
    (void)fresh.Materialize(
        AggFunction::Sum(retail.amount_dim),
        GroupingAt(retail.mo, retail.product_dim, retail.category));
    state.ResumeTiming();
    auto result = fresh.Query(AggFunction::Sum(retail.amount_dim), coarse);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DepartmentSumFromCategoryPartials)
    ->Arg(1000)
    ->Arg(4000)
    ->Arg(16000);

void BM_ExactCacheHit(benchmark::State& state) {
  RetailMo retail = BuildRetail(4000);
  PreAggregateCache cache(retail.mo);
  auto grouping =
      GroupingAt(retail.mo, retail.product_dim, retail.department);
  (void)cache.Materialize(AggFunction::Sum(retail.amount_dim), grouping);
  for (auto _ : state) {
    auto result = cache.Query(AggFunction::Sum(retail.amount_dim), grouping);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ExactCacheHit);

void PrintReuseSummary() {
  RetailMo retail = BuildRetail(4000);
  PreAggregateCache cache(retail.mo);
  (void)cache.Materialize(
      AggFunction::Sum(retail.amount_dim),
      GroupingAt(retail.mo, retail.product_dim, retail.product));
  (void)cache.Query(AggFunction::Sum(retail.amount_dim),
                    GroupingAt(retail.mo, retail.product_dim,
                               retail.category));
  (void)cache.Query(AggFunction::Sum(retail.amount_dim),
                    GroupingAt(retail.mo, retail.product_dim,
                               retail.department));
  (void)cache.Query(AggFunction::Avg(retail.price_dim),
                    GroupingAt(retail.mo, retail.store_dim, retail.city));
  (void)cache.Query(AggFunction::Avg(retail.price_dim),
                    GroupingAt(retail.mo, retail.store_dim, retail.region));
  std::cout << "Reuse summary over a product-hierarchy query sequence:\n"
            << "  base scans:       " << cache.stats().base_scans
            << "  (initial materialization + the two AVG queries)\n"
            << "  rollup reuses:    " << cache.stats().rollup_hits
            << "  (category and department SUMs from product partials)\n"
            << "  reuse refusals:   " << cache.stats().reuse_refusals
            << "  (AVG partials are not distributive -> never merged)\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  PrintReuseSummary();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
