// Group-by kernel sweep: group count x fact count x threads, the
// dense-slot and flat-hash kernels (docs/groupby_kernel.md) against the
// ordered-map baseline they replace, with a one-time bit-identity check
// per configuration before any timing counts. Results go to stdout as a
// table and to BENCH_groupby.json as machine-readable records.
//
//   $ ./bench/bench_groupby_kernel
//
// MDDC_SWEEP_MAX_FACTS caps the largest fact count (default 1000000),
// e.g. MDDC_SWEEP_MAX_FACTS=100000 for a quick run or sanitizer builds.
//
// The schema is hand-built, strict and non-temporal: a two-level product
// hierarchy whose parent level carries exactly `groups` values (so the
// dense slot space is `groups` wide) plus a numeric measure dimension
// summed per group. The flat-hash engine is timed on the same workload by
// forcing the slot threshold to zero.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "algebra/operators.h"
#include "common/strings.h"
#include "engine/executor.h"
#include "io/serialize.h"
#include "peak_rss.h"

namespace {

using namespace mddc;

constexpr std::size_t kFanout = 8;  // bottom values per group

struct Workload {
  MdObject mo;
  CategoryTypeIndex parent_category = 0;
};

Workload MakeWorkload(std::size_t groups, std::size_t num_facts) {
  DimensionTypeBuilder product_builder("Product");
  product_builder.AddCategory("Item", AggregationType::kConstant)
      .AddCategory("Group", AggregationType::kConstant)
      .AddOrder("Item", "Group");
  auto product_type = std::move(product_builder.Build()).ValueOrDie();
  Dimension products(product_type);
  const CategoryTypeIndex item = *product_type->Find("Item");
  const CategoryTypeIndex group = *product_type->Find("Group");
  std::vector<ValueId> items;
  std::uint64_t next_id = 1;
  for (std::size_t g = 0; g < groups; ++g) {
    ValueId group_id(next_id++);
    (void)products.AddValue(group, group_id);
    for (std::size_t i = 0; i < kFanout; ++i) {
      ValueId item_id(next_id++);
      (void)products.AddValue(item, item_id);
      (void)products.AddOrder(item_id, group_id);
      items.push_back(item_id);
    }
  }

  DimensionTypeBuilder measure_builder("Amount");
  measure_builder.AddCategory("Value", AggregationType::kSum);
  auto measure_type = std::move(measure_builder.Build()).ValueOrDie();
  Dimension amounts(measure_type);
  const CategoryTypeIndex reading = measure_type->bottom();
  Representation& rep = amounts.RepresentationFor(reading, "Value");
  constexpr std::size_t kDistinctAmounts = 256;
  std::vector<ValueId> amount_values;
  for (std::size_t i = 0; i < kDistinctAmounts; ++i) {
    ValueId id(1000000 + i);
    (void)amounts.AddValue(reading, id);
    (void)rep.Set(id, FormatDouble(0.25 * static_cast<double>(i + 1)));
    amount_values.push_back(id);
  }

  auto registry = std::make_shared<FactRegistry>();
  MdObject mo("Purchase", {std::move(products), std::move(amounts)},
              registry, TemporalType::kSnapshot);
  for (std::size_t i = 0; i < num_facts; ++i) {
    FactId fact = registry->Atom(i);
    (void)mo.AddFact(fact);
    // Stride by a prime so neighbouring facts land in different groups.
    (void)mo.Relate(0, fact, items[(i * 31) % items.size()],
                    Lifespan::AlwaysSpan());
    (void)mo.Relate(1, fact, amount_values[i % amount_values.size()],
                    Lifespan::AlwaysSpan());
  }
  return Workload{std::move(mo), group};
}

struct SweepRow {
  std::size_t groups = 0;
  std::size_t facts = 0;
  std::size_t threads = 0;
  double map_ms = 0.0;
  double dense_ms = 0.0;
  double flat_ms = 0.0;
  double speedup = 1.0;  // map / dense
  bool bit_identical = false;
};

double TimeAggregateMs(const MdObject& mo, const AggregateSpec& spec,
                       std::size_t threads, bool force_flat,
                       int iterations) {
  double best = 1e300;
  for (int i = 0; i < iterations; ++i) {
    std::unique_ptr<ExecContext> ctx;
    if (threads > 0) {
      ctx = std::make_unique<ExecContext>(threads, /*min_facts=*/1);
      if (force_flat) ctx->max_dense_groupby_slots = 0;
    }
    auto start = std::chrono::steady_clock::now();
    auto result = AggregateFormation(mo, spec, ctx.get());
    auto stop = std::chrono::steady_clock::now();
    if (!result.ok()) {
      std::fprintf(stderr, "aggregate failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (ms < best) best = ms;
  }
  return best;
}

void WriteJson(const std::vector<SweepRow>& rows, const char* path) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"groupby_kernel\",\n  \"peak_rss_kb\": %zu,\n"
               "  \"rows\": [\n",
               mddc_bench::PeakRssKb());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& r = rows[i];
    std::fprintf(out,
                 "    {\"groups\": %zu, \"facts\": %zu, \"threads\": %zu, "
                 "\"map_ms\": %.3f, \"dense_ms\": %.3f, \"flat_ms\": %.3f, "
                 "\"speedup_dense_vs_map\": %.3f, \"bit_identical\": %s}%s\n",
                 r.groups, r.facts, r.threads, r.map_ms, r.dense_ms,
                 r.flat_ms, r.speedup, r.bit_identical ? "true" : "false",
                 i + 1 == rows.size() ? "" : ",");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main() {
  std::size_t max_facts = 1000000;
  if (const char* cap = std::getenv("MDDC_SWEEP_MAX_FACTS")) {
    max_facts = static_cast<std::size_t>(std::strtoull(cap, nullptr, 10));
  }

  std::vector<SweepRow> rows;
  std::printf("%7s %9s %8s %10s %10s %10s %9s %6s\n", "groups", "facts",
              "threads", "map_ms", "dense_ms", "flat_ms", "speedup",
              "ident");
  for (std::size_t groups : {std::size_t{64}, std::size_t{4096}}) {
    for (std::size_t facts : {std::size_t{10000}, std::size_t{100000},
                              std::size_t{1000000}}) {
      if (facts > max_facts) continue;
      Workload workload = MakeWorkload(groups, facts);
      AggregateSpec spec{AggFunction::Sum(1),
                         {workload.parent_category,
                          workload.mo.dimension(1).type().top()},
                         ResultDimensionSpec::Auto(),
                         kNowChronon,
                         /*enforce_aggregation_types=*/true};
      const int iterations = facts >= 1000000 ? 3 : 5;

      // Bit-identity, once per configuration, before any timing: the
      // ordered-map baseline against the dense kernel (1 and 8 threads)
      // and the forced flat-hash kernel.
      auto baseline = AggregateFormation(workload.mo, spec);
      if (!baseline.ok()) {
        std::fprintf(stderr, "baseline aggregate failed: %s\n",
                     baseline.status().ToString().c_str());
        return 1;
      }
      const std::string baseline_bytes =
          std::move(io::WriteMo(*baseline)).ValueOrDie();
      bool bit_identical = true;
      for (std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
        for (bool force_flat : {false, true}) {
          ExecContext check(threads, /*min_facts=*/1);
          if (force_flat) check.max_dense_groupby_slots = 0;
          auto kernel = AggregateFormation(workload.mo, spec, &check);
          if (!kernel.ok() ||
              std::move(io::WriteMo(*kernel)).ValueOrDie() !=
                  baseline_bytes) {
            bit_identical = false;
          }
          const bool expect_dense = !force_flat;
          if (expect_dense != (check.stats.dense_groupby_runs == 1)) {
            std::fprintf(stderr,
                         "FATAL: unexpected engine at groups=%zu "
                         "facts=%zu threads=%zu force_flat=%d\n",
                         groups, facts, threads,
                         force_flat ? 1 : 0);
            return 1;
          }
        }
      }
      if (!bit_identical) {
        std::fprintf(stderr,
                     "FATAL: kernel not bit-identical at groups=%zu "
                     "facts=%zu\n",
                     groups, facts);
        return 1;
      }

      const double map_ms =
          TimeAggregateMs(workload.mo, spec, 0, false, iterations);
      for (std::size_t threads :
           {std::size_t{1}, std::size_t{2}, std::size_t{4},
            std::size_t{8}}) {
        SweepRow row;
        row.groups = groups;
        row.facts = facts;
        row.threads = threads;
        row.map_ms = map_ms;
        row.dense_ms =
            TimeAggregateMs(workload.mo, spec, threads, false, iterations);
        row.flat_ms =
            TimeAggregateMs(workload.mo, spec, threads, true, iterations);
        row.speedup = row.dense_ms > 0.0 ? row.map_ms / row.dense_ms : 1.0;
        row.bit_identical = true;
        rows.push_back(row);
        std::printf("%7zu %9zu %8zu %10.3f %10.3f %10.3f %9.2f %6s\n",
                    row.groups, row.facts, row.threads, row.map_ms,
                    row.dense_ms, row.flat_ms, row.speedup, "yes");
      }
    }
  }
  WriteJson(rows, "BENCH_groupby.json");
  return 0;
}
