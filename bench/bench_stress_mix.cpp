// Mixed-workload stress bench: the YCSB-style query-mix driver
// (stress/driver.h) replaying weighted roll-up/drill-down, temporal,
// probabilistic, star-join and INSERT operations over the clinical
// workload, through concurrent MdqlServer sessions against a live
// MoStore writer. Reports per-class throughput and tail latency.
//
//   $ ./bench/bench_stress_mix
//
// Sweeps sessions x facts (10^5..10^6 patients); MDDC_SWEEP_MAX_FACTS
// caps the largest fact count (default 1000000). MDDC_STRESS_MIX
// overrides the mix spec (e.g. "rollup=1,insert=8" for a write-heavy
// run), MDDC_STRESS_OPS the per-session operation count. Before the
// sweep, one small recorded run goes through the differential oracle
// (stress/oracle.h) so the bench never measures a serving tier that
// returns wrong bytes. Results go to stdout and BENCH_stress.json.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "latency_recorder.h"
#include "peak_rss.h"
#include "serve/mdql_server.h"
#include "serve/mo_store.h"
#include "stress/driver.h"
#include "stress/mix.h"
#include "stress/oracle.h"
#include "workload/clinical_generator.h"

namespace {

using namespace mddc;
using namespace mddc::stress;

ClinicalWorkloadParams ParamsFor(std::size_t patients) {
  ClinicalWorkloadParams params;
  params.seed = 11;
  params.num_patients = patients;
  return params;
}

ClinicalMo BuildClinical(const ClinicalWorkloadParams& params) {
  auto workload =
      GenerateClinicalWorkload(params, std::make_shared<FactRegistry>());
  if (!workload.ok()) {
    std::fprintf(stderr, "workload generation failed: %s\n",
                 workload.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(workload).ValueOrDie();
}

struct ClassRow {
  std::uint64_t statements = 0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

struct SweepRow {
  std::size_t facts = 0;
  std::size_t sessions = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t epochs = 0;
  double wall_seconds = 0.0;
  ClassRow per_class[kQueryClassCount];
};

SweepRow RunOne(serve::MdqlServer& server, const StressOptions& options,
                std::size_t facts) {
  auto report = RunStressMix(server, options);
  if (!report.ok()) {
    std::fprintf(stderr, "stress run failed: %s\n",
                 report.status().ToString().c_str());
    std::exit(1);
  }
  if (report->errors != 0) {
    std::fprintf(stderr, "stress run had %llu failed statements\n",
                 static_cast<unsigned long long>(report->errors));
    std::exit(1);
  }
  SweepRow row;
  row.facts = facts;
  row.sessions = options.sessions;
  row.reads = report->reads;
  row.writes = report->writes;
  row.epochs = report->epoch_after - report->epoch_before;
  row.wall_seconds = report->wall_seconds;
  for (std::size_t c = 0; c < kQueryClassCount; ++c) {
    ClassTally& tally = report->per_class[c];
    ClassRow& out = row.per_class[c];
    out.statements = tally.statements;
    out.qps = row.wall_seconds > 0.0
                  ? static_cast<double>(tally.statements) / row.wall_seconds
                  : 0.0;
    out.p50_ms = bench::PercentileMs(tally.latencies_ms, 0.50);
    out.p99_ms = bench::PercentileMs(tally.latencies_ms, 0.99);
  }
  return row;
}

/// One small recorded run replayed through the differential oracle; a
/// mismatch means the numbers below would describe a broken server.
void OracleGate(const MixSpec& mix) {
  const ClinicalWorkloadParams params = ParamsFor(5000);
  ClinicalMo clinical = BuildClinical(params);
  WorkloadProfile profile =
      WorkloadProfile::For(params, clinical, "clinical");

  serve::MoStore store;
  serve::MdqlServer server(&store);
  MdObject replica = clinical.mo;
  if (!store.Publish("clinical", std::move(clinical.mo)).ok()) {
    std::fprintf(stderr, "publish failed\n");
    std::exit(1);
  }
  const std::uint64_t base_epoch = store.epoch();

  StressOptions options;
  options.mix = mix;
  options.profile = profile;
  options.sessions = 4;
  options.ops_per_session = 10;
  options.cycle_classes = true;
  options.record = true;
  auto report = RunStressMix(server, options);
  if (!report.ok() || report->errors != 0) {
    std::fprintf(stderr, "oracle gate run failed\n");
    std::exit(1);
  }
  auto oracle = VerifySequentialReplay(std::move(replica), "clinical",
                                       base_epoch, *report);
  if (!oracle.ok()) {
    std::fprintf(stderr, "oracle replay failed: %s\n",
                 oracle.status().ToString().c_str());
    std::exit(1);
  }
  if (oracle->mismatches != 0) {
    std::fprintf(stderr,
                 "oracle gate: %zu of %zu reads diverged; first:\n%s\n",
                 oracle->mismatches, oracle->reads_checked,
                 oracle->first_mismatch.c_str());
    std::exit(1);
  }
  std::printf(
      "oracle gate: %zu reads and %zu writes byte-identical to the "
      "sequential replay\n\n",
      oracle->reads_checked, oracle->writes_replayed);
}

void WriteJson(const std::vector<SweepRow>& rows, const MixSpec& mix,
               const char* path) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"stress_mix\",\n  \"peak_rss_kb\": %zu,\n"
               "  \"mix\": \"%s\",\n",
               mddc_bench::PeakRssKb(), mix.ToString().c_str());
  std::fprintf(out, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& r = rows[i];
    std::fprintf(out,
                 "    {\"facts\": %zu, \"sessions\": %zu, \"reads\": %llu, "
                 "\"writes\": %llu, \"epochs\": %llu, "
                 "\"wall_seconds\": %.3f, \"classes\": {",
                 r.facts, r.sessions,
                 static_cast<unsigned long long>(r.reads),
                 static_cast<unsigned long long>(r.writes),
                 static_cast<unsigned long long>(r.epochs), r.wall_seconds);
    for (std::size_t c = 0; c < kQueryClassCount; ++c) {
      const ClassRow& cr = r.per_class[c];
      std::fprintf(out,
                   "%s\"%s\": {\"statements\": %llu, \"qps\": %.1f, "
                   "\"p50_ms\": %.3f, \"p99_ms\": %.3f}",
                   c == 0 ? "" : ", ",
                   QueryClassName(static_cast<QueryClass>(c)),
                   static_cast<unsigned long long>(cr.statements), cr.qps,
                   cr.p50_ms, cr.p99_ms);
    }
    std::fprintf(out, "}}%s\n", i + 1 == rows.size() ? "" : ",");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main() {
  std::size_t max_facts = 1000000;
  if (const char* cap = std::getenv("MDDC_SWEEP_MAX_FACTS")) {
    max_facts = static_cast<std::size_t>(std::strtoull(cap, nullptr, 10));
  }
  MixSpec mix;
  if (const char* text = std::getenv("MDDC_STRESS_MIX")) {
    auto parsed = MixSpec::Parse(text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "bad MDDC_STRESS_MIX: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    mix = *parsed;
  }
  std::size_t ops_override = 0;
  if (const char* ops = std::getenv("MDDC_STRESS_OPS")) {
    ops_override = static_cast<std::size_t>(std::strtoull(ops, nullptr, 10));
  }

  OracleGate(mix);

  // Sweep points capped by MDDC_SWEEP_MAX_FACTS; when the cap filters
  // out every point (sanitizer smokes), sweep at the cap itself so the
  // bench still measures something.
  std::vector<std::size_t> fact_counts;
  for (std::size_t facts : {std::size_t{100000}, std::size_t{1000000}}) {
    if (facts <= max_facts) fact_counts.push_back(facts);
  }
  if (fact_counts.empty() && max_facts > 0) fact_counts.push_back(max_facts);

  std::vector<SweepRow> rows;
  for (std::size_t facts : fact_counts) {
    const ClinicalWorkloadParams params = ParamsFor(facts);
    ClinicalMo clinical = BuildClinical(params);
    WorkloadProfile profile =
        WorkloadProfile::For(params, clinical, "clinical");
    serve::MoStore store;
    serve::MdqlServer server(&store);
    if (!store.Publish("clinical", std::move(clinical.mo)).ok()) {
      std::fprintf(stderr, "publish failed\n");
      return 1;
    }
    // Fewer operations at the large scale; throughput is a rate.
    const std::size_t ops = ops_override != 0  ? ops_override
                            : facts >= 1000000 ? 4
                                               : 10;
    for (std::size_t sessions : {std::size_t{2}, std::size_t{8}}) {
      StressOptions options;
      options.mix = mix;
      options.profile = profile;
      options.sessions = sessions;
      options.ops_per_session = ops;
      SweepRow row = RunOne(server, options, facts);
      std::printf("facts=%zu sessions=%zu reads=%llu writes=%llu "
                  "epochs=%llu wall=%.2fs\n",
                  row.facts, row.sessions,
                  static_cast<unsigned long long>(row.reads),
                  static_cast<unsigned long long>(row.writes),
                  static_cast<unsigned long long>(row.epochs),
                  row.wall_seconds);
      for (std::size_t c = 0; c < kQueryClassCount; ++c) {
        const ClassRow& cr = row.per_class[c];
        std::printf("  %-9s %6llu stmts %10.1f qps %9.3f p50_ms %9.3f "
                    "p99_ms\n",
                    QueryClassName(static_cast<QueryClass>(c)),
                    static_cast<unsigned long long>(cr.statements), cr.qps,
                    cr.p50_ms, cr.p99_ms);
      }
      std::fflush(stdout);
      rows.push_back(row);
    }
  }

  WriteJson(rows, mix, "BENCH_stress.json");
  return 0;
}
