// Regenerates Table 2 of the paper: the evaluation of eight previously
// proposed multidimensional data models against the nine requirements of
// Section 2.2 — extended with three *probed* rows:
//
//  * the two baselines implemented in this repository (Kimball star
//    schema, Gray data cube), whose probe outcomes are cross-checked
//    against the published rows, and
//  * this paper's extended model, whose full support of all nine
//    requirements is verified by executable probes (evidence printed).
//
//   $ ./bench/bench_table2_requirements

#include <iostream>

#include "baselines/conformance.h"

int main() {
  using namespace mddc;

  std::vector<ModelRow> rows = PublishedTable2();
  ModelRow star = ProbeStarSchemaBaseline();
  ModelRow cube = ProbeDataCubeBaseline();
  ModelRow ours = ProbeExtendedModel();
  rows.push_back(star);
  rows.push_back(cube);
  rows.push_back(ours);

  std::cout << "=========================================================\n";
  std::cout << " Table 2 (ICDE'99): model support for the 9 requirements\n";
  std::cout << " V = full, p = partial, - = none\n";
  std::cout << "=========================================================\n\n";
  std::cout << RenderTable2(rows) << "\n";

  std::cout << "Requirements:\n";
  for (std::size_t i = 0; i < kRequirementCount; ++i) {
    std::cout << " " << i + 1 << ". "
              << RequirementName(static_cast<Requirement>(i)) << "\n";
  }

  std::cout << "\nCross-checks against the published rows:\n";
  std::cout << " probed star schema  == Kimball [3] row: "
            << (MatchesPublishedRow(star, "Kimball [3]") ? "MATCH"
                                                          : "MISMATCH")
            << "\n";
  std::cout << " probed data cube    == Gray [2] row:    "
            << (MatchesPublishedRow(cube, "Gray [2]") ? "MATCH" : "MISMATCH")
            << "\n";

  std::cout << "\nEvidence for this paper's model (one probe per "
               "requirement):\n";
  for (std::size_t i = 0; i < kRequirementCount; ++i) {
    std::cout << " " << i + 1 << ". [" << SupportSymbol(ours.support[i])
              << "] " << ours.evidence[i] << "\n";
  }

  std::cout << "\nEvidence for the probed baselines (negatives are "
               "demonstrated, not asserted):\n";
  for (const ModelRow* row : {&star, &cube}) {
    std::cout << " " << row->name << ":\n";
    for (std::size_t i = 0; i < kRequirementCount; ++i) {
      std::cout << "   " << i + 1 << ". [" << SupportSymbol(row->support[i])
                << "] " << row->evidence[i] << "\n";
    }
  }
  return 0;
}
