// MDQL compiler bench: optimized (rewritten + fused) plans vs the
// tree-walk interpreter on a multi-statement roll-up/drill-down session
// over the clinical workload, with per-rule ablations
// (docs/mdql_compiler.md).
//
//   $ ./bench/bench_mdql_plan
//
// Sweeps 10^4..10^6 facts; MDDC_SWEEP_MAX_FACTS caps the largest count
// (default 1000000). Before measuring, every configuration's rendered
// output is checked byte-for-byte against the tree-walk baseline — the
// bench never reports a speedup for wrong answers. Results go to stdout
// and BENCH_plan.json (with peak RSS).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "engine/executor.h"
#include "mdql/mdql.h"
#include "mdql/rewrite.h"
#include "peak_rss.h"
#include "workload/clinical_generator.h"

namespace {

using namespace mddc;

/// The session: a coarse roll-up, two drill-downs under predicates, a
/// multi-aggregate report, and a residence slice — the statement mix the
/// stress driver's rollup class draws from.
const char* kSession[] = {
    "SELECT COUNT FROM clinical BY Diagnosis.\"Diagnosis Group\"",
    "SELECT COUNT FROM clinical BY Diagnosis.\"Diagnosis Family\" "
    "WHERE Diagnosis.\"Diagnosis Group\" = 'G1'",
    "SELECT COUNT FROM clinical BY Diagnosis.\"Low-level Diagnosis\" AS Seq "
    "WHERE Diagnosis.\"Diagnosis Family\" = 'F61'",
    "SELECT COUNT, COUNT(Diagnosis) FROM clinical "
    "BY Diagnosis.\"Diagnosis Family\"",
    "SELECT COUNT FROM clinical BY Residence.County "
    "WHERE Residence.Region = 'R0'",
};
constexpr std::size_t kSessionSize = std::size(kSession);

/// One measured configuration of the compiler.
struct Config {
  const char* name;
  mdql::CompileOptions options;
};

std::vector<Config> Configs() {
  std::vector<Config> configs;
  {
    Config c{"tree-walk", {}};
    c.options.enable_compiler = false;
    configs.push_back(c);
  }
  configs.push_back({"compiled", {}});
  {
    Config c{"rewrites-only", {}};  // rules run, fusion falls back
    c.options.enable_fusion = false;
    configs.push_back(c);
  }
  {
    Config c{"no-hoist-merge", {}};  // siblings never merge -> fallback
    c.options.rewrites.rule_mask =
        mdql::kAllRules &
        ~(mdql::kRuleHoistTimeslice | mdql::kRuleMergeSiblingAggregates);
    configs.push_back(c);
  }
  {
    Config c{"no-prune", {}};  // dead dims unlicensed -> fallback
    c.options.rewrites.rule_mask =
        mdql::kAllRules & ~mdql::kRulePruneDeadDimensions;
    configs.push_back(c);
  }
  return configs;
}

ClinicalMo BuildClinical(std::size_t patients) {
  ClinicalWorkloadParams params;
  params.seed = 17;
  params.num_patients = patients;
  auto workload =
      GenerateClinicalWorkload(params, std::make_shared<FactRegistry>());
  if (!workload.ok()) {
    std::fprintf(stderr, "workload generation failed: %s\n",
                 workload.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(workload).ValueOrDie();
}

struct Row {
  std::size_t facts = 0;
  std::string config;
  std::size_t reps = 0;
  double wall_seconds = 0.0;
  double stmts_per_sec = 0.0;
  double speedup = 0.0;  // vs tree-walk at the same fact count
  std::size_t rewrites_applied = 0;
  std::size_t fused_pipelines = 0;
  std::size_t plan_fallbacks = 0;
};

/// Runs the whole session `reps` times single-threaded, accumulating
/// the plan counters; returns wall seconds.
double RunSession(mdql::Session& session, std::size_t reps, Row* row) {
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t rep = 0; rep < reps; ++rep) {
    for (const char* statement : kSession) {
      ExecContext exec(1, 4096);
      auto result = session.Execute(statement, &exec);
      if (!result.ok()) {
        std::fprintf(stderr, "statement failed: %s\n%s\n", statement,
                     result.status().ToString().c_str());
        std::exit(1);
      }
      row->rewrites_applied += exec.stats.rewrites_applied;
      row->fused_pipelines += exec.stats.fused_pipelines;
      row->plan_fallbacks += exec.stats.plan_fallbacks;
    }
  }
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

/// Byte-identity gate: every configuration must render exactly the
/// tree-walk bytes on every session statement.
void Gate(const std::vector<mdql::Session*>& sessions,
          const std::vector<Config>& configs) {
  for (const char* statement : kSession) {
    std::string baseline;
    for (std::size_t c = 0; c < configs.size(); ++c) {
      auto result = sessions[c]->Execute(statement);
      if (!result.ok()) {
        std::fprintf(stderr, "gate: %s failed under %s: %s\n", statement,
                     configs[c].name, result.status().ToString().c_str());
        std::exit(1);
      }
      if (c == 0) {
        baseline = result->ToString();
      } else if (result->ToString() != baseline) {
        std::fprintf(stderr,
                     "gate: %s diverged from tree-walk under %s\n",
                     statement, configs[c].name);
        std::exit(1);
      }
    }
  }
}

void WriteJson(const std::vector<Row>& rows, const char* path) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"mdql_plan\",\n  \"peak_rss_kb\": %zu,\n"
               "  \"session_statements\": %zu,\n  \"rows\": [\n",
               mddc_bench::PeakRssKb(), kSessionSize);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out,
                 "    {\"facts\": %zu, \"config\": \"%s\", \"reps\": %zu, "
                 "\"wall_seconds\": %.4f, \"stmts_per_sec\": %.1f, "
                 "\"speedup_vs_tree_walk\": %.2f, "
                 "\"rewrites_applied\": %zu, \"fused_pipelines\": %zu, "
                 "\"plan_fallbacks\": %zu}%s\n",
                 r.facts, r.config.c_str(), r.reps, r.wall_seconds,
                 r.stmts_per_sec, r.speedup, r.rewrites_applied,
                 r.fused_pipelines, r.plan_fallbacks,
                 i + 1 == rows.size() ? "" : ",");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main() {
  std::size_t max_facts = 1000000;
  if (const char* cap = std::getenv("MDDC_SWEEP_MAX_FACTS")) {
    max_facts = static_cast<std::size_t>(std::strtoull(cap, nullptr, 10));
  }
  std::vector<std::size_t> fact_counts;
  for (std::size_t facts :
       {std::size_t{10000}, std::size_t{100000}, std::size_t{1000000}}) {
    if (facts <= max_facts) fact_counts.push_back(facts);
  }
  if (fact_counts.empty() && max_facts > 0) fact_counts.push_back(max_facts);

  const std::vector<Config> configs = Configs();
  std::vector<Row> rows;
  for (std::size_t facts : fact_counts) {
    ClinicalMo clinical = BuildClinical(facts);
    // One session per configuration, all over the same MO copy.
    std::vector<std::unique_ptr<mdql::Session>> sessions;
    std::vector<mdql::Session*> session_ptrs;
    for (const Config& config : configs) {
      auto session = std::make_unique<mdql::Session>();
      session->set_compile_options(config.options);
      if (!session->Register("clinical", clinical.mo).ok()) {
        std::fprintf(stderr, "register failed\n");
        return 1;
      }
      session_ptrs.push_back(session.get());
      sessions.push_back(std::move(session));
    }
    Gate(session_ptrs, configs);

    const std::size_t reps = facts >= 1000000 ? 3 : facts >= 100000 ? 10 : 30;
    double tree_walk_wall = 0.0;
    for (std::size_t c = 0; c < configs.size(); ++c) {
      Row row;
      row.facts = facts;
      row.config = configs[c].name;
      row.reps = reps;
      // Warm-up rep: closure memos, rollup snapshots and arena chunks
      // build once; steady state is what sessions actually see.
      {
        Row scratch;
        RunSession(*sessions[c], 1, &scratch);
      }
      row.wall_seconds = RunSession(*sessions[c], reps, &row);
      row.stmts_per_sec =
          row.wall_seconds > 0.0
              ? static_cast<double>(reps * kSessionSize) / row.wall_seconds
              : 0.0;
      if (c == 0) tree_walk_wall = row.wall_seconds;
      row.speedup = row.wall_seconds > 0.0 && tree_walk_wall > 0.0
                        ? tree_walk_wall / row.wall_seconds
                        : 0.0;
      std::printf("facts=%-8zu %-15s %6zu stmts %8.3fs %9.1f stmts/s "
                  "%5.2fx  fused=%zu fallbacks=%zu rewrites=%zu\n",
                  row.facts, row.config.c_str(), reps * kSessionSize,
                  row.wall_seconds, row.stmts_per_sec, row.speedup,
                  row.fused_pipelines, row.plan_fallbacks,
                  row.rewrites_applied);
      std::fflush(stdout);
      rows.push_back(row);
    }
  }

  WriteJson(rows, "BENCH_plan.json");
  return 0;
}
