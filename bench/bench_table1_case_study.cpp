// Regenerates Table 1 of the paper (the Patient, Has, Diagnosis and
// Grouping tables of the clinical case study) *from the multidimensional
// object*, proving the model captures all of the case study's
// information, and dumps the ER-level structure (Figure 1) as the MO
// schema.
//
//   $ ./bench/bench_table1_case_study

#include <cstdlib>
#include <iostream>

#include "workload/case_study.h"

namespace {

template <typename T>
T Unwrap(mddc::Result<T> result) {
  if (!result.ok()) {
    std::cerr << "error: " << result.status() << "\n";
    std::exit(1);
  }
  return std::move(result).ValueOrDie();
}

}  // namespace

int main() {
  mddc::CaseStudy cs = Unwrap(mddc::BuildCaseStudy());

  std::cout << "==============================================\n";
  std::cout << " Table 1 (ICDE'99), re-derived from the model\n";
  std::cout << "==============================================\n\n";

  std::cout << "Patient Table\n"
            << Unwrap(mddc::RenderPatientTable(cs)) << "\n";
  std::cout << "Has Table\n" << Unwrap(mddc::RenderHasTable(cs)) << "\n";
  std::cout << "Diagnosis Table\n"
            << Unwrap(mddc::RenderDiagnosisTable(cs)) << "\n";
  std::cout << "Grouping Table\n"
            << Unwrap(mddc::RenderGroupingTable(cs)) << "\n";

  std::cout << "Notes:\n"
            << " * dates print with four-digit years; the paper uses "
               "dd/mm/yy\n"
            << " * the Grouping table includes Example 10's user-defined "
               "bridge 11 <= 8\n"
            << " * residence data is synthesized (the paper prints no "
               "Lives-in rows); see DESIGN.md\n\n";

  std::cout << "Figure 1 (structure): the case study as one fact type with "
               "six dimension types\n\n";
  std::cout << cs.mo.schema().ToString();
  return 0;
}
