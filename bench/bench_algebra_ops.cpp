// Per-operator throughput of the fundamental algebra on the retail
// workload: selection, projection, rename, union, difference,
// identity-based join, timeslice machinery and the closure-validating
// expression evaluator.
//
//   $ ./bench/bench_algebra_ops

#include <benchmark/benchmark.h>

#include "algebra/expression.h"
#include "workload/retail_generator.h"

namespace {

using namespace mddc;

RetailMo BuildRetail(std::size_t purchases) {
  RetailWorkloadParams params;
  params.num_purchases = purchases;
  return std::move(
             GenerateRetailWorkload(params, std::make_shared<FactRegistry>()))
      .ValueOrDie();
}

void BM_Select(benchmark::State& state) {
  RetailMo retail = BuildRetail(static_cast<std::size_t>(state.range(0)));
  ValueId region = retail.mo.dimension(retail.store_dim)
                       .ValuesIn(retail.region)
                       .front();
  Predicate predicate = Predicate::CharacterizedBy(retail.store_dim, region);
  for (auto _ : state) {
    auto result = Select(retail.mo, predicate);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Select)->Arg(1000)->Arg(4000);

void BM_NumericSelect(benchmark::State& state) {
  RetailMo retail = BuildRetail(static_cast<std::size_t>(state.range(0)));
  Predicate predicate = Predicate::NumericCompare(
      retail.price_dim, Predicate::Comparison::kGreaterEq, 250.0);
  for (auto _ : state) {
    auto result = Select(retail.mo, predicate);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NumericSelect)->Arg(1000)->Arg(4000);

void BM_Project(benchmark::State& state) {
  RetailMo retail = BuildRetail(4000);
  std::vector<std::size_t> dims = {retail.product_dim, retail.amount_dim};
  for (auto _ : state) {
    auto result = Project(retail.mo, dims);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Project);

void BM_Rename(benchmark::State& state) {
  RetailMo retail = BuildRetail(4000);
  RenameSpec spec{"Sale", {"P", "S", "D", "A", "Pr"}};
  for (auto _ : state) {
    auto result = Rename(retail.mo, spec);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Rename);

void BM_UnionDisjoint(benchmark::State& state) {
  auto registry = std::make_shared<FactRegistry>();
  RetailWorkloadParams params;
  params.num_purchases = 2000;
  RetailMo a = std::move(GenerateRetailWorkload(params, registry))
                   .ValueOrDie();
  // Same dimensions and registry, different purchase ids via selection
  // split: even/odd partition by price threshold.
  MdObject low = *Select(a.mo, Predicate::NumericCompare(
                                   a.price_dim,
                                   Predicate::Comparison::kLess, 250.0));
  MdObject high = *Select(a.mo, Predicate::NumericCompare(
                                    a.price_dim,
                                    Predicate::Comparison::kGreaterEq,
                                    250.0));
  for (auto _ : state) {
    auto result = Union(low, high);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_UnionDisjoint);

void BM_Difference(benchmark::State& state) {
  auto registry = std::make_shared<FactRegistry>();
  RetailWorkloadParams params;
  params.num_purchases = 2000;
  RetailMo a = std::move(GenerateRetailWorkload(params, registry))
                   .ValueOrDie();
  MdObject cheap = *Select(a.mo, Predicate::NumericCompare(
                                     a.price_dim,
                                     Predicate::Comparison::kLess, 250.0));
  for (auto _ : state) {
    auto result = Difference(a.mo, cheap);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Difference);

/// The retail MO rebuilt as a valid-time object: same facts and
/// relations, every pair valid during [begin, end]. Both operands of a
/// temporal difference are built this way so the Section 4.2 rule has
/// time to cut.
MdObject MakeValidTimeRetail(const RetailMo& base,
                             const std::shared_ptr<FactRegistry>& registry,
                             Chronon begin, Chronon end) {
  std::vector<Dimension> dims;
  for (std::size_t i = 0; i < base.mo.dimension_count(); ++i) {
    dims.push_back(base.mo.dimension(i));
  }
  MdObject mo(base.mo.schema().fact_type(), std::move(dims), registry,
              TemporalType::kValidTime);
  for (FactId fact : base.mo.facts()) (void)mo.AddFact(fact);
  for (std::size_t i = 0; i < base.mo.dimension_count(); ++i) {
    for (const FactDimRelation::Entry& entry :
         base.mo.relation(i).entries()) {
      (void)mo.Relate(i, entry.fact, entry.value,
                      Lifespan::ValidDuring(
                          TemporalElement(Interval(begin, end))));
    }
  }
  return mo;
}

// Exercises the temporal rule (Section 4.2), including the per-fact
// coverage pass that decides which facts keep a pair in every
// dimension. Coverage used to be interned through a
// std::map<FactId, std::size_t> (one HasFact tree probe per fact per
// dimension); it is now a flat rank/flag pass over the sorted fact
// list. On the dev box at 2000 purchases (--benchmark_min_time=2, CPU
// time) the ordered-map coverage measured ~11.9 ms/iteration, the flat
// pass ~11.5 ms — the pass itself shrinks to two linear sweeps, with
// the operator's remaining time dominated by the per-pair lifespan
// cuts.
void BM_TemporalDifference(benchmark::State& state) {
  auto registry = std::make_shared<FactRegistry>();
  RetailWorkloadParams params;
  params.num_purchases = 2000;
  RetailMo base = std::move(GenerateRetailWorkload(params, registry))
                      .ValueOrDie();
  // m2's valid time covers the second half of m1's, so every pair keeps
  // half its span and every fact survives coverage.
  MdObject m1 = MakeValidTimeRetail(base, registry, 0, 100);
  MdObject m2 = MakeValidTimeRetail(base, registry, 50, 100);
  for (auto _ : state) {
    auto result = Difference(m1, m2);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_TemporalDifference);

void BM_EquiJoin(benchmark::State& state) {
  auto registry = std::make_shared<FactRegistry>();
  RetailWorkloadParams params;
  params.num_purchases = static_cast<std::size_t>(state.range(0));
  RetailMo a = std::move(GenerateRetailWorkload(params, registry))
                   .ValueOrDie();
  MdObject renamed =
      *Rename(a.mo, RenameSpec{"Sale", {"P2", "S2", "D2", "A2", "Pr2"}});
  for (auto _ : state) {
    auto result = Join(a.mo, renamed, JoinPredicate::kEqual);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_EquiJoin)->Arg(500)->Arg(1000);

void BM_ExpressionPipeline(benchmark::State& state) {
  RetailMo retail = BuildRetail(2000);
  ValueId region = retail.mo.dimension(retail.store_dim)
                       .ValuesIn(retail.region)
                       .front();
  for (auto _ : state) {
    Expression pipeline = Expression::Project(
        Expression::Select(
            Expression::Leaf(retail.mo, "Sales"),
            Predicate::CharacterizedBy(retail.store_dim, region)),
        {retail.product_dim, retail.amount_dim});
    auto result = pipeline.Evaluate();
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ExpressionPipeline);

}  // namespace

BENCHMARK_MAIN();
