// Mixed-granularity registration (requirement 9): facts related directly
// to higher-level dimension values. Compares aggregation cost and
// demonstrates that coarse registrations participate correctly in
// group-level analysis (and are excluded from finer levels, as they
// must be).
//
//   $ ./bench/bench_granularity

#include <benchmark/benchmark.h>

#include <iostream>
#include <set>

#include "algebra/operators.h"
#include "workload/clinical_generator.h"

namespace {

using namespace mddc;

ClinicalMo BuildWorkload(double coarse_rate) {
  ClinicalWorkloadParams params;
  params.num_patients = 400;
  params.num_groups = 4;
  params.coarse_granularity_rate = coarse_rate;
  params.reclassified_rate = 0.0;
  params.uncertain_rate = 0.0;
  return std::move(
             GenerateClinicalWorkload(params,
                                      std::make_shared<FactRegistry>()))
      .ValueOrDie();
}

AggregateSpec SpecAt(const ClinicalMo& workload, CategoryTypeIndex level) {
  AggregateSpec spec{AggFunction::SetCount(), {}, ResultDimensionSpec::Auto(),
                     kNowChronon, true};
  for (std::size_t i = 0; i < workload.mo.dimension_count(); ++i) {
    spec.grouping.push_back(i == workload.diagnosis_dim
                                ? level
                                : workload.mo.dimension(i).type().top());
  }
  return spec;
}

std::size_t PatientsCovered(const MdObject& aggregated) {
  std::set<FactId> patients;
  for (FactId group : aggregated.facts()) {
    auto term = aggregated.registry()->Get(group);
    for (FactId member : term->members) patients.insert(member);
  }
  return patients.size();
}

void PrintGranularitySummary() {
  std::cout << "Coverage by aggregation level (400 patients):\n";
  std::cout << "  coarse-rate | covered at Low level | covered at Group "
               "level\n";
  for (double rate : {0.0, 0.3, 0.6}) {
    ClinicalMo workload = BuildWorkload(rate);
    auto at_low =
        AggregateFormation(workload.mo, SpecAt(workload, workload.low_level));
    auto at_group =
        AggregateFormation(workload.mo, SpecAt(workload, workload.group));
    std::cout << "  " << rate << "         | " << PatientsCovered(*at_low)
              << "                  | " << PatientsCovered(*at_group)
              << "\n";
  }
  std::cout << "  -> family-level registrations drop out of low-level "
               "analysis (they carry no low-level information) but count "
               "fully at group level.\n\n";
}

void BM_GroupAggregateByCoarseRate(benchmark::State& state) {
  double rate = static_cast<double>(state.range(0)) / 100.0;
  ClinicalMo workload = BuildWorkload(rate);
  AggregateSpec spec = SpecAt(workload, workload.group);
  for (auto _ : state) {
    auto result = AggregateFormation(workload.mo, spec);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_GroupAggregateByCoarseRate)->Arg(0)->Arg(30)->Arg(60);

void BM_FamilyAggregateByCoarseRate(benchmark::State& state) {
  double rate = static_cast<double>(state.range(0)) / 100.0;
  ClinicalMo workload = BuildWorkload(rate);
  AggregateSpec spec = SpecAt(workload, workload.family);
  for (auto _ : state) {
    auto result = AggregateFormation(workload.mo, spec);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FamilyAggregateByCoarseRate)->Arg(0)->Arg(60);

}  // namespace

int main(int argc, char** argv) {
  PrintGranularitySummary();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
