// The paper's closing future-work question: "how multidimensional models
// may cope with the hundreds of dimensions found in some applications."
// This bench builds MOs with up to 512 simple dimensions and measures
// construction, validation, selection and single-dimension aggregation —
// showing which costs scale with the dimension count and which stay
// proportional to the data actually touched.
//
//   $ ./bench/bench_wide_schema

#include <benchmark/benchmark.h>

#include "algebra/operators.h"
#include "common/strings.h"
#include "core/md_object.h"

namespace {

using namespace mddc;

constexpr std::size_t kFacts = 200;
constexpr std::size_t kValuesPerDim = 16;

/// Builds an MO with `width` simple dimensions; each fact is related to
/// one (deterministic) value in every dimension.
MdObject BuildWide(std::size_t width,
                   std::shared_ptr<FactRegistry> registry) {
  std::vector<Dimension> dimensions;
  dimensions.reserve(width);
  for (std::size_t d = 0; d < width; ++d) {
    DimensionTypeBuilder builder(StrCat("D", d));
    builder.AddCategory("Value", AggregationType::kSum);
    Dimension dimension(std::move(builder.Build()).ValueOrDie());
    CategoryTypeIndex bottom = dimension.type().bottom();
    Representation& rep = dimension.RepresentationFor(bottom, "Value");
    for (std::size_t v = 0; v < kValuesPerDim; ++v) {
      ValueId id(d * 1000 + v);
      (void)dimension.AddValue(bottom, id);
      (void)rep.Set(id, std::to_string(v));
    }
    dimensions.push_back(std::move(dimension));
  }
  MdObject mo("Wide", std::move(dimensions), std::move(registry));
  for (std::size_t f = 0; f < kFacts; ++f) {
    FactId fact = mo.registry()->Atom(f);
    (void)mo.AddFact(fact);
    for (std::size_t d = 0; d < width; ++d) {
      (void)mo.Relate(d, fact,
                      ValueId(d * 1000 + (f * (d + 1)) % kValuesPerDim));
    }
  }
  return mo;
}

void BM_BuildWideMo(benchmark::State& state) {
  for (auto _ : state) {
    auto registry = std::make_shared<FactRegistry>();
    MdObject mo = BuildWide(static_cast<std::size_t>(state.range(0)),
                            registry);
    benchmark::DoNotOptimize(mo);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BuildWideMo)->Arg(32)->Arg(128)->Arg(512);

void BM_ValidateWideMo(benchmark::State& state) {
  auto registry = std::make_shared<FactRegistry>();
  MdObject mo = BuildWide(static_cast<std::size_t>(state.range(0)),
                          registry);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mo.Validate());
  }
}
BENCHMARK(BM_ValidateWideMo)->Arg(32)->Arg(128)->Arg(512);

void BM_SelectOnOneOfManyDimensions(benchmark::State& state) {
  auto registry = std::make_shared<FactRegistry>();
  MdObject mo = BuildWide(static_cast<std::size_t>(state.range(0)),
                          registry);
  // Predicate touches a single dimension; cost should not grow with the
  // total width (selection restricts relations per dimension lazily).
  Predicate predicate = Predicate::CharacterizedBy(0, ValueId(3));
  for (auto _ : state) {
    auto result = Select(mo, predicate);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SelectOnOneOfManyDimensions)->Arg(32)->Arg(128)->Arg(512);

void BM_AggregateOneOfManyDimensions(benchmark::State& state) {
  auto registry = std::make_shared<FactRegistry>();
  MdObject mo = BuildWide(static_cast<std::size_t>(state.range(0)),
                          registry);
  AggregateSpec spec{AggFunction::SetCount(), {}, ResultDimensionSpec::Auto(),
                     kNowChronon, true};
  spec.grouping.push_back(mo.dimension(0).type().bottom());
  for (std::size_t d = 1; d < mo.dimension_count(); ++d) {
    spec.grouping.push_back(mo.dimension(d).type().top());
  }
  for (auto _ : state) {
    auto result = AggregateFormation(mo, spec);
    benchmark::DoNotOptimize(result);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
  }
}
BENCHMARK(BM_AggregateOneOfManyDimensions)->Arg(32)->Arg(128)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
