#include "engine/rollup_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "algebra/operators.h"
#include "algebra/timeslice.h"
#include "engine/executor.h"
#include "engine/preagg_cache.h"
#include "fixtures.h"
#include "io/serialize.h"
#include "workload/clinical_generator.h"
#include "workload/retail_generator.h"

// Coverage for the compiled rollup snapshots (engine/rollup_index.h):
// accessor-level equivalence against the map-based Dimension queries the
// snapshot replaces, version-counter invalidation across every mutation
// kind (AddValue, new AddOrder edge, lifespan coalescing of a repeated
// edge), snapshot sharing across Dimension copies, and end-to-end proof —
// via ExecStats and serialized-byte comparison at 1/2/8 threads — that
// the index-consuming hot paths stay bit-identical to the sequential
// algebra while actually consuming the index.

namespace mddc {
namespace {

using testing_fixtures::BuildDiagnosisDimension;
using testing_fixtures::Day;
using testing_fixtures::DiagnosisType;
using testing_fixtures::During;

// ---- Fixtures -------------------------------------------------------------

/// A strict, non-temporal diagnosis hierarchy (all lifespans Always, at
/// most one parent per value): the flat-table gate must hold.
Dimension BuildStrictDimension() {
  auto type = DiagnosisType();
  Dimension dimension(type);
  CategoryTypeIndex low = *type->Find("Low-level Diagnosis");
  CategoryTypeIndex family = *type->Find("Diagnosis Family");
  CategoryTypeIndex group = *type->Find("Diagnosis Group");
  for (std::uint64_t id : {1, 2, 3}) {
    EXPECT_TRUE(dimension.AddValue(low, ValueId(id)).ok());
  }
  for (std::uint64_t id : {10, 11}) {
    EXPECT_TRUE(dimension.AddValue(family, ValueId(id)).ok());
  }
  EXPECT_TRUE(dimension.AddValue(group, ValueId(20)).ok());
  EXPECT_TRUE(dimension.AddOrder(ValueId(1), ValueId(10)).ok());
  EXPECT_TRUE(dimension.AddOrder(ValueId(2), ValueId(10)).ok());
  EXPECT_TRUE(dimension.AddOrder(ValueId(3), ValueId(11)).ok());
  EXPECT_TRUE(dimension.AddOrder(ValueId(10), ValueId(20)).ok());
  EXPECT_TRUE(dimension.AddOrder(ValueId(11), ValueId(20)).ok());
  return dimension;
}

RetailMo BuildRetail(std::uint32_t seed = 7, std::size_t purchases = 300) {
  RetailWorkloadParams params;
  params.seed = seed;
  params.num_purchases = purchases;
  auto workload =
      GenerateRetailWorkload(params, std::make_shared<FactRegistry>());
  return std::move(workload).ValueOrDie();
}

ClinicalMo BuildClinical(std::uint32_t seed = 42,
                         std::size_t patients = 150) {
  ClinicalWorkloadParams params;
  params.seed = seed;
  params.num_patients = patients;
  auto workload =
      GenerateClinicalWorkload(params, std::make_shared<FactRegistry>());
  return std::move(workload).ValueOrDie();
}

std::vector<CategoryTypeIndex> GroupingAt(const MdObject& mo,
                                          std::size_t dim,
                                          CategoryTypeIndex category) {
  std::vector<CategoryTypeIndex> grouping;
  for (std::size_t i = 0; i < mo.dimension_count(); ++i) {
    grouping.push_back(i == dim ? category : mo.dimension(i).type().top());
  }
  return grouping;
}

AggregateSpec SpecFor(const AggFunction& function,
                      std::vector<CategoryTypeIndex> grouping) {
  return AggregateSpec{function, std::move(grouping),
                       ResultDimensionSpec::Auto(), kNowChronon,
                       /*enforce_aggregation_types=*/true};
}

// ---- Accessor equivalence -------------------------------------------------

TEST(RollupIndexTest, DenseMappingRoundTripsEveryValue) {
  Dimension dimension = BuildStrictDimension();
  auto index = RollupIndex::For(dimension);
  ASSERT_NE(index, nullptr);

  const std::vector<ValueId> values = dimension.AllValues();
  ASSERT_EQ(index->value_count(), values.size());
  for (std::uint32_t d = 0; d < index->value_count(); ++d) {
    const ValueId v = index->ValueOf(d);
    EXPECT_EQ(v, values[d]) << "dense order must match AllValues()";
    EXPECT_EQ(index->DenseOf(v), d);
    EXPECT_EQ(index->CategoryOfDense(d), *dimension.CategoryOf(v));
    EXPECT_EQ(index->MembershipOfDense(d), *dimension.MembershipOf(v));
  }
  EXPECT_EQ(index->ValueOf(index->top_dense()), dimension.top_value());
  EXPECT_EQ(index->DenseOf(ValueId(987654321)), RollupIndex::kNone);
}

TEST(RollupIndexTest, CategoryRangesMatchValuesIn) {
  Dimension dimension = BuildDiagnosisDimension();
  auto index = RollupIndex::For(dimension);
  ASSERT_NE(index, nullptr);

  for (CategoryTypeIndex c = 0; c < dimension.type().category_count(); ++c) {
    std::vector<ValueId> expected = dimension.ValuesIn(c);
    std::sort(expected.begin(), expected.end());
    std::vector<ValueId> actual;
    for (const std::uint32_t* d = index->CategoryBegin(c);
         d != index->CategoryEnd(c); ++d) {
      actual.push_back(index->ValueOf(*d));
    }
    EXPECT_EQ(actual, expected) << "category " << c;
    EXPECT_TRUE(std::is_sorted(actual.begin(), actual.end()));
  }
}

TEST(RollupIndexTest, CsrEdgesMatchEdgeLists) {
  Dimension dimension = BuildDiagnosisDimension();
  auto index = RollupIndex::For(dimension);
  ASSERT_NE(index, nullptr);

  const std::vector<Dimension::Edge>& edges = dimension.edges();
  std::size_t up_total = 0;
  std::size_t down_total = 0;
  for (ValueId v : dimension.AllValues()) {
    const std::uint32_t d = index->DenseOf(v);
    ASSERT_NE(d, RollupIndex::kNone);
    // Up: one CSR slot per edge with child v, same parents/lives/probs.
    const std::vector<std::size_t>& from_child =
        dimension.EdgeIndexesFromChild(v);
    ASSERT_EQ(index->UpEnd(d) - index->UpBegin(d), from_child.size());
    std::multimap<ValueId, std::pair<Lifespan, double>> expected_up;
    for (std::size_t e : from_child) {
      expected_up.emplace(edges[e].parent,
                          std::make_pair(edges[e].life, edges[e].prob));
    }
    for (std::uint32_t pos = index->UpBegin(d); pos < index->UpEnd(d);
         ++pos) {
      const ValueId parent = index->ValueOf(index->UpParent(pos));
      auto it = expected_up.find(parent);
      ASSERT_NE(it, expected_up.end()) << "unexpected up-edge";
      EXPECT_EQ(index->UpLife(pos), it->second.first);
      EXPECT_EQ(index->UpProb(pos), it->second.second);
      expected_up.erase(it);
      ++up_total;
    }
    // Down: mirror over edges with parent v.
    const std::vector<std::size_t>& to_parent =
        dimension.EdgeIndexesToParent(v);
    ASSERT_EQ(index->DownEnd(d) - index->DownBegin(d), to_parent.size());
    std::multimap<ValueId, std::pair<Lifespan, double>> expected_down;
    for (std::size_t e : to_parent) {
      expected_down.emplace(edges[e].child,
                            std::make_pair(edges[e].life, edges[e].prob));
    }
    for (std::uint32_t pos = index->DownBegin(d); pos < index->DownEnd(d);
         ++pos) {
      const ValueId child = index->ValueOf(index->DownChild(pos));
      auto it = expected_down.find(child);
      ASSERT_NE(it, expected_down.end()) << "unexpected down-edge";
      EXPECT_EQ(index->DownLife(pos), it->second.first);
      EXPECT_EQ(index->DownProb(pos), it->second.second);
      expected_down.erase(it);
      ++down_total;
    }
  }
  // Every immediate-containment edge appears exactly once per direction.
  EXPECT_EQ(up_total, edges.size());
  EXPECT_EQ(down_total, edges.size());
}

TEST(RollupIndexTest, FlatTableMatchesAncestorsIn) {
  Dimension dimension = BuildStrictDimension();
  auto index = RollupIndex::For(dimension);
  ASSERT_NE(index, nullptr);
  ASSERT_TRUE(index->has_flat_table());

  for (ValueId v : dimension.AllValues()) {
    const std::uint32_t d = index->DenseOf(v);
    const CategoryTypeIndex own = *dimension.CategoryOf(v);
    for (CategoryTypeIndex c = 0; c < dimension.type().category_count();
         ++c) {
      const std::uint32_t ancestor = index->AncestorAt(d, c);
      if (c == own) {
        // Self-mapping: the value is its own "ancestor" at its category.
        EXPECT_EQ(ancestor, d);
        EXPECT_DOUBLE_EQ(index->AncestorProbAt(d, c), 1.0);
        continue;
      }
      auto expected = dimension.AncestorsIn(v, c);
      if (expected.empty()) {
        EXPECT_EQ(ancestor, RollupIndex::kNone)
            << "value " << v.raw() << " category " << c;
      } else {
        ASSERT_EQ(expected.size(), 1u) << "fixture must be strict";
        ASSERT_NE(ancestor, RollupIndex::kNone);
        EXPECT_EQ(index->ValueOf(ancestor), expected.front().value);
        EXPECT_DOUBLE_EQ(index->AncestorProbAt(d, c),
                         expected.front().prob);
      }
    }
  }
}

TEST(RollupIndexTest, GateFailsOnTemporalOrNonStrictHierarchies) {
  // The paper's diagnosis dimension is both temporal (edge lifespans)
  // and non-strict (value 5 has two families): no flat table.
  Dimension temporal = BuildDiagnosisDimension();
  auto temporal_index = RollupIndex::For(temporal);
  ASSERT_NE(temporal_index, nullptr);
  EXPECT_FALSE(temporal_index->has_flat_table());

  // One temporal edge in an otherwise strict Always-hierarchy also
  // fails the gate: the closure would carry real lifespans.
  Dimension one_temporal = BuildStrictDimension();
  CategoryTypeIndex low = *one_temporal.type().Find("Low-level Diagnosis");
  ASSERT_TRUE(one_temporal.AddValue(low, ValueId(4)).ok());
  ASSERT_TRUE(one_temporal
                  .AddOrder(ValueId(4), ValueId(11),
                            During("[01/01/80-NOW]"))
                  .ok());
  auto gated = RollupIndex::For(one_temporal);
  ASSERT_NE(gated, nullptr);
  EXPECT_FALSE(gated->has_flat_table());
  // The dense arrays and CSR remain usable regardless of the gate.
  EXPECT_EQ(gated->value_count(), one_temporal.AllValues().size());
}

// ---- Caching and invalidation ---------------------------------------------

TEST(RollupIndexTest, SecondForReusesTheCachedSnapshot) {
  Dimension dimension = BuildStrictDimension();
  ExecStats stats;
  auto first = RollupIndex::For(dimension, &stats);
  EXPECT_EQ(stats.index_builds, 1u);
  auto second = RollupIndex::For(dimension, &stats);
  EXPECT_EQ(stats.index_builds, 1u) << "cached snapshot must be reused";
  EXPECT_EQ(first.get(), second.get());
  EXPECT_FALSE(first->StaleFor(dimension));
}

TEST(RollupIndexTest, EveryMutationKindInvalidatesTheSnapshot) {
  Dimension dimension = BuildStrictDimension();
  CategoryTypeIndex low = *dimension.type().Find("Low-level Diagnosis");
  ExecStats stats;

  // AddValue: a fresh value must appear in the recompiled snapshot.
  auto before_value = RollupIndex::For(dimension, &stats);
  ASSERT_TRUE(dimension.AddValue(low, ValueId(100)).ok());
  EXPECT_TRUE(before_value->StaleFor(dimension));
  auto after_value = RollupIndex::For(dimension, &stats);
  EXPECT_EQ(stats.index_builds, 2u);
  EXPECT_NE(before_value.get(), after_value.get());
  EXPECT_EQ(before_value->DenseOf(ValueId(100)), RollupIndex::kNone);
  EXPECT_NE(after_value->DenseOf(ValueId(100)), RollupIndex::kNone);

  // AddOrder (new edge): the recompiled flat table sees the new parent.
  ASSERT_TRUE(dimension
                  .AddOrder(ValueId(100), ValueId(11),
                            During("[01/01/80-NOW]"))
                  .ok());
  EXPECT_TRUE(after_value->StaleFor(dimension));
  auto after_edge = RollupIndex::For(dimension, &stats);
  EXPECT_EQ(stats.index_builds, 3u);
  EXPECT_NE(after_value.get(), after_edge.get());

  // AddOrder on the same pair with a disjoint lifespan coalesces into
  // the existing edge — no new edge, but the order changed, so the
  // snapshot must still be rejected.
  const std::size_t edges_before = dimension.edges().size();
  ASSERT_TRUE(dimension
                  .AddOrder(ValueId(100), ValueId(11),
                            During("[01/01/60-31/12/69]"))
                  .ok());
  EXPECT_EQ(dimension.edges().size(), edges_before);
  EXPECT_TRUE(after_edge->StaleFor(dimension));
  auto after_coalesce = RollupIndex::For(dimension, &stats);
  EXPECT_EQ(stats.index_builds, 4u);
  EXPECT_NE(after_edge.get(), after_coalesce.get());
}

TEST(RollupIndexTest, CopiesShareTheSnapshotUntilMutated) {
  Dimension original = BuildStrictDimension();
  auto compiled = RollupIndex::For(original);

  // A copy carries the slot: same snapshot, no recompile.
  Dimension copy = original;
  ExecStats stats;
  auto from_copy = RollupIndex::For(copy, &stats);
  EXPECT_EQ(stats.index_builds, 0u);
  EXPECT_EQ(compiled.get(), from_copy.get());

  // Mutating the copy bumps only the copy's version; the original keeps
  // consuming the shared snapshot.
  CategoryTypeIndex low = *copy.type().Find("Low-level Diagnosis");
  ASSERT_TRUE(copy.AddValue(low, ValueId(200)).ok());
  EXPECT_TRUE(compiled->StaleFor(copy));
  EXPECT_FALSE(compiled->StaleFor(original));
  auto rebuilt = RollupIndex::For(copy, &stats);
  EXPECT_EQ(stats.index_builds, 1u);
  EXPECT_NE(rebuilt.get(), compiled.get());
  EXPECT_EQ(RollupIndex::For(original).get(), compiled.get());
}

// ---- End-to-end: hot paths consume the index, results stay identical ------

TEST(RollupIndexEndToEndTest, AggregateCountsHitsAndMatchesSequential) {
  RetailMo retail = BuildRetail();
  AggregateSpec spec =
      SpecFor(AggFunction::Sum(retail.amount_dim),
              GroupingAt(retail.mo, retail.product_dim, retail.category));

  auto sequential = AggregateFormation(retail.mo, spec);
  ASSERT_TRUE(sequential.ok()) << sequential.status();
  auto sequential_bytes = io::WriteMo(*sequential);
  ASSERT_TRUE(sequential_bytes.ok());

  for (std::size_t threads : {1u, 2u, 8u}) {
    ExecContext ctx(threads, /*min_facts=*/1);
    auto indexed = AggregateFormation(retail.mo, spec, &ctx);
    ASSERT_TRUE(indexed.ok()) << indexed.status();
    // The retail product hierarchy is strict and non-temporal: the
    // grouping dimension must resolve through the flat table.
    EXPECT_GT(ctx.stats.index_hits, 0u) << "threads=" << threads;
    EXPECT_GT(ctx.stats.index_builds + ctx.stats.index_hits, 0u);
    auto bytes = io::WriteMo(*indexed);
    ASSERT_TRUE(bytes.ok());
    EXPECT_EQ(*bytes, *sequential_bytes)
        << "indexed aggregate differs at threads=" << threads;
  }
}

TEST(RollupIndexEndToEndTest, NonStrictAggregateCountsFallbacks) {
  ClinicalMo clinical = BuildClinical();
  AggregateSpec spec = SpecFor(
      AggFunction::SetCount(),
      GroupingAt(clinical.mo, clinical.diagnosis_dim, clinical.family));

  auto sequential = AggregateFormation(clinical.mo, spec);
  ASSERT_TRUE(sequential.ok()) << sequential.status();
  auto sequential_bytes = io::WriteMo(*sequential);
  ASSERT_TRUE(sequential_bytes.ok());

  ExecContext ctx(2, /*min_facts=*/1);
  auto indexed = AggregateFormation(clinical.mo, spec, &ctx);
  ASSERT_TRUE(indexed.ok()) << indexed.status();
  // The non-strict, temporal diagnosis hierarchy fails the flat-table
  // gate; the run must fall back — and still match byte-for-byte.
  EXPECT_GT(ctx.stats.index_fallbacks, 0u);
  auto bytes = io::WriteMo(*indexed);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, *sequential_bytes);
}

TEST(RollupIndexEndToEndTest, TimesliceCountsHitsAndMatchesSequential) {
  ClinicalMo clinical = BuildClinical();
  const Chronon at = Day("15/06/85");

  auto sequential = ValidTimeslice(clinical.mo, at);
  ASSERT_TRUE(sequential.ok()) << sequential.status();
  auto sequential_bytes = io::WriteMo(*sequential);
  ASSERT_TRUE(sequential_bytes.ok());

  for (std::size_t threads : {1u, 2u, 8u}) {
    ExecContext ctx(threads, /*min_facts=*/1);
    auto indexed = ValidTimeslice(clinical.mo, at, &ctx);
    ASSERT_TRUE(indexed.ok()) << indexed.status();
    // The dense value scan needs no gate: every dimension is a hit.
    EXPECT_EQ(ctx.stats.index_hits, clinical.mo.dimension_count())
        << "threads=" << threads;
    auto bytes = io::WriteMo(*indexed);
    ASSERT_TRUE(bytes.ok());
    EXPECT_EQ(*bytes, *sequential_bytes)
        << "indexed timeslice differs at threads=" << threads;
  }
}

TEST(RollupIndexEndToEndTest, JoinCountsHitsAndMatchesSequential) {
  RetailMo retail = BuildRetail(7, /*purchases=*/120);
  RenameSpec rename;
  rename.fact_type = retail.mo.schema().fact_type() + "'";
  for (std::size_t i = 0; i < retail.mo.dimension_count(); ++i) {
    rename.dimension_names.push_back(retail.mo.dimension(i).name() + "'");
  }
  MdObject renamed = std::move(Rename(retail.mo, rename)).ValueOrDie();

  auto sequential = Join(retail.mo, renamed, JoinPredicate::kEqual);
  ASSERT_TRUE(sequential.ok()) << sequential.status();
  auto sequential_bytes = io::WriteMo(*sequential);
  ASSERT_TRUE(sequential_bytes.ok());

  ExecContext ctx(2, /*min_facts=*/1);
  auto indexed = Join(retail.mo, renamed, JoinPredicate::kEqual, &ctx);
  ASSERT_TRUE(indexed.ok()) << indexed.status();
  // Warm-up compiles/attaches a snapshot per operand dimension.
  EXPECT_EQ(ctx.stats.index_hits,
            retail.mo.dimension_count() + renamed.dimension_count());
  auto bytes = io::WriteMo(*indexed);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, *sequential_bytes);
}

TEST(RollupIndexEndToEndTest, PreAggRollupCountsHitsAndMatchesSequential) {
  RetailMo retail = BuildRetail();
  auto by_category =
      GroupingAt(retail.mo, retail.product_dim, retail.category);
  auto by_department =
      GroupingAt(retail.mo, retail.product_dim, retail.department);

  // Ground truth: the same materialize-then-rollup sequence without any
  // execution context never touches the index.
  PreAggregateCache plain(retail.mo);
  ASSERT_TRUE(
      plain.Materialize(AggFunction::Sum(retail.amount_dim), by_category)
          .ok());
  auto plain_rolled =
      plain.Query(AggFunction::Sum(retail.amount_dim), by_department);
  ASSERT_TRUE(plain_rolled.ok()) << plain_rolled.status();
  auto plain_bytes = io::WriteMo(*plain_rolled);
  ASSERT_TRUE(plain_bytes.ok());

  PreAggregateCache indexed(retail.mo);
  ExecContext materialize_ctx(2, /*min_facts=*/1);
  ASSERT_TRUE(indexed
                  .Materialize(AggFunction::Sum(retail.amount_dim),
                               by_category, &materialize_ctx)
                  .ok());
  ExecContext rollup_ctx(2, /*min_facts=*/1);
  auto rolled = indexed.Query(AggFunction::Sum(retail.amount_dim),
                              by_department, &rollup_ctx);
  ASSERT_TRUE(rolled.ok()) << rolled.status();
  EXPECT_EQ(indexed.stats().rollup_hits, 1u);
  // The rollup itself (not a base scan) consumed the flat table.
  EXPECT_GT(rollup_ctx.stats.index_hits, 0u);
  auto bytes = io::WriteMo(*rolled);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, *plain_bytes);
}

TEST(RollupIndexEndToEndTest,
     MutationAfterBuildStaysByteIdenticalAcrossThreads) {
  // The ISSUE's invalidation contract end to end: compile snapshots by
  // running on the engine, mutate a grouping dimension, and prove the
  // stale snapshot is rejected — recompiled, never consulted — with
  // results byte-identical to the sequential algebra at 1/2/8 threads.
  RetailMo retail = BuildRetail();
  AggregateSpec spec =
      SpecFor(AggFunction::Sum(retail.amount_dim),
              GroupingAt(retail.mo, retail.product_dim, retail.category));
  {
    ExecContext warm(2, /*min_facts=*/1);
    ASSERT_TRUE(AggregateFormation(retail.mo, spec, &warm).ok());
  }
  auto stale = RollupIndex::For(retail.mo.dimension(retail.product_dim));

  // A fresh product joins an existing category; no purchase references
  // it, so every aggregate total is unchanged — but the hierarchy (and
  // thus the snapshot) is not.
  Dimension& products = retail.mo.dimension_mutable(retail.product_dim);
  const ValueId category_value =
      products.ValuesIn(retail.category).front();
  ASSERT_TRUE(products.AddValue(retail.product, ValueId(999983)).ok());
  ASSERT_TRUE(products.AddOrder(ValueId(999983), category_value).ok());
  EXPECT_TRUE(stale->StaleFor(products));

  auto sequential = AggregateFormation(retail.mo, spec);
  ASSERT_TRUE(sequential.ok()) << sequential.status();
  auto sequential_bytes = io::WriteMo(*sequential);
  ASSERT_TRUE(sequential_bytes.ok());

  for (std::size_t threads : {1u, 2u, 8u}) {
    ExecContext ctx(threads, /*min_facts=*/1);
    auto indexed = AggregateFormation(retail.mo, spec, &ctx);
    ASSERT_TRUE(indexed.ok()) << indexed.status();
    if (threads == 1u) {
      // The first engine run after the mutation must recompile.
      EXPECT_GT(ctx.stats.index_builds, 0u);
    }
    EXPECT_NE(RollupIndex::For(products).get(), stale.get());
    auto bytes = io::WriteMo(*indexed);
    ASSERT_TRUE(bytes.ok());
    EXPECT_EQ(*bytes, *sequential_bytes)
        << "post-mutation result differs at threads=" << threads;
  }
}

}  // namespace
}  // namespace mddc
