#include <gtest/gtest.h>

#include "common/date.h"
#include "temporal/bitemporal.h"
#include "temporal/lifespan.h"

namespace mddc {
namespace {

Chronon Day(const std::string& date) { return *ParseDate(date); }

TEST(BitemporalTest, DefaultIsEmpty) {
  BitemporalElement element;
  EXPECT_TRUE(element.Empty());
  EXPECT_TRUE(element.TransactionTimeslice(0).Empty());
}

TEST(BitemporalTest, TransactionTimesliceReturnsRecordedValidTime) {
  // Recorded on 05/01/80 with valid time [01/01/80-NOW].
  BitemporalElement element = BitemporalElement::CurrentFrom(
      Day("05/01/80"),
      TemporalElement(Interval(Day("01/01/80"), kNowChronon)));
  // Before the insertion the database knew nothing.
  EXPECT_TRUE(element.TransactionTimeslice(Day("01/01/79")).Empty());
  // After insertion the valid time is visible.
  TemporalElement vt = element.TransactionTimeslice(Day("01/01/85"));
  EXPECT_TRUE(vt.Contains(Day("01/06/83")));
}

TEST(BitemporalTest, CorrectionHistoryIsPreserved) {
  // A diagnosis valid time recorded as [01/01/80-NOW] on day t1, then
  // corrected on day t2 to [01/03/80-NOW] (proactive fix of a data-entry
  // error). Both states must be retrievable: accountability is the
  // paper's motivation for transaction time.
  Chronon t1 = Day("05/01/80");
  Chronon t2 = Day("01/06/80");
  BitemporalElement element;
  element.Add(Interval(t1, t2 - 1),
              TemporalElement(Interval(Day("01/01/80"), kNowChronon)));
  element.Add(Interval(t2, kNowChronon),
              TemporalElement(Interval(Day("01/03/80"), kNowChronon)));

  TemporalElement before = element.TransactionTimeslice(t1);
  TemporalElement after = element.TransactionTimeslice(t2);
  EXPECT_TRUE(before.Contains(Day("15/01/80")));
  EXPECT_FALSE(after.Contains(Day("15/01/80")));
  EXPECT_TRUE(after.Contains(Day("15/03/80")));
}

TEST(BitemporalTest, ValidTimesliceFindsRecordingPeriods) {
  Chronon t1 = Day("05/01/80");
  Chronon t2 = Day("01/06/80");
  BitemporalElement element;
  element.Add(Interval(t1, t2 - 1),
              TemporalElement(Interval(Day("01/01/80"), kNowChronon)));
  element.Add(Interval(t2, kNowChronon),
              TemporalElement(Interval(Day("01/03/80"), kNowChronon)));
  // Valid chronon 15/01/80 was recorded only during [t1, t2-1].
  TemporalElement tt = element.ValidTimeslice(Day("15/01/80"));
  EXPECT_TRUE(tt.Contains(t1));
  EXPECT_FALSE(tt.Contains(t2));
}

TEST(BitemporalTest, UnionAndIntersect) {
  BitemporalElement a(Interval(10, 20), TemporalElement(Interval(0, 5)));
  BitemporalElement b(Interval(15, 30), TemporalElement(Interval(3, 9)));
  BitemporalElement u = a.Union(b);
  EXPECT_FALSE(u.Empty());
  EXPECT_TRUE(u.TransactionTimeslice(12).Contains(4));
  EXPECT_TRUE(u.TransactionTimeslice(25).Contains(8));

  BitemporalElement i = a.Intersect(b);
  TemporalElement overlap = i.TransactionTimeslice(17);
  EXPECT_TRUE(overlap.Contains(4));
  EXPECT_FALSE(overlap.Contains(1));
  EXPECT_FALSE(overlap.Contains(8));
  EXPECT_TRUE(i.TransactionTimeslice(12).Empty());
}

TEST(BitemporalTest, AdjacentSameValidTimeRectanglesMerge) {
  BitemporalElement element;
  TemporalElement vt(Interval(0, 9));
  element.Add(Interval(10, 19), vt);
  element.Add(Interval(20, 29), vt);
  EXPECT_EQ(element.rectangles().size(), 1u);
  EXPECT_EQ(element.rectangles()[0].tt, Interval(10, 29));
}

TEST(LifespanTest, DefaultIsAlwaysBothAxes) {
  Lifespan life;
  EXPECT_EQ(life.valid, TemporalElement::Always());
  EXPECT_EQ(life.transaction, TemporalElement::Always());
  EXPECT_FALSE(life.Empty());
}

TEST(LifespanTest, IntersectIsComponentwise) {
  Lifespan a = Lifespan::ValidDuring(TemporalElement(Interval(0, 10)));
  Lifespan b = Lifespan::ValidDuring(TemporalElement(Interval(5, 20)));
  Lifespan i = a.Intersect(b);
  EXPECT_EQ(i.valid, TemporalElement(Interval(5, 10)));
  EXPECT_EQ(i.transaction, TemporalElement::Always());
}

TEST(LifespanTest, EmptyWhenEitherComponentEmpty) {
  Lifespan life = Lifespan::ValidDuring(TemporalElement());
  EXPECT_TRUE(life.Empty());
  Lifespan recorded = Lifespan::RecordedDuring(TemporalElement());
  EXPECT_TRUE(recorded.Empty());
}

}  // namespace
}  // namespace mddc
