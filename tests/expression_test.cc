#include <gtest/gtest.h>

#include "algebra/expression.h"
#include "fixtures.h"

namespace mddc {
namespace {

using testing_fixtures::BuildDiagnosisDimension;
using testing_fixtures::BuildPatientDiagnosisMo;
using testing_fixtures::Day;

TEST(ExpressionTest, LeafEvaluatesToItself) {
  MdObject mo = BuildPatientDiagnosisMo();
  auto result = Expression::Leaf(mo, "Patients").Evaluate();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->fact_count(), mo.fact_count());
}

TEST(ExpressionTest, ComposedPipelineEvaluates) {
  // rho_v[1999](sigma[char(0,11)](M)) then aggregate by diagnosis group.
  MdObject mo = BuildPatientDiagnosisMo();
  CategoryTypeIndex group = *mo.dimension(0).type().Find("Diagnosis Group");
  AggregateSpec spec{AggFunction::SetCount(),
                     {group},
                     ResultDimensionSpec::Auto(),
                     kNowChronon,
                     true};
  Expression query = Expression::Aggregate(
      Expression::ValidSlice(
          Expression::Select(Expression::Leaf(mo, "Patients"),
                             Predicate::CharacterizedBy(0, ValueId(11))),
          Day("01/06/99")),
      spec);
  EXPECT_EQ(query.OperatorCount(), 3u);
  auto result = query.Evaluate();
  ASSERT_TRUE(result.ok()) << result.status();
  // After the 1999 slice both patients are in group 11 only.
  EXPECT_EQ(result->fact_count(), 1u);
}

TEST(ExpressionTest, ClosureEveryIntermediateValidates) {
  // Theorem 1, constructively: a deep pipeline of operators where every
  // step validates (operators call Validate() internally; any violation
  // would surface as an error).
  MdObject mo = BuildPatientDiagnosisMo();
  Expression expr = Expression::Leaf(mo, "M");
  for (int i = 0; i < 5; ++i) {
    expr = Expression::Select(expr, Predicate::True());
  }
  expr = Expression::Project(expr, {0});
  auto result = expr.Evaluate();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->Validate().ok());
  EXPECT_EQ(result->fact_count(), mo.fact_count());
}

TEST(ExpressionTest, SetOperationsThroughExpressions) {
  auto registry = std::make_shared<FactRegistry>();
  MdObject m1("Patient", {BuildDiagnosisDimension()}, registry);
  MdObject m2("Patient", {BuildDiagnosisDimension()}, registry);
  FactId p1 = registry->Atom(1);
  FactId p2 = registry->Atom(2);
  ASSERT_TRUE(m1.AddFact(p1).ok());
  ASSERT_TRUE(m1.Relate(0, p1, ValueId(9)).ok());
  ASSERT_TRUE(m2.AddFact(p2).ok());
  ASSERT_TRUE(m2.Relate(0, p2, ValueId(5)).ok());

  auto united = Expression::Union(Expression::Leaf(m1, "M1"),
                                  Expression::Leaf(m2, "M2"))
                    .Evaluate();
  ASSERT_TRUE(united.ok());
  EXPECT_EQ(united->fact_count(), 2u);

  auto diff = Expression::Difference(
                  Expression::Union(Expression::Leaf(m1, "M1"),
                                    Expression::Leaf(m2, "M2")),
                  Expression::Leaf(m2, "M2"))
                  .Evaluate();
  ASSERT_TRUE(diff.ok());
  ASSERT_EQ(diff->fact_count(), 1u);
  EXPECT_EQ(diff->facts()[0], p1);
}

TEST(ExpressionTest, SelfJoinWithRename) {
  MdObject mo = BuildPatientDiagnosisMo();
  Expression renamed = Expression::Rename(Expression::Leaf(mo, "M"),
                                          RenameSpec{"", {"Diagnosis2"}});
  Expression joined = Expression::Join(Expression::Leaf(mo, "M"), renamed,
                                       JoinPredicate::kEqual);
  auto result = joined.Evaluate();
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->fact_count(), 2u);  // (1,1) and (2,2)
  EXPECT_EQ(result->dimension_count(), 2u);
}

TEST(ExpressionTest, ErrorsPropagate) {
  MdObject mo = BuildPatientDiagnosisMo();
  auto result =
      Expression::Project(Expression::Leaf(mo, "M"), {7}).Evaluate();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ExpressionTest, ToStringRendersAlgebraicForm) {
  MdObject mo = BuildPatientDiagnosisMo();
  AggregateSpec spec{AggFunction::SetCount(),
                     {*mo.dimension(0).type().Find("Diagnosis Group")},
                     ResultDimensionSpec::Auto(),
                     kNowChronon,
                     true};
  Expression query = Expression::Aggregate(
      Expression::Select(Expression::Leaf(mo, "Patients"),
                         Predicate::CharacterizedBy(0, ValueId(11))),
      spec);
  std::string text = query.ToString();
  EXPECT_NE(text.find("alpha[SetCount]"), std::string::npos);
  EXPECT_NE(text.find("sigma["), std::string::npos);
  EXPECT_NE(text.find("Patients"), std::string::npos);
}

}  // namespace
}  // namespace mddc
