#ifndef MDDC_TESTS_FIXTURES_H_
#define MDDC_TESTS_FIXTURES_H_

// Shared test fixtures: the paper's Diagnosis dimension (Tables 1,
// Examples 4, 9, 10) built inline, independent of the workload module.

#include <memory>

#include "common/date.h"
#include "core/dimension.h"
#include "core/dimension_type.h"
#include "core/md_object.h"
#include "temporal/lifespan.h"

namespace mddc {
namespace testing_fixtures {

inline Chronon Day(const std::string& date) { return *ParseDate(date); }

inline Lifespan During(const std::string& interval_text) {
  return Lifespan::ValidDuring(
      TemporalElement(*Interval::Parse(interval_text)));
}

inline std::shared_ptr<const DimensionType> DiagnosisType() {
  DimensionTypeBuilder builder("Diagnosis");
  builder.AddCategory("Low-level Diagnosis", AggregationType::kConstant)
      .AddCategory("Diagnosis Family", AggregationType::kConstant)
      .AddCategory("Diagnosis Group", AggregationType::kConstant)
      .AddOrder("Low-level Diagnosis", "Diagnosis Family")
      .AddOrder("Diagnosis Family", "Diagnosis Group");
  return std::move(builder.Build()).ValueOrDie();
}

/// The Diagnosis dimension of the case study: categories per Example 4,
/// order edges per the Grouping table of Table 1, plus the cross-
/// classification link 8 <= 11 of Example 10.
inline Dimension BuildDiagnosisDimension() {
  auto type = DiagnosisType();
  Dimension dimension(type);
  CategoryTypeIndex low = *type->Find("Low-level Diagnosis");
  CategoryTypeIndex family = *type->Find("Diagnosis Family");
  CategoryTypeIndex group = *type->Find("Diagnosis Group");

  // Low-level Diagnosis = {3,5,6}; Diagnosis Family = {4,7,8,9,10};
  // Diagnosis Group = {11,12}. Membership periods follow the Diagnosis
  // table's ValidFrom/ValidTo.
  auto add = [&](CategoryTypeIndex category, std::uint64_t id,
                 const std::string& during) {
    (void)dimension.AddValue(category, ValueId(id), During(during));
  };
  add(low, 3, "[01/01/70-31/12/79]");
  add(low, 5, "[01/01/80-NOW]");
  add(low, 6, "[01/01/80-NOW]");
  add(family, 4, "[01/01/80-NOW]");
  add(family, 7, "[01/01/70-31/12/79]");
  add(family, 8, "[01/10/70-31/12/79]");
  add(family, 9, "[01/01/80-NOW]");
  add(family, 10, "[01/01/80-NOW]");
  add(group, 11, "[01/01/80-NOW]");
  add(group, 12, "[01/10/80-NOW]");

  // Grouping table (ParentID, ChildID, ValidFrom, ValidTo).
  auto order = [&](std::uint64_t child, std::uint64_t parent,
                   const std::string& during) {
    (void)dimension.AddOrder(ValueId(child), ValueId(parent), During(during));
  };
  order(5, 4, "[01/01/80-NOW]");
  order(6, 4, "[01/01/80-NOW]");
  order(3, 7, "[01/01/70-31/12/79]");
  order(3, 8, "[01/01/70-31/12/79]");  // user-defined
  order(5, 9, "[01/01/80-NOW]");       // user-defined
  order(6, 10, "[01/01/80-NOW]");      // user-defined
  order(9, 11, "[01/01/80-NOW]");
  order(10, 11, "[01/01/80-NOW]");
  order(4, 12, "[01/01/80-NOW]");
  // Example 10: the old Diabetes family (8) is considered contained in
  // the new Diabetes group (11) from 1980 on.
  order(8, 11, "[01/01/80-NOW]");

  // Code representation (subset used by tests; Example 6/9).
  Representation& code = dimension.RepresentationFor(low, "Code");
  (void)code.Set(ValueId(3), "P11", During("[01/01/70-31/12/79]"));
  (void)code.Set(ValueId(5), "O24.0", During("[01/01/80-NOW]"));
  (void)code.Set(ValueId(6), "O24.1", During("[01/01/80-NOW]"));
  Representation& family_code = dimension.RepresentationFor(family, "Code");
  (void)family_code.Set(ValueId(8), "D1", During("[01/01/70-31/12/79]"));
  (void)family_code.Set(ValueId(9), "E10", During("[01/01/80-NOW]"));
  return dimension;
}

/// A one-dimensional Patient MO over the Diagnosis dimension with the Has
/// table of Table 1 as its fact-dimension relation.
inline MdObject BuildPatientDiagnosisMo() {
  auto registry = std::make_shared<FactRegistry>();
  MdObject mo("Patient", {BuildDiagnosisDimension()}, registry,
              TemporalType::kValidTime);
  FactId p1 = registry->Atom(1);
  FactId p2 = registry->Atom(2);
  (void)mo.AddFact(p1);
  (void)mo.AddFact(p2);
  // Has table: (PatientID, DiagnosisID, ValidFrom, ValidTo).
  (void)mo.Relate(0, p1, ValueId(9), During("[01/01/89-NOW]"));
  (void)mo.Relate(0, p2, ValueId(3), During("[23/03/75-24/12/75]"));
  (void)mo.Relate(0, p2, ValueId(8), During("[01/01/70-31/12/81]"));
  (void)mo.Relate(0, p2, ValueId(5), During("[01/01/82-30/09/82]"));
  (void)mo.Relate(0, p2, ValueId(9), During("[01/01/82-NOW]"));
  return mo;
}

}  // namespace testing_fixtures
}  // namespace mddc

#endif  // MDDC_TESTS_FIXTURES_H_
