#include <gtest/gtest.h>

#include "algebra/operators.h"
#include "fixtures.h"

namespace mddc {
namespace {

using testing_fixtures::BuildDiagnosisDimension;
using testing_fixtures::Day;
using testing_fixtures::During;

/// Example 7/12's snapshot MO: "Leaving out the temporal aspects", R =
/// {(1,9), (2,3), (2,5), (2,8), (2,9)}.
MdObject BuildSnapshotPatientMo() {
  auto registry = std::make_shared<FactRegistry>();
  MdObject mo("Patient", {BuildDiagnosisDimension()}, registry);
  FactId p1 = registry->Atom(1);
  FactId p2 = registry->Atom(2);
  (void)mo.AddFact(p1);
  (void)mo.AddFact(p2);
  (void)mo.Relate(0, p1, ValueId(9));
  (void)mo.Relate(0, p2, ValueId(3));
  (void)mo.Relate(0, p2, ValueId(5));
  (void)mo.Relate(0, p2, ValueId(8));
  (void)mo.Relate(0, p2, ValueId(9));
  return mo;
}

/// An Age dimension: bottom category "Age" (Sigma) with numeric values,
/// grouped into ten-year groups.
Dimension BuildAgeDimension() {
  DimensionTypeBuilder builder("Age");
  builder.AddCategory("Age", AggregationType::kSum)
      .AddCategory("Ten-year Group", AggregationType::kConstant)
      .AddOrder("Age", "Ten-year Group");
  Dimension dimension(std::move(builder.Build()).ValueOrDie());
  CategoryTypeIndex age = *dimension.type().Find("Age");
  CategoryTypeIndex group = *dimension.type().Find("Ten-year Group");
  // Ages 0..99 and groups 0-9, 10-19, ...
  Representation& value_rep = dimension.RepresentationFor(age, "Value");
  Representation& group_rep = dimension.RepresentationFor(group, "Value");
  for (std::uint64_t g = 0; g < 10; ++g) {
    ValueId group_id(1000 + g);
    (void)dimension.AddValue(group, group_id);
    (void)group_rep.Set(group_id,
                        StrCat(g * 10, "-", g * 10 + 9));
  }
  for (std::uint64_t a = 0; a < 100; ++a) {
    ValueId age_id(a);
    (void)dimension.AddValue(age, age_id);
    (void)value_rep.Set(age_id, std::to_string(a));
    (void)dimension.AddOrder(age_id, ValueId(1000 + a / 10));
  }
  return dimension;
}

MdObject BuildPatientAgeMo() {
  auto registry = std::make_shared<FactRegistry>();
  MdObject mo("Patient", {BuildDiagnosisDimension(), BuildAgeDimension()},
              registry);
  FactId p1 = registry->Atom(1);
  FactId p2 = registry->Atom(2);
  (void)mo.AddFact(p1);
  (void)mo.AddFact(p2);
  (void)mo.Relate(0, p1, ValueId(9));
  (void)mo.Relate(0, p2, ValueId(9));
  (void)mo.Relate(1, p1, ValueId(30));  // patient 1 is 30
  (void)mo.Relate(1, p2, ValueId(49));  // patient 2 is 49
  return mo;
}

AggregateSpec GroupByDiagnosisGroup(const MdObject& mo,
                                    AggFunction function) {
  AggregateSpec spec{std::move(function), {}, ResultDimensionSpec::Auto(),
                     kNowChronon, true};
  CategoryTypeIndex group = *mo.dimension(0).type().Find("Diagnosis Group");
  spec.grouping.push_back(group);
  for (std::size_t i = 1; i < mo.dimension_count(); ++i) {
    spec.grouping.push_back(mo.dimension(i).type().top());
  }
  return spec;
}

TEST(AggregateFormationTest, Example12SetCountPerDiagnosisGroup) {
  MdObject mo = BuildSnapshotPatientMo();
  auto result =
      AggregateFormation(mo, GroupByDiagnosisGroup(mo, AggFunction::SetCount()));
  ASSERT_TRUE(result.ok()) << result.status();

  // Two groups: {1,2} -> 11 and {2} -> 12 (Figure 3's R1).
  ASSERT_EQ(result->fact_count(), 2u);
  FactRegistry& registry = *mo.registry();
  FactId p1 = registry.Atom(1);
  FactId p2 = registry.Atom(2);
  FactId both = registry.Set({p1, p2});
  FactId only2 = registry.Set({p2});
  EXPECT_TRUE(result->HasFact(both));
  EXPECT_TRUE(result->HasFact(only2));

  auto find_value = [&](FactId fact, std::size_t dim) {
    auto pairs = result->relation(dim).ForFact(fact);
    EXPECT_EQ(pairs.size(), 1u);
    return pairs.empty() ? ValueId() : pairs.front()->value;
  };
  EXPECT_EQ(find_value(both, 0), ValueId(11));
  EXPECT_EQ(find_value(only2, 0), ValueId(12));

  // Figure 3's R7: counts 2 and 1 — patient 2 counted ONCE for group 11
  // even though it has several diagnoses in the group.
  const std::size_t result_dim = result->dimension_count() - 1;
  const Dimension& counts = result->dimension(result_dim);
  EXPECT_DOUBLE_EQ(*counts.NumericValueOf(find_value(both, result_dim)), 2.0);
  EXPECT_DOUBLE_EQ(*counts.NumericValueOf(find_value(only2, result_dim)),
                   1.0);
}

TEST(AggregateFormationTest, ArgumentDimensionRestrictedAboveGrouping) {
  MdObject mo = BuildSnapshotPatientMo();
  auto result =
      AggregateFormation(mo, GroupByDiagnosisGroup(mo, AggFunction::SetCount()));
  ASSERT_TRUE(result.ok());
  // "The Diagnosis dimension is cut so that only the part from Diagnosis
  // Group and up is kept."
  const DimensionType& type = result->dimension(0).type();
  EXPECT_EQ(type.category(type.bottom()).name, "Diagnosis Group");
  EXPECT_EQ(type.category_count(), 2u);  // Group + TOP
  EXPECT_FALSE(result->dimension(0).HasValue(ValueId(9)));
  EXPECT_TRUE(result->dimension(0).HasValue(ValueId(11)));
}

TEST(AggregateFormationTest, ResultFactTypeIsSetOfArgument) {
  MdObject mo = BuildSnapshotPatientMo();
  auto result =
      AggregateFormation(mo, GroupByDiagnosisGroup(mo, AggFunction::SetCount()));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->schema().fact_type(), "Set-of-Patient");
  EXPECT_EQ(result->dimension_count(), 2u);  // Diagnosis + Result
}

TEST(AggregateFormationTest, Figure3ExplicitResultDimension) {
  MdObject mo = BuildSnapshotPatientMo();

  // Figure 3's result dimension: Count values grouped into ranges "0-1"
  // and ">1".
  DimensionTypeBuilder builder("Result");
  builder.AddCategory("Count", AggregationType::kSum)
      .AddCategory("Range", AggregationType::kConstant)
      .AddOrder("Count", "Range");
  Dimension prototype(std::move(builder.Build()).ValueOrDie());
  CategoryTypeIndex count_cat = *prototype.type().Find("Count");
  CategoryTypeIndex range_cat = *prototype.type().Find("Range");
  ValueId range_low(9000);
  ValueId range_high(9001);
  ASSERT_TRUE(prototype.AddValue(range_cat, range_low).ok());
  ASSERT_TRUE(prototype.AddValue(range_cat, range_high).ok());
  Representation& range_rep =
      prototype.RepresentationFor(range_cat, "Value");
  ASSERT_TRUE(range_rep.Set(range_low, "0-1").ok());
  ASSERT_TRUE(range_rep.Set(range_high, ">1").ok());
  Representation& count_rep =
      prototype.RepresentationFor(count_cat, "Value");
  for (std::uint64_t c = 0; c <= 10; ++c) {
    ValueId id(c);
    ASSERT_TRUE(prototype.AddValue(count_cat, id).ok());
    ASSERT_TRUE(count_rep.Set(id, std::to_string(c)).ok());
    ASSERT_TRUE(
        prototype.AddOrder(id, c <= 1 ? range_low : range_high).ok());
  }

  AggregateSpec spec =
      GroupByDiagnosisGroup(mo, AggFunction::SetCount());
  spec.result = ResultDimensionSpec::Explicit(
      std::move(prototype), [](double value) -> Result<ValueId> {
        if (value < 0 || value > 10) {
          return Status::InvalidArgument("count out of prototype range");
        }
        return ValueId(static_cast<std::uint64_t>(value));
      });
  auto result = AggregateFormation(mo, spec);
  ASSERT_TRUE(result.ok()) << result.status();

  // The counts roll up into the ranges: count 2 is in ">1", count 1 in
  // "0-1".
  const std::size_t result_dim = result->dimension_count() - 1;
  const Dimension& counts = result->dimension(result_dim);
  FactId both = mo.registry()->Set({mo.registry()->Atom(1),
                                    mo.registry()->Atom(2)});
  auto pairs = result->relation(result_dim).ForFact(both);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs.front()->value, ValueId(2));
  EXPECT_TRUE(counts.LessEqAt(ValueId(2), range_high));
  EXPECT_TRUE(counts.LessEqAt(ValueId(1), range_low));
}

TEST(AggregateFormationTest, NonSummarizableResultIsConstantTyped) {
  // The diagnosis hierarchy is non-strict (patient 2 in both groups), so
  // the result's bottom aggregation type must degrade to c, preventing
  // double-counting in further aggregation.
  MdObject mo = BuildSnapshotPatientMo();
  auto result =
      AggregateFormation(mo, GroupByDiagnosisGroup(mo, AggFunction::SetCount()));
  ASSERT_TRUE(result.ok());
  const DimensionType& type =
      result->dimension(result->dimension_count() - 1).type();
  EXPECT_EQ(type.AggType(type.bottom()), AggregationType::kConstant);
}

TEST(AggregateFormationTest, SummarizableResultKeepsArgumentType) {
  // Group patients by ten-year age group and SUM their ages: the Age
  // hierarchy is strict and partitioning and SUM is distributive, so the
  // result stays Sigma-typed.
  MdObject mo = BuildPatientAgeMo();
  AggregateSpec spec{AggFunction::Sum(1),
                     {mo.dimension(0).type().top(),
                      *mo.dimension(1).type().Find("Ten-year Group")},
                     ResultDimensionSpec::Auto("TotalAge"),
                     kNowChronon,
                     true};
  auto result = AggregateFormation(mo, spec);
  ASSERT_TRUE(result.ok()) << result.status();
  const DimensionType& type =
      result->dimension(result->dimension_count() - 1).type();
  EXPECT_EQ(type.AggType(type.bottom()), AggregationType::kSum);

  // Patient 1 (30) is alone in 30-39; patient 2 (49) alone in 40-49.
  ASSERT_EQ(result->fact_count(), 2u);
  const std::size_t result_dim = result->dimension_count() - 1;
  const Dimension& totals = result->dimension(result_dim);
  std::vector<double> sums;
  for (FactId fact : result->facts()) {
    auto pairs = result->relation(result_dim).ForFact(fact);
    ASSERT_EQ(pairs.size(), 1u);
    sums.push_back(*totals.NumericValueOf(pairs.front()->value));
  }
  std::sort(sums.begin(), sums.end());
  EXPECT_EQ(sums, (std::vector<double>{30.0, 49.0}));
}

TEST(AggregateFormationTest, AvgMinMaxOverAges) {
  MdObject mo = BuildPatientAgeMo();
  // Group everything together (top in both dimensions).
  AggregateSpec spec{AggFunction::Avg(1),
                     {mo.dimension(0).type().top(),
                      mo.dimension(1).type().top()},
                     ResultDimensionSpec::Auto("AvgAge"),
                     kNowChronon,
                     true};
  auto avg = AggregateFormation(mo, spec);
  ASSERT_TRUE(avg.ok());
  ASSERT_EQ(avg->fact_count(), 1u);
  const std::size_t rd = avg->dimension_count() - 1;
  auto pairs = avg->relation(rd).ForFact(avg->facts()[0]);
  EXPECT_DOUBLE_EQ(*avg->dimension(rd).NumericValueOf(pairs.front()->value),
                   39.5);

  spec.function = AggFunction::Min(1);
  auto min_result = AggregateFormation(mo, spec);
  ASSERT_TRUE(min_result.ok());
  pairs = min_result->relation(rd).ForFact(min_result->facts()[0]);
  EXPECT_DOUBLE_EQ(
      *min_result->dimension(rd).NumericValueOf(pairs.front()->value), 30.0);

  spec.function = AggFunction::Max(1);
  auto max_result = AggregateFormation(mo, spec);
  ASSERT_TRUE(max_result.ok());
  pairs = max_result->relation(rd).ForFact(max_result->facts()[0]);
  EXPECT_DOUBLE_EQ(
      *max_result->dimension(rd).NumericValueOf(pairs.front()->value), 49.0);
}

TEST(AggregateFormationTest, AvgIsNotSummarizableSoResultIsConstant) {
  MdObject mo = BuildPatientAgeMo();
  AggregateSpec spec{AggFunction::Avg(1),
                     {mo.dimension(0).type().top(),
                      *mo.dimension(1).type().Find("Ten-year Group")},
                     ResultDimensionSpec::Auto("AvgAge"),
                     kNowChronon,
                     true};
  auto result = AggregateFormation(mo, spec);
  ASSERT_TRUE(result.ok());
  const DimensionType& type =
      result->dimension(result->dimension_count() - 1).type();
  // AVG is not distributive: the result cannot be safely re-aggregated.
  EXPECT_EQ(type.AggType(type.bottom()), AggregationType::kConstant);
}

TEST(AggregateFormationTest, IllegalAggregationRejected) {
  // SUM over diagnoses (aggregation type c) must be refused.
  MdObject mo = BuildSnapshotPatientMo();
  AggregateSpec spec = GroupByDiagnosisGroup(mo, AggFunction::Sum(0));
  auto result = AggregateFormation(mo, spec);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIllegalAggregation);
  // With enforcement off (the paper's "warn the user" mode), it runs.
  spec.enforce_aggregation_types = false;
  EXPECT_FALSE(AggregateFormation(mo, spec).ok())
      << "diagnoses have no numeric interpretation, so SUM still fails";
}

TEST(AggregateFormationTest, CountCountsPairsNotFacts) {
  // COUNT_0 counts diagnosis pairs; SetCount counts patients. Patient 2
  // has 4 diagnoses.
  MdObject mo = BuildSnapshotPatientMo();
  AggregateSpec spec{AggFunction::Count(0),
                     {mo.dimension(0).type().top()},
                     ResultDimensionSpec::Auto("DiagnosisCount"),
                     kNowChronon,
                     true};
  auto result = AggregateFormation(mo, spec);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->fact_count(), 1u);
  const std::size_t rd = result->dimension_count() - 1;
  auto pairs = result->relation(rd).ForFact(result->facts()[0]);
  EXPECT_DOUBLE_EQ(
      *result->dimension(rd).NumericValueOf(pairs.front()->value), 5.0);
}

TEST(AggregateFormationTest, FactWithoutGroupValueFallsOutOfAllGroups) {
  auto registry = std::make_shared<FactRegistry>();
  MdObject mo("Patient", {BuildDiagnosisDimension()}, registry);
  FactId p1 = registry->Atom(1);
  FactId p3 = registry->Atom(3);
  (void)mo.AddFact(p1);
  (void)mo.AddFact(p3);
  (void)mo.Relate(0, p1, ValueId(9));
  // Patient 3's diagnosis is unknown: related to top only, which is not
  // contained in any diagnosis group.
  (void)mo.Relate(0, p3, mo.dimension(0).top_value());

  auto result = AggregateFormation(
      mo, GroupByDiagnosisGroup(mo, AggFunction::SetCount()));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->fact_count(), 1u);
  FactId group_fact = result->facts()[0];
  auto term = registry->Get(group_fact);
  ASSERT_TRUE(term.ok());
  EXPECT_EQ(term->members, std::vector<FactId>{p1});
}

TEST(AggregateFormationTest, TemporalGroupLinkIntersectsMemberSpans) {
  // Two facts characterized by family 9 during different periods: the
  // group's link to 9 carries the intersection of the members'
  // characterization times.
  auto registry = std::make_shared<FactRegistry>();
  MdObject mo("Patient", {BuildDiagnosisDimension()}, registry,
              TemporalType::kValidTime);
  FactId p1 = registry->Atom(1);
  FactId p2 = registry->Atom(2);
  (void)mo.AddFact(p1);
  (void)mo.AddFact(p2);
  (void)mo.Relate(0, p1, ValueId(9), During("[01/01/82-31/12/94]"));
  (void)mo.Relate(0, p2, ValueId(9), During("[01/01/90-NOW]"));

  CategoryTypeIndex family = *mo.dimension(0).type().Find("Diagnosis Family");
  AggregateSpec spec{AggFunction::SetCount(),
                     {family},
                     ResultDimensionSpec::Auto(),
                     kNowChronon,
                     true};
  auto result = AggregateFormation(mo, spec);
  ASSERT_TRUE(result.ok());
  FactId group = registry->Set({p1, p2});
  ASSERT_TRUE(result->HasFact(group));
  auto pairs = result->relation(0).ForFact(group);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_TRUE(pairs.front()->life.valid.Contains(Day("15/06/92")));
  EXPECT_FALSE(pairs.front()->life.valid.Contains(Day("15/06/85")));
}

TEST(AggregateFormationTest, ResultLinkTimeIntersectsArgumentPairTimes) {
  // Section 4.2: the time on (Group, g(Group)) is the intersection over
  // members and Args(g) of the members' data times. Two patients whose
  // Age pairs hold over different periods yield a SUM link valid only in
  // the overlap.
  auto registry = std::make_shared<FactRegistry>();
  MdObject mo("Patient", {BuildDiagnosisDimension(), BuildAgeDimension()},
              registry, TemporalType::kValidTime);
  FactId p1 = registry->Atom(1);
  FactId p2 = registry->Atom(2);
  (void)mo.AddFact(p1);
  (void)mo.AddFact(p2);
  (void)mo.Relate(0, p1, ValueId(9));
  (void)mo.Relate(0, p2, ValueId(9));
  (void)mo.Relate(1, p1, ValueId(30), During("[01/01/80-31/12/89]"));
  (void)mo.Relate(1, p2, ValueId(40), During("[01/01/85-NOW]"));

  CategoryTypeIndex family = *mo.dimension(0).type().Find("Diagnosis Family");
  AggregateSpec spec{AggFunction::Sum(1),
                     {family, mo.dimension(1).type().top()},
                     ResultDimensionSpec::Auto(),
                     kNowChronon,
                     true};
  auto result = AggregateFormation(mo, spec);
  ASSERT_TRUE(result.ok()) << result.status();
  FactId group = registry->Set({p1, p2});
  ASSERT_TRUE(result->HasFact(group));
  const std::size_t result_dim = result->dimension_count() - 1;
  auto pairs = result->relation(result_dim).ForFact(group);
  ASSERT_EQ(pairs.size(), 1u);
  // Overlap of [80-89] and [85-NOW] is [85-89].
  EXPECT_TRUE(pairs.front()->life.valid.Contains(Day("15/06/87")));
  EXPECT_FALSE(pairs.front()->life.valid.Contains(Day("15/06/82")));
  EXPECT_FALSE(pairs.front()->life.valid.Contains(Day("15/06/95")));
}

TEST(AggregateFormationTest, ExpectedCountsUnderUncertainty) {
  // Two certain patients and one 50%-certain patient in family 9: the
  // crisp count is 3, the expected count 2.5.
  auto registry = std::make_shared<FactRegistry>();
  MdObject mo("Patient", {BuildDiagnosisDimension()}, registry);
  for (std::uint64_t p : {1, 2}) {
    FactId fact = registry->Atom(p);
    (void)mo.AddFact(fact);
    (void)mo.Relate(0, fact, ValueId(9));
  }
  FactId maybe = registry->Atom(3);
  (void)mo.AddFact(maybe);
  (void)mo.Relate(0, maybe, ValueId(9), Lifespan::AlwaysSpan(), 0.5);

  CategoryTypeIndex family = *mo.dimension(0).type().Find("Diagnosis Family");
  AggregateSpec spec{AggFunction::SetCount(),
                     {family},
                     ResultDimensionSpec::Auto(),
                     kNowChronon,
                     true};
  auto read_count = [&](const MdObject& result) {
    const std::size_t rd = result.dimension_count() - 1;
    auto pairs = result.relation(rd).ForFact(result.facts()[0]);
    return *result.dimension(rd).NumericValueOf(pairs.front()->value);
  };

  auto crisp = AggregateFormation(mo, spec);
  ASSERT_TRUE(crisp.ok());
  ASSERT_EQ(crisp->fact_count(), 1u);
  EXPECT_DOUBLE_EQ(read_count(*crisp), 3.0);

  spec.expected_counts = true;
  auto expected = AggregateFormation(mo, spec);
  ASSERT_TRUE(expected.ok());
  ASSERT_EQ(expected->fact_count(), 1u);
  EXPECT_DOUBLE_EQ(read_count(*expected), 2.5);

  // expected_counts is a no-op for other functions.
  spec.function = AggFunction::Count(0);
  auto counted = AggregateFormation(mo, spec);
  ASSERT_TRUE(counted.ok());
  EXPECT_DOUBLE_EQ(read_count(*counted), 3.0);
}

TEST(AggregateFormationTest, ExpectedCountCompoundsContainmentProbability) {
  // An uncertain containment edge (0.8) under an uncertain pair (0.5):
  // group membership probability 0.4.
  auto registry = std::make_shared<FactRegistry>();
  Dimension diagnosis(testing_fixtures::DiagnosisType());
  CategoryTypeIndex low = *diagnosis.type().Find("Low-level Diagnosis");
  CategoryTypeIndex family = *diagnosis.type().Find("Diagnosis Family");
  ASSERT_TRUE(diagnosis.AddValue(low, ValueId(1)).ok());
  ASSERT_TRUE(diagnosis.AddValue(family, ValueId(2)).ok());
  ASSERT_TRUE(
      diagnosis.AddOrder(ValueId(1), ValueId(2), Lifespan{}, 0.8).ok());
  MdObject mo("Patient", {std::move(diagnosis)}, registry);
  FactId fact = registry->Atom(1);
  ASSERT_TRUE(mo.AddFact(fact).ok());
  ASSERT_TRUE(mo.Relate(0, fact, ValueId(1), Lifespan{}, 0.5).ok());

  AggregateSpec spec{AggFunction::SetCount(),
                     {family},
                     ResultDimensionSpec::Auto(),
                     kNowChronon,
                     true};
  spec.expected_counts = true;
  auto result = AggregateFormation(mo, spec);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->fact_count(), 1u);
  const std::size_t rd = result->dimension_count() - 1;
  auto pairs = result->relation(rd).ForFact(result->facts()[0]);
  EXPECT_DOUBLE_EQ(
      *result->dimension(rd).NumericValueOf(pairs.front()->value), 0.4);
}

TEST(AggregateFormationTest, GroupingArityValidated) {
  MdObject mo = BuildSnapshotPatientMo();
  AggregateSpec spec{AggFunction::SetCount(), {0, 0},
                     ResultDimensionSpec::Auto(), kNowChronon, true};
  EXPECT_FALSE(AggregateFormation(mo, spec).ok());
}

}  // namespace
}  // namespace mddc
