#include <gtest/gtest.h>

#include "core/properties.h"
#include "fixtures.h"

namespace mddc {
namespace {

using testing_fixtures::BuildDiagnosisDimension;
using testing_fixtures::BuildPatientDiagnosisMo;
using testing_fixtures::Day;
using testing_fixtures::During;

/// The Residence dimension: Area < County < Region, strict and
/// partitioning (paper Example 11).
Dimension BuildResidenceDimension() {
  DimensionTypeBuilder builder("Residence");
  builder.AddCategory("Area").AddCategory("County").AddCategory("Region");
  builder.AddOrder("Area", "County").AddOrder("County", "Region");
  Dimension dimension(std::move(builder.Build()).ValueOrDie());
  CategoryTypeIndex area = *dimension.type().Find("Area");
  CategoryTypeIndex county = *dimension.type().Find("County");
  CategoryTypeIndex region = *dimension.type().Find("Region");
  for (std::uint64_t i = 1; i <= 4; ++i) {
    (void)dimension.AddValue(area, ValueId(i));
  }
  (void)dimension.AddValue(county, ValueId(10));
  (void)dimension.AddValue(county, ValueId(11));
  (void)dimension.AddValue(region, ValueId(20));
  (void)dimension.AddOrder(ValueId(1), ValueId(10));
  (void)dimension.AddOrder(ValueId(2), ValueId(10));
  (void)dimension.AddOrder(ValueId(3), ValueId(11));
  (void)dimension.AddOrder(ValueId(4), ValueId(11));
  (void)dimension.AddOrder(ValueId(10), ValueId(20));
  (void)dimension.AddOrder(ValueId(11), ValueId(20));
  return dimension;
}

TEST(PropertiesTest, ResidenceIsStrictAndPartitioning) {
  Dimension residence = BuildResidenceDimension();
  EXPECT_TRUE(IsStrict(residence));
  EXPECT_TRUE(IsSnapshotStrict(residence));
  EXPECT_TRUE(IsPartitioning(residence));
  EXPECT_TRUE(IsSnapshotPartitioning(residence));
}

TEST(PropertiesTest, DiagnosisIsNonStrictButPartitioning) {
  // Paper Example 11: "The hierarchy in the Diagnosis dimension is
  // non-strict and partitioning".
  Dimension diagnosis = BuildDiagnosisDimension();
  EXPECT_FALSE(IsStrict(diagnosis));
  // Value 5 has two families (4 and 9) at the same time: not snapshot
  // strict either.
  EXPECT_FALSE(IsSnapshotStrict(diagnosis));
  // At the current time every live diagnosis has a parent, so the
  // hierarchy is partitioning *now*...
  EXPECT_TRUE(IsPartitioningAt(diagnosis, Day("01/06/99")));
  // ...but in the 1970s the old classification had no diagnosis groups at
  // all, so families 7 and 8 were orphaned ("could have been
  // non-partitioning", Example 11).
  EXPECT_FALSE(IsPartitioningAt(diagnosis, Day("15/06/75")));
  EXPECT_FALSE(IsSnapshotPartitioning(diagnosis));
  EXPECT_FALSE(IsPartitioning(diagnosis));
}

TEST(PropertiesTest, WhoSubHierarchyIsSnapshotStrict) {
  // Example 11: restricting to the standard (WHO) classification gives a
  // snapshot-strict, snapshot-partitioning hierarchy. Rebuild with only
  // WHO edges.
  auto type = testing_fixtures::DiagnosisType();
  Dimension dimension(type);
  CategoryTypeIndex low = *type->Find("Low-level Diagnosis");
  CategoryTypeIndex family = *type->Find("Diagnosis Family");
  CategoryTypeIndex group = *type->Find("Diagnosis Group");
  (void)dimension.AddValue(low, ValueId(3), During("[01/01/70-31/12/79]"));
  (void)dimension.AddValue(low, ValueId(5), During("[01/01/80-NOW]"));
  (void)dimension.AddValue(low, ValueId(6), During("[01/01/80-NOW]"));
  (void)dimension.AddValue(family, ValueId(4), During("[01/01/80-NOW]"));
  (void)dimension.AddValue(family, ValueId(7), During("[01/01/70-31/12/79]"));
  (void)dimension.AddValue(group, ValueId(12), During("[01/10/80-NOW]"));
  (void)dimension.AddOrder(ValueId(5), ValueId(4), During("[01/01/80-NOW]"));
  (void)dimension.AddOrder(ValueId(6), ValueId(4), During("[01/01/80-NOW]"));
  (void)dimension.AddOrder(ValueId(3), ValueId(7),
                           During("[01/01/70-31/12/79]"));
  (void)dimension.AddOrder(ValueId(4), ValueId(12), During("[01/01/80-NOW]"));
  EXPECT_TRUE(IsSnapshotStrict(dimension));
}

TEST(PropertiesTest, StrictMappingPerCategoryPair) {
  Dimension diagnosis = BuildDiagnosisDimension();
  CategoryTypeIndex low = *diagnosis.type().Find("Low-level Diagnosis");
  CategoryTypeIndex family = *diagnosis.type().Find("Diagnosis Family");
  CategoryTypeIndex group = *diagnosis.type().Find("Diagnosis Group");
  // Low-level -> Family is non-strict (value 5 in families 4 and 9).
  EXPECT_FALSE(IsStrictMappingAt(diagnosis, low, family, Day("01/06/85")));
  // Family -> Group is strict at current time (each family in one group).
  EXPECT_TRUE(IsStrictMappingAt(diagnosis, family, group, Day("01/06/85")));
}

TEST(PropertiesTest, NonPartitioningDetected) {
  DimensionTypeBuilder builder("Gappy");
  builder.AddCategory("Low").AddCategory("High");
  builder.AddOrder("Low", "High");
  Dimension dimension(std::move(builder.Build()).ValueOrDie());
  CategoryTypeIndex low = *dimension.type().Find("Low");
  CategoryTypeIndex high = *dimension.type().Find("High");
  (void)dimension.AddValue(low, ValueId(1));
  (void)dimension.AddValue(low, ValueId(2));
  (void)dimension.AddValue(high, ValueId(10));
  (void)dimension.AddOrder(ValueId(1), ValueId(10));
  // Value 2 has no parent in High: non-partitioning.
  EXPECT_FALSE(IsPartitioning(dimension));
  EXPECT_FALSE(IsPartitioningAt(dimension, Day("01/01/85")));
  (void)dimension.AddOrder(ValueId(2), ValueId(10));
  EXPECT_TRUE(IsPartitioning(dimension));
}

TEST(PropertiesTest, SnapshotPartitioningCatchesTemporaryGaps) {
  DimensionTypeBuilder builder("Temporal");
  builder.AddCategory("Low").AddCategory("High");
  builder.AddOrder("Low", "High");
  Dimension dimension(std::move(builder.Build()).ValueOrDie());
  CategoryTypeIndex low = *dimension.type().Find("Low");
  CategoryTypeIndex high = *dimension.type().Find("High");
  (void)dimension.AddValue(low, ValueId(1));
  (void)dimension.AddValue(high, ValueId(10));
  // The parent link only holds in the 80s; before/after, value 1 is
  // orphaned.
  (void)dimension.AddOrder(ValueId(1), ValueId(10),
                           During("[01/01/80-31/12/89]"));
  EXPECT_FALSE(IsSnapshotPartitioning(dimension));
  EXPECT_TRUE(IsPartitioningAt(dimension, Day("15/06/85")));
  EXPECT_FALSE(IsPartitioningAt(dimension, Day("15/06/95")));
}

TEST(PropertiesTest, StrictPathDependsOnFactCharacterizations) {
  MdObject mo = BuildPatientDiagnosisMo();
  CategoryTypeIndex family = *mo.dimension(0).type().Find("Diagnosis Family");
  CategoryTypeIndex group = *mo.dimension(0).type().Find("Diagnosis Group");
  // Patient 2 is characterized by several families simultaneously is
  // false at current time? p2 ~> 9 only at NOW; p2 ~> 8's membership ends
  // in 81. At 15/06/80: p2 ~> 8 (family) only. Check group level: both
  // patients characterized by a single group at current time.
  EXPECT_TRUE(HasStrictPath(mo, 0, group, Day("01/06/99")));
  // At a time when patient 2 maps to both family 9 (via direct) and 4
  // (via 5 <= 4) — during [01/01/82-30/09/82] — the family path is
  // non-strict.
  EXPECT_FALSE(HasStrictPath(mo, 0, family, Day("01/06/82")));
}

TEST(PropertiesTest, SummarizabilityReportForDiagnosisGroups) {
  MdObject mo = BuildPatientDiagnosisMo();
  CategoryTypeIndex group = *mo.dimension(0).type().Find("Diagnosis Group");
  // Count of patients per diagnosis group with a non-strict hierarchy:
  // the hierarchy below Group is non-strict, but what matters for
  // summarizability is the strict *path* and partitioning; patient 2 has
  // diagnoses in both groups, so at 1985 the path to Group is strict
  // (one group per diagnosis chain? 5 is below 4 which is in group 12 —
  // and below 9 which is in group 11), hence non-strict.
  // During [01/01/82-30/09/82] patient 2 carries diagnosis 5 (in group 12
  // via family 4 and in group 11 via family 9) — two groups at once, so
  // the path to Diagnosis Group is non-strict then.
  SummarizabilityReport report = CheckSummarizability(
      mo, AggregateFunctionKind::kSetCount, {group}, Day("01/06/82"));
  EXPECT_TRUE(report.distributive);
  ASSERT_EQ(report.strict_path.size(), 1u);
  EXPECT_FALSE(report.strict_path[0]);
  EXPECT_FALSE(report.summarizable);
  EXPECT_NE(report.ToString().find("summarizable=no"), std::string::npos);
  // At the current time patient 2 is only in group 11, so the path is
  // strict — but the 1970s families are orphaned, so partitioning still
  // fails atemporally; at current time it holds.
  SummarizabilityReport now = CheckSummarizability(
      mo, AggregateFunctionKind::kSetCount, {group}, Day("01/06/99"));
  EXPECT_TRUE(now.strict_path[0]);
}

TEST(PropertiesTest, SummarizableCleanCase) {
  // A strict, partitioning setup with a distributive function is
  // summarizable.
  Dimension residence = BuildResidenceDimension();
  auto registry = std::make_shared<FactRegistry>();
  MdObject mo("Patient", {residence}, registry);
  FactId p1 = registry->Atom(1);
  ASSERT_TRUE(mo.AddFact(p1).ok());
  ASSERT_TRUE(mo.Relate(0, p1, ValueId(1)).ok());
  CategoryTypeIndex county = *mo.dimension(0).type().Find("County");
  SummarizabilityReport report =
      CheckSummarizability(mo, AggregateFunctionKind::kSetCount, {county});
  EXPECT_TRUE(report.summarizable);
  // AVG is not distributive, so never summarizable.
  SummarizabilityReport avg =
      CheckSummarizability(mo, AggregateFunctionKind::kAvg, {county});
  EXPECT_FALSE(avg.summarizable);
  EXPECT_FALSE(avg.distributive);
}

TEST(PropertiesTest, CriticalChrononsCoverEdgeEndpoints) {
  Dimension diagnosis = BuildDiagnosisDimension();
  std::vector<Chronon> points = CriticalChronons(diagnosis);
  EXPECT_FALSE(points.empty());
  // The classification change on 01/01/80 must be represented.
  bool found = false;
  for (Chronon c : points) {
    if (c == Day("01/01/80")) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(AggregationTest, TypeOrderingAndApplicability) {
  EXPECT_EQ(MinAggregationType(AggregationType::kSum,
                               AggregationType::kConstant),
            AggregationType::kConstant);
  EXPECT_EQ(MinAggregationType(AggregationType::kSum,
                               AggregationType::kAverage),
            AggregationType::kAverage);
  EXPECT_TRUE(IsApplicable(AggregateFunctionKind::kCount,
                           AggregationType::kConstant));
  EXPECT_FALSE(
      IsApplicable(AggregateFunctionKind::kSum, AggregationType::kAverage));
  EXPECT_TRUE(
      IsApplicable(AggregateFunctionKind::kAvg, AggregationType::kAverage));
  EXPECT_FALSE(
      IsApplicable(AggregateFunctionKind::kAvg, AggregationType::kConstant));
  EXPECT_TRUE(IsApplicable(AggregateFunctionKind::kSum,
                           AggregationType::kSum));
}

TEST(AggregationTest, DistributivityFlags) {
  EXPECT_TRUE(IsDistributive(AggregateFunctionKind::kSum));
  EXPECT_TRUE(IsDistributive(AggregateFunctionKind::kCount));
  EXPECT_TRUE(IsDistributive(AggregateFunctionKind::kMin));
  EXPECT_TRUE(IsDistributive(AggregateFunctionKind::kMax));
  EXPECT_TRUE(IsDistributive(AggregateFunctionKind::kSetCount));
  EXPECT_FALSE(IsDistributive(AggregateFunctionKind::kAvg));
}

TEST(AggregationTest, Names) {
  EXPECT_EQ(AggregationTypeName(AggregationType::kSum), "Sigma");
  EXPECT_EQ(AggregationTypeName(AggregationType::kAverage), "phi");
  EXPECT_EQ(AggregationTypeName(AggregationType::kConstant), "c");
  EXPECT_EQ(AggregateFunctionKindName(AggregateFunctionKind::kSetCount),
            "SetCount");
}

}  // namespace
}  // namespace mddc
