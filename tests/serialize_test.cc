#include <gtest/gtest.h>

#include "algebra/derived.h"
#include "algebra/timeslice.h"
#include "common/date.h"
#include "algebra/derived.h"
#include "io/serialize.h"
#include "workload/case_study.h"
#include "workload/clinical_generator.h"

namespace mddc {
namespace io {
namespace {

Chronon Day(const std::string& text) { return *ParseDate(text); }

TEST(SerializeTest, CaseStudyRoundTrip) {
  auto cs = BuildCaseStudy();
  ASSERT_TRUE(cs.ok());
  auto text = WriteMo(cs->mo);
  ASSERT_TRUE(text.ok()) << text.status();

  auto registry = std::make_shared<FactRegistry>();
  auto loaded = ReadMo(*text, registry);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  // Structural equivalence.
  EXPECT_TRUE(loaded->schema().EquivalentTo(cs->mo.schema()));
  EXPECT_EQ(loaded->temporal_type(), cs->mo.temporal_type());
  EXPECT_EQ(loaded->fact_count(), cs->mo.fact_count());
  for (std::size_t i = 0; i < cs->mo.dimension_count(); ++i) {
    EXPECT_EQ(loaded->dimension(i).value_count(),
              cs->mo.dimension(i).value_count());
    EXPECT_EQ(loaded->relation(i).size(), cs->mo.relation(i).size());
  }
  EXPECT_TRUE(loaded->Validate().ok());
}

TEST(SerializeTest, BehavioralEquivalenceAfterRoundTrip) {
  auto cs = BuildCaseStudy();
  ASSERT_TRUE(cs.ok());
  auto text = WriteMo(cs->mo);
  ASSERT_TRUE(text.ok());
  auto loaded = ReadMo(*text, std::make_shared<FactRegistry>());
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  // Same Example 12 counts.
  CategoryTypeIndex group =
      *loaded->dimension(0).type().Find("Diagnosis Group");
  auto rows = SqlAggregate(*loaded, {SqlGroupBy{0, group, "Code"}},
                           AggFunction::SetCount());
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_DOUBLE_EQ((*rows)[0].value, 2.0);
  EXPECT_DOUBLE_EQ((*rows)[1].value, 1.0);

  // Same timeslice behavior (NOW endpoints survive the round trip).
  auto sliced = ValidTimeslice(*loaded, Day("15/06/75"));
  ASSERT_TRUE(sliced.ok()) << sliced.status();
  EXPECT_EQ(sliced->fact_count(), 1u);
  EXPECT_FALSE(sliced->dimension(0).HasValue(ValueId(11)));
}

TEST(SerializeTest, SecondRoundTripIsIdentical) {
  // write(read(write(mo))) == write(mo): the format is canonical.
  auto cs = BuildCaseStudy();
  ASSERT_TRUE(cs.ok());
  auto first = WriteMo(cs->mo);
  ASSERT_TRUE(first.ok());
  auto loaded = ReadMo(*first, std::make_shared<FactRegistry>());
  ASSERT_TRUE(loaded.ok());
  auto second = WriteMo(*loaded);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);
}

TEST(SerializeTest, ProbabilitiesAndUncertainWorkloadSurvive) {
  ClinicalWorkloadParams params;
  params.num_patients = 40;
  params.num_groups = 2;
  params.uncertain_rate = 0.5;
  auto workload =
      GenerateClinicalWorkload(params, std::make_shared<FactRegistry>());
  ASSERT_TRUE(workload.ok());
  auto text = WriteMo(workload->mo);
  ASSERT_TRUE(text.ok());
  auto loaded = ReadMo(*text, std::make_shared<FactRegistry>());
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  // Probabilities preserved entry-for-entry (match by value id).
  std::multiset<double> original_probs;
  for (const auto& entry : workload->mo.relation(0).entries()) {
    original_probs.insert(entry.prob);
  }
  std::multiset<double> loaded_probs;
  for (const auto& entry : loaded->relation(0).entries()) {
    loaded_probs.insert(entry.prob);
  }
  EXPECT_EQ(original_probs, loaded_probs);
}

TEST(SerializeTest, SetFactsFromAggregationRoundTrip) {
  // Serialize an *aggregated* MO whose facts are sets.
  auto cs = BuildCaseStudy();
  ASSERT_TRUE(cs.ok());
  CategoryTypeIndex group =
      *cs->mo.dimension(cs->diagnosis).type().Find("Diagnosis Group");
  auto aggregated =
      RollUp(cs->mo, cs->diagnosis, group, AggFunction::SetCount());
  ASSERT_TRUE(aggregated.ok());
  auto text = WriteMo(*aggregated);
  ASSERT_TRUE(text.ok()) << text.status();
  auto registry = std::make_shared<FactRegistry>();
  auto loaded = ReadMo(*text, registry);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->fact_count(), 2u);
  // The set {1,2} is rebuilt with canonical identity in the new registry.
  FactId both = registry->Set({registry->Atom(1), registry->Atom(2)});
  EXPECT_TRUE(loaded->HasFact(both));
}

TEST(SerializeTest, TopValueRelationsRoundTrip) {
  auto cs = BuildCaseStudy();
  ASSERT_TRUE(cs.ok());
  MdObject mo("Patient", {cs->mo.dimension(cs->diagnosis)}, cs->registry,
              TemporalType::kSnapshot);
  FactId unknown = cs->registry->Atom(99);
  ASSERT_TRUE(mo.AddFact(unknown).ok());
  ASSERT_TRUE(mo.CoverWithTop().ok());
  auto text = WriteMo(mo);
  ASSERT_TRUE(text.ok());
  auto loaded = ReadMo(*text, std::make_shared<FactRegistry>());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  auto pairs = loaded->relation(0).entries();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].value, loaded->dimension(0).top_value());
}

TEST(SerializeTest, FileRoundTrip) {
  auto cs = BuildCaseStudy();
  ASSERT_TRUE(cs.ok());
  std::string path = ::testing::TempDir() + "/case_study.mddc";
  ASSERT_TRUE(SaveMoToFile(cs->mo, path).ok());
  auto loaded = LoadMoFromFile(path, std::make_shared<FactRegistry>());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->fact_count(), 2u);
  EXPECT_FALSE(
      LoadMoFromFile("/nonexistent/path.mddc",
                     std::make_shared<FactRegistry>())
          .ok());
}

TEST(SerializeTest, RejectsCorruptInput) {
  EXPECT_FALSE(ReadMo("", std::make_shared<FactRegistry>()).ok());
  EXPECT_FALSE(ReadMo("GARBAGE 9", std::make_shared<FactRegistry>()).ok());
  EXPECT_FALSE(
      ReadMo("MDDC 1\nMO \"X\" snapshot 1\nnonsense",
             std::make_shared<FactRegistry>())
          .ok());
  auto cs = BuildCaseStudy();
  ASSERT_TRUE(cs.ok());
  auto text = WriteMo(cs->mo);
  ASSERT_TRUE(text.ok());
  // Truncation is detected (missing END).
  std::string truncated = text->substr(0, text->size() / 2);
  EXPECT_FALSE(ReadMo(truncated, std::make_shared<FactRegistry>()).ok());
}

// Property sweep: randomized clinical workloads round-trip exactly —
// write(read(write(mo))) == write(mo) — across non-strictness, temporal
// churn, uncertainty and mixed granularity.
class SerializeRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(SerializeRoundTripTest, RandomWorkloadsAreCanonical) {
  int seed = GetParam();
  ClinicalWorkloadParams params;
  params.seed = static_cast<std::uint32_t>(seed * 31 + 7);
  params.num_patients = 30 + 5 * (seed % 4);
  params.num_groups = 2;
  params.non_strict_rate = 0.2 * (seed % 3);
  params.reclassified_rate = 0.15 * (seed % 2);
  params.uncertain_rate = 0.2 * (seed % 2);
  params.coarse_granularity_rate = 0.25 * (seed % 2);
  auto workload =
      GenerateClinicalWorkload(params, std::make_shared<FactRegistry>());
  ASSERT_TRUE(workload.ok());

  auto first = WriteMo(workload->mo);
  ASSERT_TRUE(first.ok()) << first.status();
  auto loaded = ReadMo(*first, std::make_shared<FactRegistry>());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  auto second = WriteMo(*loaded);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second) << "seed " << seed;

  // Behavioral spot-check: group counts agree.
  CategoryTypeIndex group =
      *loaded->dimension(0).type().Find("Diagnosis Group");
  auto original_counts =
      RollUp(workload->mo, 0, group, AggFunction::SetCount());
  auto loaded_counts = RollUp(*loaded, 0, group, AggFunction::SetCount());
  ASSERT_TRUE(original_counts.ok());
  ASSERT_TRUE(loaded_counts.ok());
  EXPECT_EQ(original_counts->fact_count(), loaded_counts->fact_count());
  EXPECT_EQ(original_counts->relation(0).size(),
            loaded_counts->relation(0).size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeRoundTripTest,
                         ::testing::Range(0, 8));

TEST(SerializeTest, QuotedNamesWithSpacesAndEscapes) {
  DimensionTypeBuilder builder("Weird \"Name\" \\ dim");
  builder.AddCategory("Level One");
  Dimension dimension(std::move(builder.Build()).ValueOrDie());
  CategoryTypeIndex bottom = dimension.type().bottom();
  ASSERT_TRUE(dimension.AddValue(bottom, ValueId(1)).ok());
  ASSERT_TRUE(dimension.RepresentationFor(bottom, "Name")
                  .Set(ValueId(1), "va\"lue \\ with spaces")
                  .ok());
  auto registry = std::make_shared<FactRegistry>();
  MdObject mo("Fact \"type\"", {std::move(dimension)}, registry);
  FactId f = registry->Atom(1);
  ASSERT_TRUE(mo.AddFact(f).ok());
  ASSERT_TRUE(mo.Relate(0, f, ValueId(1)).ok());

  auto text = WriteMo(mo);
  ASSERT_TRUE(text.ok());
  auto loaded = ReadMo(*text, std::make_shared<FactRegistry>());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->schema().fact_type(), "Fact \"type\"");
  EXPECT_EQ(loaded->dimension(0).name(), "Weird \"Name\" \\ dim");
  auto rep = loaded->dimension(0).FindRepresentation(bottom, "Name");
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(*(*rep)->Get(ValueId(1)), "va\"lue \\ with spaces");
}

}  // namespace
}  // namespace io
}  // namespace mddc
