#include <gtest/gtest.h>

#include "algebra/derived.h"
#include "core/properties.h"
#include "workload/clinical_generator.h"
#include "workload/retail_generator.h"

namespace mddc {
namespace {

TEST(ClinicalGeneratorTest, GeneratesValidMo) {
  ClinicalWorkloadParams params;
  params.num_patients = 50;
  params.num_groups = 3;
  auto workload =
      GenerateClinicalWorkload(params, std::make_shared<FactRegistry>());
  ASSERT_TRUE(workload.ok()) << workload.status();
  EXPECT_EQ(workload->mo.fact_count(), 50u);
  EXPECT_TRUE(workload->mo.Validate().ok());
  EXPECT_GE(workload->num_families, 3u * 5u);
  EXPECT_GE(workload->num_low_level, workload->num_families * 5u);
}

TEST(ClinicalGeneratorTest, DeterministicForSeed) {
  ClinicalWorkloadParams params;
  params.num_patients = 20;
  params.num_groups = 2;
  auto a = GenerateClinicalWorkload(params, std::make_shared<FactRegistry>());
  auto b = GenerateClinicalWorkload(params, std::make_shared<FactRegistry>());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->mo.relation(0).size(), b->mo.relation(0).size());
  EXPECT_EQ(a->mo.dimension(0).value_count(),
            b->mo.dimension(0).value_count());
  params.seed = 43;
  auto c = GenerateClinicalWorkload(params, std::make_shared<FactRegistry>());
  ASSERT_TRUE(c.ok());
  // Different seed gives a different hierarchy (overwhelmingly likely).
  EXPECT_NE(a->mo.dimension(0).value_count(),
            c->mo.dimension(0).value_count());
}

TEST(ClinicalGeneratorTest, NonStrictnessControlled) {
  ClinicalWorkloadParams params;
  params.num_patients = 10;
  params.num_groups = 2;
  params.non_strict_rate = 0.0;
  params.reclassified_rate = 0.0;
  auto strict =
      GenerateClinicalWorkload(params, std::make_shared<FactRegistry>());
  ASSERT_TRUE(strict.ok());
  EXPECT_TRUE(IsStrict(strict->mo.dimension(0)));

  params.non_strict_rate = 0.9;
  auto loose =
      GenerateClinicalWorkload(params, std::make_shared<FactRegistry>());
  ASSERT_TRUE(loose.ok());
  EXPECT_FALSE(IsStrict(loose->mo.dimension(0)));
}

TEST(ClinicalGeneratorTest, ManyToManyPresent) {
  ClinicalWorkloadParams params;
  params.num_patients = 30;
  params.num_groups = 2;
  params.mean_extra_diagnoses = 3.0;
  auto workload =
      GenerateClinicalWorkload(params, std::make_shared<FactRegistry>());
  ASSERT_TRUE(workload.ok());
  // With mean 4 diagnoses/patient, the relation is larger than the fact
  // set: many-to-many.
  EXPECT_GT(workload->mo.relation(0).size(), workload->mo.fact_count());
}

TEST(ClinicalGeneratorTest, UncertaintyAttached) {
  ClinicalWorkloadParams params;
  params.num_patients = 50;
  params.num_groups = 2;
  params.uncertain_rate = 0.5;
  auto workload =
      GenerateClinicalWorkload(params, std::make_shared<FactRegistry>());
  ASSERT_TRUE(workload.ok());
  std::size_t uncertain = 0;
  for (const auto& entry : workload->mo.relation(0).entries()) {
    if (entry.prob < 1.0) {
      ++uncertain;
      EXPECT_GE(entry.prob, params.min_probability);
    }
  }
  EXPECT_GT(uncertain, 0u);
}

TEST(ClinicalGeneratorTest, GroupRollUpWorksAtScale) {
  ClinicalWorkloadParams params;
  params.num_patients = 100;
  params.num_groups = 4;
  auto workload =
      GenerateClinicalWorkload(params, std::make_shared<FactRegistry>());
  ASSERT_TRUE(workload.ok());
  auto counts = RollUp(workload->mo, workload->diagnosis_dim,
                       workload->group, AggFunction::SetCount());
  ASSERT_TRUE(counts.ok()) << counts.status();
  EXPECT_GT(counts->fact_count(), 0u);
  // Every group's count is at most the patient population.
  const std::size_t result_dim = counts->dimension_count() - 1;
  for (FactId group : counts->facts()) {
    auto pairs = counts->relation(result_dim).ForFact(group);
    ASSERT_FALSE(pairs.empty());
    auto value =
        counts->dimension(result_dim).NumericValueOf(pairs.front()->value);
    ASSERT_TRUE(value.ok());
    EXPECT_LE(*value, 100.0);
    EXPECT_GE(*value, 1.0);
  }
}

TEST(RetailGeneratorTest, GeneratesValidMo) {
  RetailWorkloadParams params;
  params.num_purchases = 200;
  auto workload =
      GenerateRetailWorkload(params, std::make_shared<FactRegistry>());
  ASSERT_TRUE(workload.ok()) << workload.status();
  EXPECT_EQ(workload->mo.fact_count(), 200u);
  EXPECT_EQ(workload->mo.dimension_count(), 5u);
  EXPECT_TRUE(workload->mo.Validate().ok());
}

TEST(RetailGeneratorTest, MeasuresAreSummable) {
  RetailWorkloadParams params;
  params.num_purchases = 100;
  auto workload =
      GenerateRetailWorkload(params, std::make_shared<FactRegistry>());
  ASSERT_TRUE(workload.ok());
  // SUM(amount) grouped by region: legal (Sigma) and equal to a direct
  // tally.
  auto rows = SqlAggregate(
      workload->mo,
      {SqlGroupBy{workload->store_dim, workload->region, "Name"}},
      AggFunction::Sum(workload->amount_dim));
  ASSERT_TRUE(rows.ok()) << rows.status();
  double total = 0.0;
  for (const SqlRow& row : *rows) total += row.value;

  double expected = 0.0;
  for (const auto& entry :
       workload->mo.relation(workload->amount_dim).entries()) {
    auto value = workload->mo.dimension(workload->amount_dim)
                     .NumericValueOf(entry.value);
    ASSERT_TRUE(value.ok());
    expected += *value;
  }
  EXPECT_DOUBLE_EQ(total, expected);
}

TEST(RetailGeneratorTest, ProductHierarchyIsStrict) {
  RetailWorkloadParams params;
  params.num_purchases = 50;
  auto workload =
      GenerateRetailWorkload(params, std::make_shared<FactRegistry>());
  ASSERT_TRUE(workload.ok());
  EXPECT_TRUE(IsStrict(workload->mo.dimension(workload->product_dim)));
  EXPECT_TRUE(IsPartitioning(workload->mo.dimension(workload->product_dim)));
}

}  // namespace
}  // namespace mddc
