#include <gtest/gtest.h>

#include "engine/executor.h"
#include "mdql/mdql.h"
#include "mdql/parser.h"
#include "mdql/token.h"
#include "workload/case_study.h"
#include "workload/retail_generator.h"

namespace mddc {
namespace mdql {
namespace {

TEST(MdqlTokenTest, TokenizesOperatorsAndLiterals) {
  auto tokens = Tokenize("SELECT COUNT FROM m WHERE a.b = 'x' AND v >= 3.5");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenKind> kinds;
  for (const Token& token : *tokens) kinds.push_back(token.kind);
  EXPECT_EQ(kinds,
            (std::vector<TokenKind>{
                TokenKind::kSelect, TokenKind::kCount, TokenKind::kFrom,
                TokenKind::kIdentifier, TokenKind::kWhere,
                TokenKind::kIdentifier, TokenKind::kDot,
                TokenKind::kIdentifier, TokenKind::kEq, TokenKind::kString,
                TokenKind::kAnd, TokenKind::kIdentifier, TokenKind::kGe,
                TokenKind::kNumber, TokenKind::kEnd}));
}

TEST(MdqlTokenTest, QuotedIdentifiersAndCaseInsensitiveKeywords) {
  auto tokens = Tokenize("select count from \"My Cube\"");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kSelect);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*tokens)[3].text, "My Cube");
}

TEST(MdqlTokenTest, RejectsBadInput) {
  EXPECT_FALSE(Tokenize("SELECT 'unterminated").ok());
  EXPECT_FALSE(Tokenize("SELECT @").ok());
}

TEST(MdqlParserTest, FullSelect) {
  auto statement = Parse(
      "SELECT COUNT, SUM(Amount) FROM sales "
      "BY Product.Category AS Name, Store.Region "
      "WHERE Product.Category = 'fruit' AND Amount >= 2 "
      "ASOF '01/06/1999'");
  ASSERT_TRUE(statement.ok()) << statement.status();
  ASSERT_TRUE(statement->select.has_value());
  const SelectStatement& select = *statement->select;
  ASSERT_EQ(select.aggregates.size(), 2u);
  EXPECT_EQ(select.aggregates[0].fn, AggRef::Fn::kSetCount);
  EXPECT_EQ(select.aggregates[1].fn, AggRef::Fn::kSum);
  EXPECT_EQ(select.aggregates[1].dimension, "Amount");
  ASSERT_EQ(select.group_by.size(), 2u);
  EXPECT_EQ(select.group_by[0].representation, "Name");
  EXPECT_TRUE(select.group_by[1].representation.empty());
  ASSERT_NE(select.where, nullptr);
  // "a AND b" parses to an AND node over the two atoms.
  ASSERT_EQ(select.where->kind, WhereExpr::Kind::kAnd);
  EXPECT_EQ(select.where->left->atom.kind, WhereAtom::Kind::kNameEquals);
  EXPECT_EQ(select.where->right->atom.kind,
            WhereAtom::Kind::kNumericCompare);
  ASSERT_TRUE(select.as_of.has_value());
  EXPECT_EQ(*select.as_of, "01/06/1999");
}

TEST(MdqlParserTest, ProbAtom) {
  auto statement = Parse(
      "SELECT COUNT FROM patients "
      "WHERE PROB(Diagnosis.Family = 'E10') >= 0.8");
  ASSERT_TRUE(statement.ok()) << statement.status();
  ASSERT_NE(statement->select->where, nullptr);
  ASSERT_EQ(statement->select->where->kind, WhereExpr::Kind::kAtom);
  const WhereAtom& atom = statement->select->where->atom;
  EXPECT_EQ(atom.kind, WhereAtom::Kind::kProbAtLeast);
  EXPECT_EQ(atom.text, "E10");
  EXPECT_DOUBLE_EQ(atom.number, 0.8);
}

TEST(MdqlParserTest, OrAndPrecedenceAndParens) {
  // a AND b OR c parses as (a AND b) OR c.
  auto statement = Parse(
      "SELECT COUNT FROM m WHERE x.y = 'a' AND x.y = 'b' OR x.y = 'c'");
  ASSERT_TRUE(statement.ok()) << statement.status();
  const WhereExpr& root = *statement->select->where;
  ASSERT_EQ(root.kind, WhereExpr::Kind::kOr);
  EXPECT_EQ(root.left->kind, WhereExpr::Kind::kAnd);
  EXPECT_EQ(root.right->kind, WhereExpr::Kind::kAtom);

  // Parentheses override: a AND (b OR c).
  auto grouped = Parse(
      "SELECT COUNT FROM m WHERE x.y = 'a' AND (x.y = 'b' OR x.y = 'c')");
  ASSERT_TRUE(grouped.ok()) << grouped.status();
  const WhereExpr& groot = *grouped->select->where;
  ASSERT_EQ(groot.kind, WhereExpr::Kind::kAnd);
  EXPECT_EQ(groot.right->kind, WhereExpr::Kind::kOr);

  EXPECT_FALSE(Parse("SELECT COUNT FROM m WHERE (x.y = 'a'").ok());
}

TEST(MdqlParserTest, ShowStatements) {
  auto dims = Parse("SHOW DIMENSIONS FROM patients");
  ASSERT_TRUE(dims.ok());
  ASSERT_TRUE(dims->show.has_value());
  EXPECT_EQ(dims->show->what, ShowStatement::What::kDimensions);

  auto hierarchy = Parse("SHOW HIERARCHY Diagnosis FROM patients");
  ASSERT_TRUE(hierarchy.ok());
  EXPECT_EQ(hierarchy->show->what, ShowStatement::What::kHierarchy);
  EXPECT_EQ(hierarchy->show->dimension, "Diagnosis");
}

TEST(MdqlParserTest, InsertStatement) {
  auto statement = Parse(
      "INSERT INTO patients FACT 42 "
      "(Residence.City = 'Aalborg', Diagnosis.Family = 'E10' PROB 0.8)");
  ASSERT_TRUE(statement.ok()) << statement.status();
  ASSERT_TRUE(statement->insert.has_value());
  const InsertStatement& insert = *statement->insert;
  EXPECT_EQ(insert.mo_name, "patients");
  ASSERT_EQ(insert.facts.size(), 1u);
  EXPECT_EQ(insert.facts[0].key, 42u);
  const auto& assignments = insert.facts[0].assignments;
  ASSERT_EQ(assignments.size(), 2u);
  EXPECT_EQ(assignments[0].level.dimension, "Residence");
  EXPECT_EQ(assignments[0].level.category, "City");
  EXPECT_EQ(assignments[0].text, "Aalborg");
  EXPECT_DOUBLE_EQ(assignments[0].prob, 1.0);
  EXPECT_EQ(assignments[1].text, "E10");
  EXPECT_DOUBLE_EQ(assignments[1].prob, 0.8);

  auto bulk = Parse(
      "INSERT INTO patients FACT 43 (Residence.City = 'Aalborg'), "
      "FACT 44 (Diagnosis.Family = 'E10' PROB 0.5)");
  ASSERT_TRUE(bulk.ok()) << bulk.status();
  ASSERT_TRUE(bulk->insert.has_value());
  ASSERT_EQ(bulk->insert->facts.size(), 2u);
  EXPECT_EQ(bulk->insert->facts[0].key, 43u);
  EXPECT_EQ(bulk->insert->facts[1].key, 44u);
  ASSERT_EQ(bulk->insert->facts[1].assignments.size(), 1u);
  EXPECT_DOUBLE_EQ(bulk->insert->facts[1].assignments[0].prob, 0.5);

  auto del = Parse("DELETE FROM patients FACT 42");
  ASSERT_TRUE(del.ok()) << del.status();
  ASSERT_TRUE(del->del.has_value());
  EXPECT_EQ(del->del->mo_name, "patients");
  EXPECT_EQ(del->del->key, 42u);
  EXPECT_TRUE(IsMutating(*del));
  EXPECT_EQ(StatementMoName(*del), "patients");

  EXPECT_TRUE(IsMutating(*statement));
  EXPECT_EQ(StatementMoName(*statement), "patients");
  auto select = Parse("SELECT COUNT FROM m");
  ASSERT_TRUE(select.ok());
  EXPECT_FALSE(IsMutating(*select));
}

TEST(MdqlParserTest, InsertErrors) {
  EXPECT_FALSE(Parse("INSERT patients FACT 1 (A.B = 'x')").ok());
  EXPECT_FALSE(Parse("INSERT INTO patients FACT (A.B = 'x')").ok());
  EXPECT_FALSE(Parse("INSERT INTO patients FACT 1.5 (A.B = 'x')").ok());
  EXPECT_FALSE(Parse("INSERT INTO patients FACT -3 (A.B = 'x')").ok());
  EXPECT_FALSE(Parse("INSERT INTO patients FACT 1 ()").ok());
  EXPECT_FALSE(Parse("INSERT INTO patients FACT 1 (A.B = 3)").ok());
  EXPECT_FALSE(Parse("INSERT INTO patients FACT 1 (A.B = 'x' PROB)").ok());
  EXPECT_FALSE(Parse("INSERT INTO patients FACT 1 (A.B = 'x'").ok());
}

TEST(MdqlParserTest, Errors) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("SELECT FROM m").ok());
  EXPECT_FALSE(Parse("SELECT COUNT").ok());
  EXPECT_FALSE(Parse("SELECT COUNT FROM m trailing").ok());
  EXPECT_FALSE(Parse("SELECT FOO(x) FROM m").ok());
  EXPECT_FALSE(Parse("SHOW SOMETHING FROM m").ok());
  EXPECT_FALSE(Parse("DELETE FROM m").ok());
}

class MdqlSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto cs = BuildCaseStudy();
    ASSERT_TRUE(cs.ok());
    ASSERT_TRUE(session_.Register("patients", cs->mo).ok());
    RetailWorkloadParams params;
    params.num_purchases = 500;
    auto retail =
        GenerateRetailWorkload(params, std::make_shared<FactRegistry>());
    ASSERT_TRUE(retail.ok());
    ASSERT_TRUE(session_.Register("sales", retail->mo).ok());
  }

  Session session_;
};

TEST_F(MdqlSessionTest, CountByDiagnosisGroup) {
  auto result = session_.Execute(
      "SELECT COUNT FROM patients BY Diagnosis.\"Diagnosis Group\" AS Code");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 2u);
  // Sorted by label: E1 (group 11) then O2 (group 12).
  EXPECT_EQ(result->rows[0][0], "E1");
  EXPECT_EQ(result->rows[0][1], "2");
  EXPECT_EQ(result->rows[1][0], "O2");
  EXPECT_EQ(result->rows[1][1], "1");
}

TEST_F(MdqlSessionTest, WhereByName) {
  auto result = session_.Execute(
      "SELECT COUNT FROM patients WHERE Name.Name = 'Jane Doe'");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0], "1");
}

TEST_F(MdqlSessionTest, UnknownNameYieldsEmptyResult) {
  auto result = session_.Execute(
      "SELECT COUNT FROM patients WHERE Name.Name = 'Nobody'");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->rows.empty());
}

TEST_F(MdqlSessionTest, NumericWhere) {
  auto result =
      session_.Execute("SELECT COUNT FROM patients WHERE Age >= 40");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0], "1");  // only Jane (48)
}

TEST_F(MdqlSessionTest, AsOfTimeslice) {
  // In 1975 only patient 2 had diagnoses.
  auto result = session_.Execute(
      "SELECT COUNT FROM patients ASOF '15/06/1975'");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0], "1");
}

TEST_F(MdqlSessionTest, AsOfNowSlicesAtTheNowSentinel) {
  // ASOF 'NOW' is the current state: deterministic (no clock read),
  // keeping exactly the characterizations whose valid time runs to NOW.
  auto now = session_.Execute("SELECT COUNT FROM patients ASOF 'NOW'");
  ASSERT_TRUE(now.ok()) << now.status();
  ASSERT_EQ(now->rows.size(), 1u);
  // Some 1975-era diagnoses ended at concrete chronons, so the current
  // state differs from the 1975 slice above.
  auto past = session_.Execute(
      "SELECT COUNT FROM patients ASOF '15/06/1975'");
  ASSERT_TRUE(past.ok()) << past.status();
  EXPECT_NE(now->rows[0][0], past->rows[0][0]);
  // Anything else that is not a date still fails to parse.
  EXPECT_FALSE(session_.Execute(
                           "SELECT COUNT FROM patients ASOF 'SOON'")
                   .ok());
}

TEST_F(MdqlSessionTest, OrPredicateExecutes) {
  auto result = session_.Execute(
      "SELECT COUNT FROM patients "
      "WHERE Name.Name = 'Jane Doe' OR Name.Name = 'John Doe'");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0], "2");

  // Unknown names inside an OR do not kill the whole predicate.
  auto partial = session_.Execute(
      "SELECT COUNT FROM patients "
      "WHERE Name.Name = 'Nobody' OR Name.Name = 'Jane Doe'");
  ASSERT_TRUE(partial.ok()) << partial.status();
  ASSERT_EQ(partial->rows.size(), 1u);
  EXPECT_EQ(partial->rows[0][0], "1");
}

TEST_F(MdqlSessionTest, ParenthesizedWhereExecutes) {
  auto result = session_.Execute(
      "SELECT COUNT FROM patients "
      "WHERE Age >= 40 AND (Name.Name = 'Jane Doe' OR Name.Name = 'John "
      "Doe')");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0], "1");  // only Jane is >= 40
}

TEST_F(MdqlSessionTest, MultipleAggregatesMerge) {
  auto result = session_.Execute(
      "SELECT COUNT, SUM(Amount), AVG(Price) FROM sales "
      "BY Product.Department");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->columns.size(), 4u);
  EXPECT_EQ(result->columns[1], "COUNT");
  EXPECT_EQ(result->columns[2], "SUM(Amount)");
  ASSERT_EQ(result->rows.size(), 3u);  // three departments
  for (const auto& row : result->rows) {
    ASSERT_EQ(row.size(), 4u);
    EXPECT_NE(row[1], "-");
    EXPECT_NE(row[2], "-");
    EXPECT_NE(row[3], "-");
  }
}

TEST_F(MdqlSessionTest, ParallelContextRendersIdenticalResults) {
  // The exec context reaches the ASOF timeslice and the BY aggregate
  // formation; the rendered table must not depend on it.
  const std::vector<std::string> queries = {
      "SELECT SUM(Amount), AVG(Price) FROM sales BY Product.Category",
      "SELECT COUNT FROM sales BY Store.Region",
      "SELECT COUNT FROM patients ASOF '15/06/1975'",
  };
  for (const std::string& query : queries) {
    auto sequential = session_.Execute(query);
    ASSERT_TRUE(sequential.ok()) << query << ": " << sequential.status();
    ExecContext ctx(8, /*min_facts=*/1);
    auto parallel = session_.Execute(query, &ctx);
    ASSERT_TRUE(parallel.ok()) << query << ": " << parallel.status();
    EXPECT_EQ(parallel->ToString(), sequential->ToString()) << query;
  }
}

TEST_F(MdqlSessionTest, ParallelContextCountersAdvance) {
  // Retail is strict, so the BY aggregate really runs on the engine.
  ExecContext ctx(4, /*min_facts=*/1);
  auto result = session_.Execute(
      "SELECT SUM(Amount) FROM sales BY Product.Category", &ctx);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GE(ctx.stats.parallel_runs, 1u);
}

TEST_F(MdqlSessionTest, IllegalAggregationSurfaces) {
  auto result =
      session_.Execute("SELECT SUM(Diagnosis) FROM patients");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIllegalAggregation);
}

TEST_F(MdqlSessionTest, ShowDimensions) {
  auto result = session_.Execute("SHOW DIMENSIONS FROM patients");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->rows.size(), 6u);
  std::string rendered = result->ToString();
  EXPECT_NE(rendered.find("Diagnosis"), std::string::npos);
  EXPECT_NE(rendered.find("Age"), std::string::npos);
}

TEST_F(MdqlSessionTest, ShowHierarchy) {
  auto result = session_.Execute("SHOW HIERARCHY Diagnosis FROM patients");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 4u);  // 3 levels + TOP
  EXPECT_EQ(result->rows[0][0], "Low-level Diagnosis");
  EXPECT_EQ(result->rows[0][2], "Diagnosis Family");
}

TEST_F(MdqlSessionTest, ShowPathsListsBothDobHierarchies) {
  auto result =
      session_.Execute("SHOW PATHS \"Date of Birth\" FROM patients");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 2u);
  std::vector<std::string> paths = {result->rows[0][0],
                                    result->rows[1][0]};
  std::sort(paths.begin(), paths.end());
  EXPECT_EQ(paths[0], "Day < Month < Quarter < Year < Decade < TOP");
  EXPECT_EQ(paths[1], "Day < Week < TOP");

  auto single = session_.Execute("SHOW PATHS Diagnosis FROM patients");
  ASSERT_TRUE(single.ok());
  ASSERT_EQ(single->rows.size(), 1u);
  EXPECT_EQ(single->rows[0][0],
            "Low-level Diagnosis < Diagnosis Family < Diagnosis Group < "
            "TOP");
}

TEST_F(MdqlSessionTest, UnknownMoAndDimension) {
  EXPECT_EQ(session_.Execute("SELECT COUNT FROM nope").status().code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(
      session_.Execute("SHOW HIERARCHY Nope FROM patients").ok());
  EXPECT_FALSE(session_.Execute("SELECT SUM(Nope) FROM sales").ok());
}

TEST_F(MdqlSessionTest, RegisterRejectsDuplicates) {
  auto cs = BuildCaseStudy();
  ASSERT_TRUE(cs.ok());
  EXPECT_FALSE(session_.Register("patients", cs->mo).ok());
  EXPECT_EQ(session_.names().size(), 2u);
}

TEST_F(MdqlSessionTest, InsertThenSelectSeesTheNewFact) {
  auto before = session_.Execute(
      "SELECT COUNT FROM patients WHERE Name.Name = 'Jane Doe'");
  ASSERT_TRUE(before.ok()) << before.status();
  ASSERT_EQ(before->rows[0][0], "1");

  auto ack = session_.Execute(
      "INSERT INTO patients FACT 42 (Name.Name = 'Jane Doe')");
  ASSERT_TRUE(ack.ok()) << ack.status();
  ASSERT_EQ(ack->rows.size(), 1u);
  EXPECT_EQ(ack->columns[0], "inserted");
  EXPECT_EQ(ack->rows[0][0], "1");

  auto after = session_.Execute(
      "SELECT COUNT FROM patients WHERE Name.Name = 'Jane Doe'");
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(after->rows[0][0], "2");
}

TEST_F(MdqlSessionTest, InsertResolvesNamesBeforeMutating) {
  auto count = [&] {
    auto result = session_.Execute("SELECT COUNT FROM patients");
    EXPECT_TRUE(result.ok());
    return result->rows[0][0];
  };
  const std::string before = count();
  // The second assignment fails to resolve; the first must not have
  // been applied.
  auto result = session_.Execute(
      "INSERT INTO patients FACT 43 "
      "(Name.Name = 'Jane Doe', Name.Name = 'No Such Person')");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(count(), before);
  // Out-of-range probabilities are rejected too.
  EXPECT_FALSE(session_
                   .Execute("INSERT INTO patients FACT 43 "
                            "(Name.Name = 'Jane Doe' PROB 2)")
                   .ok());
  EXPECT_EQ(count(), before);
}

TEST_F(MdqlSessionTest, ProbabilityThreshold) {
  // Build a small uncertain MO inline.
  auto cs = BuildCaseStudy();
  ASSERT_TRUE(cs.ok());
  MdObject cohort("Patient", {cs->mo.dimension(cs->diagnosis)}, cs->registry,
                  TemporalType::kSnapshot);
  FactId sure = cs->registry->Atom(50);
  FactId unsure = cs->registry->Atom(51);
  ASSERT_TRUE(cohort.AddFact(sure).ok());
  ASSERT_TRUE(cohort.AddFact(unsure).ok());
  ASSERT_TRUE(cohort.Relate(0, sure, ValueId(9)).ok());
  ASSERT_TRUE(
      cohort.Relate(0, unsure, ValueId(9), Lifespan::AlwaysSpan(), 0.6)
          .ok());
  ASSERT_TRUE(session_.Register("cohort", std::move(cohort)).ok());
  auto result = session_.Execute(
      "SELECT COUNT FROM cohort "
      "WHERE PROB(Diagnosis.\"Diagnosis Family\" = 'E10') >= 0.9");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0], "1");
}

}  // namespace
}  // namespace mdql
}  // namespace mddc
