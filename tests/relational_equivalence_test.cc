#include <gtest/gtest.h>

#include <random>

#include "relational/translation.h"

// Theorem 2 ("the algebra is at least as powerful as Klug's relational
// algebra with aggregation"), demonstrated constructively: every
// relational operator applied to an instance must produce exactly the
// same relation as its simulation through the multidimensional algebra
// (encode as MO, run MD operators only, decode).

namespace mddc {
namespace relational {
namespace {

Value I(std::int64_t v) { return Value(v); }
Value S(std::string v) { return Value(std::move(v)); }

Relation Sales() {
  Relation r({"product", "region", "amount"});
  (void)r.Insert({S("apples"), S("North"), I(10)});
  (void)r.Insert({S("apples"), S("South"), I(20)});
  (void)r.Insert({S("pears"), S("North"), I(5)});
  (void)r.Insert({S("pears"), S("South"), I(15)});
  (void)r.Insert({S("plums"), S("North"), I(7)});
  return r;
}

TEST(RelationalEquivalenceTest, EncodeDecodeRoundTrip) {
  Relation r = Sales();
  auto registry = std::make_shared<FactRegistry>();
  TupleInterner interner;
  auto encoded = MdFromRelation(r, registry, interner);
  ASSERT_TRUE(encoded.ok()) << encoded.status();
  auto decoded = RelationFromMd(*encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, r);
}

TEST(RelationalEquivalenceTest, NullsRoundTripThroughTopValue) {
  Relation r({"a", "b"});
  (void)r.Insert({I(1), Value::Null()});
  (void)r.Insert({Value::Null(), S("x")});
  auto registry = std::make_shared<FactRegistry>();
  TupleInterner interner;
  auto encoded = MdFromRelation(r, registry, interner);
  ASSERT_TRUE(encoded.ok());
  auto decoded = RelationFromMd(*encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, r);
}

TEST(RelationalEquivalenceTest, SelectSimulations) {
  Relation r = Sales();
  for (Condition c : {Condition{"amount", Condition::Op::kGt, I(9)},
                      Condition{"amount", Condition::Op::kLe, I(10)},
                      Condition{"amount", Condition::Op::kEq, I(7)},
                      Condition{"region", Condition::Op::kEq, S("North")},
                      Condition{"region", Condition::Op::kNe, S("North")}}) {
    auto expected = Select(r, c);
    auto simulated = SimulateSelect(r, c);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(simulated.ok()) << simulated.status();
    EXPECT_EQ(*simulated, *expected)
        << "condition on " << c.attribute << "\nexpected:\n"
        << expected->ToString() << "simulated:\n" << simulated->ToString();
  }
}

TEST(RelationalEquivalenceTest, ProjectSimulation) {
  Relation r = Sales();
  for (const std::vector<std::string>& attrs :
       {std::vector<std::string>{"region"},
        std::vector<std::string>{"product", "region"},
        std::vector<std::string>{"amount", "product"}}) {
    auto expected = Project(r, attrs);
    auto simulated = SimulateProject(r, attrs);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(simulated.ok()) << simulated.status();
    EXPECT_EQ(*simulated, *expected);
  }
}

TEST(RelationalEquivalenceTest, UnionAndDifferenceSimulations) {
  Relation r = Sales();
  Relation s({"product", "region", "amount"});
  (void)s.Insert({S("apples"), S("North"), I(10)});  // shared with r
  (void)s.Insert({S("figs"), S("South"), I(3)});

  auto expected_union = Union(r, s);
  auto simulated_union = SimulateUnion(r, s);
  ASSERT_TRUE(simulated_union.ok()) << simulated_union.status();
  EXPECT_EQ(*simulated_union, *expected_union);

  auto expected_diff = Difference(r, s);
  auto simulated_diff = SimulateDifference(r, s);
  ASSERT_TRUE(simulated_diff.ok()) << simulated_diff.status();
  EXPECT_EQ(*simulated_diff, *expected_diff);
}

TEST(RelationalEquivalenceTest, ProductSimulation) {
  Relation r({"a"});
  (void)r.Insert({I(1)});
  (void)r.Insert({I(2)});
  Relation s({"b"});
  (void)s.Insert({S("x")});
  (void)s.Insert({S("y")});
  auto expected = Product(r, s);
  auto simulated = SimulateProduct(r, s);
  ASSERT_TRUE(simulated.ok()) << simulated.status();
  EXPECT_EQ(*simulated, *expected);
}

TEST(RelationalEquivalenceTest, AggregateSimulations) {
  Relation r = Sales();
  struct Case {
    std::vector<std::string> group_by;
    AggregateTerm term;
  };
  for (const Case& c :
       {Case{{"region"}, {AggregateTerm::Func::kCountStar, "", "n"}},
        Case{{"region"}, {AggregateTerm::Func::kSum, "amount", "total"}},
        Case{{"product"}, {AggregateTerm::Func::kMax, "amount", "hi"}},
        Case{{"product"}, {AggregateTerm::Func::kMin, "amount", "lo"}},
        Case{{"region"}, {AggregateTerm::Func::kAvg, "amount", "mean"}},
        Case{{}, {AggregateTerm::Func::kSum, "amount", "total"}}}) {
    auto expected = Aggregate(r, c.group_by, {c.term});
    auto simulated = SimulateAggregate(r, c.group_by, c.term);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(simulated.ok()) << simulated.status();
    // The relational engine returns SUM as double while COUNT returns
    // int; Value equality unifies numerics, so direct comparison works.
    EXPECT_EQ(*simulated, *expected)
        << "expected:\n" << expected->ToString() << "simulated:\n"
        << simulated->ToString();
  }
}

TEST(RelationalEquivalenceTest, SelectAttrEqSimulation) {
  Relation r({"a", "b"});
  (void)r.Insert({I(1), I(1)});
  (void)r.Insert({I(1), I(2)});
  (void)r.Insert({I(3), I(3)});
  (void)r.Insert({Value::Null(), Value::Null()});  // nulls never match
  auto expected = SelectAttrEq(r, "a", "b");
  auto simulated = SimulateSelectAttrEq(r, "a", "b");
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(simulated.ok()) << simulated.status();
  EXPECT_EQ(*simulated, *expected);
  EXPECT_EQ(expected->size(), 2u);
}

TEST(RelationalEquivalenceTest, EquiJoinSimulation) {
  Relation r({"id", "area"});
  (void)r.Insert({I(1), S("North")});
  (void)r.Insert({I(2), S("South")});
  (void)r.Insert({I(3), S("East")});
  Relation s({"region", "pop"});
  (void)s.Insert({S("North"), I(100)});
  (void)s.Insert({S("South"), I(200)});
  (void)s.Insert({S("West"), I(300)});
  auto expected = EquiJoin(r, s, {{"area", "region"}});
  auto simulated = SimulateEquiJoin(r, s, "area", "region");
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(simulated.ok()) << simulated.status();
  EXPECT_EQ(*simulated, *expected)
      << "expected:\n" << expected->ToString() << "simulated:\n"
      << simulated->ToString();
  EXPECT_EQ(expected->size(), 2u);
}

TEST(RelationalEquivalenceTest, EquiJoinSimulationWithClashingNames) {
  Relation r({"k", "v"});
  (void)r.Insert({I(1), S("x")});
  (void)r.Insert({I(2), S("y")});
  Relation s({"k", "w"});
  (void)s.Insert({I(1), S("p")});
  (void)s.Insert({I(3), S("q")});
  auto expected = EquiJoin(r, s, {{"k", "k"}});
  auto simulated = SimulateEquiJoin(r, s, "k", "k");
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(simulated.ok()) << simulated.status();
  EXPECT_EQ(*simulated, *expected);
  EXPECT_EQ(expected->size(), 1u);
}

// Randomized sweep: selections, projections, unions, differences and
// aggregates agree on random instances.
class EquivalencePropertyTest : public ::testing::TestWithParam<int> {};

Relation RandomRelation(std::mt19937& rng, std::size_t rows) {
  Relation r({"k", "g", "v"});
  std::uniform_int_distribution<int> key(0, 30);
  std::uniform_int_distribution<int> group(0, 3);
  std::uniform_int_distribution<int> value(0, 100);
  const char* kGroups[] = {"a", "b", "c", "d"};
  for (std::size_t i = 0; i < rows; ++i) {
    (void)r.Insert(
        {I(key(rng)), S(kGroups[group(rng)]), I(value(rng))});
  }
  return r;
}

TEST_P(EquivalencePropertyTest, RandomInstancesAgree) {
  std::mt19937 rng(GetParam());
  Relation r = RandomRelation(rng, 25);
  Relation s = RandomRelation(rng, 25);

  Condition c{"v", Condition::Op::kGe, I(50)};
  EXPECT_EQ(*SimulateSelect(r, c), *Select(r, c));

  std::vector<std::string> attrs{"g"};
  EXPECT_EQ(*SimulateProject(r, attrs), *Project(r, attrs));

  EXPECT_EQ(*SimulateUnion(r, s), *Union(r, s));
  EXPECT_EQ(*SimulateDifference(r, s), *Difference(r, s));

  AggregateTerm sum{AggregateTerm::Func::kSum, "v", "total"};
  EXPECT_EQ(*SimulateAggregate(r, {"g"}, sum), *Aggregate(r, {"g"}, {sum}));
  AggregateTerm count{AggregateTerm::Func::kCountStar, "", "n"};
  EXPECT_EQ(*SimulateAggregate(r, {"g"}, count),
            *Aggregate(r, {"g"}, {count}));

  // Attribute-to-attribute selection on random instances (k vs v are
  // both ints, occasionally equal).
  EXPECT_EQ(*SimulateSelectAttrEq(r, "k", "v"), *SelectAttrEq(r, "k", "v"));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalencePropertyTest,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace relational
}  // namespace mddc
