#include <gtest/gtest.h>

#include "algebra/operators.h"
#include "fixtures.h"

namespace mddc {
namespace {

using testing_fixtures::BuildDiagnosisDimension;
using testing_fixtures::BuildPatientDiagnosisMo;
using testing_fixtures::Day;
using testing_fixtures::During;

TEST(SelectTest, TruePredicateIsIdentityOnFacts) {
  MdObject mo = BuildPatientDiagnosisMo();
  auto selected = Select(mo, Predicate::True());
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected->facts(), mo.facts());
  EXPECT_EQ(selected->relation(0).size(), mo.relation(0).size());
  EXPECT_TRUE(selected->schema().EquivalentTo(mo.schema()));
}

TEST(SelectTest, CharacterizedByRestrictsFacts) {
  MdObject mo = BuildPatientDiagnosisMo();
  // Only patient 2 is characterized by low-level diagnosis 5.
  auto selected = Select(mo, Predicate::CharacterizedBy(0, ValueId(5)));
  ASSERT_TRUE(selected.ok());
  ASSERT_EQ(selected->fact_count(), 1u);
  EXPECT_EQ(selected->facts()[0], mo.registry()->Atom(2));
  // The relation was restricted to the surviving fact.
  for (const auto& entry : selected->relation(0).entries()) {
    EXPECT_EQ(entry.fact, mo.registry()->Atom(2));
  }
}

TEST(SelectTest, SelectionThroughHierarchy) {
  MdObject mo = BuildPatientDiagnosisMo();
  // Both patients are (eventually) characterized by diagnosis group 11.
  auto selected = Select(mo, Predicate::CharacterizedBy(0, ValueId(11)));
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected->fact_count(), 2u);
}

TEST(SelectTest, TemporalPredicate) {
  MdObject mo = BuildPatientDiagnosisMo();
  // At 15/06/75 only patient 2 had any diagnosis (patient 1's pair
  // starts 1989).
  auto selected = Select(
      mo, Predicate::CharacterizedByAt(0, ValueId(8), Day("15/06/75")));
  ASSERT_TRUE(selected.ok());
  ASSERT_EQ(selected->fact_count(), 1u);
  EXPECT_EQ(selected->facts()[0], mo.registry()->Atom(2));
}

TEST(SelectTest, NegationAndConjunction) {
  MdObject mo = BuildPatientDiagnosisMo();
  Predicate in_group_11 = Predicate::CharacterizedBy(0, ValueId(11));
  Predicate has_5 = Predicate::CharacterizedBy(0, ValueId(5));
  auto selected = Select(mo, in_group_11.And(has_5.Not()));
  ASSERT_TRUE(selected.ok());
  ASSERT_EQ(selected->fact_count(), 1u);
  EXPECT_EQ(selected->facts()[0], mo.registry()->Atom(1));
}

TEST(SelectTest, RepresentationPredicate) {
  MdObject mo = BuildPatientDiagnosisMo();
  CategoryTypeIndex family = *mo.dimension(0).type().Find("Diagnosis Family");
  // "E10" names family 9 from 1980 on; both patients carry diagnosis 9.
  auto selected = Select(mo, Predicate::RepresentationEquals(
                                 0, family, "Code", "E10", Day("01/01/99")));
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected->fact_count(), 2u);
  // An unknown code matches nothing.
  auto none = Select(mo, Predicate::RepresentationEquals(0, family, "Code",
                                                         "ZZZ"));
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none->fact_count(), 0u);
}

TEST(SelectTest, ProbabilityThreshold) {
  auto registry = std::make_shared<FactRegistry>();
  MdObject mo("Patient", {BuildDiagnosisDimension()}, registry);
  FactId p1 = registry->Atom(1);
  FactId p2 = registry->Atom(2);
  ASSERT_TRUE(mo.AddFact(p1).ok());
  ASSERT_TRUE(mo.AddFact(p2).ok());
  ASSERT_TRUE(mo.Relate(0, p1, ValueId(9), Lifespan{}, 0.9).ok());
  ASSERT_TRUE(mo.Relate(0, p2, ValueId(9), Lifespan{}, 0.5).ok());
  auto confident =
      Select(mo, Predicate::MinProbability(0, ValueId(9), 0.8));
  ASSERT_TRUE(confident.ok());
  ASSERT_EQ(confident->fact_count(), 1u);
  EXPECT_EQ(confident->facts()[0], p1);
}

TEST(ProjectTest, KeepsRequestedDimensions) {
  auto registry = std::make_shared<FactRegistry>();
  DimensionTypeBuilder name_builder("Name");
  name_builder.AddCategory("Name");
  Dimension name_dim(std::move(name_builder.Build()).ValueOrDie());
  CategoryTypeIndex name_cat = *name_dim.type().Find("Name");
  ASSERT_TRUE(name_dim.AddValue(name_cat, ValueId(500)).ok());

  MdObject mo("Patient", {BuildDiagnosisDimension(), name_dim}, registry);
  FactId p1 = registry->Atom(1);
  ASSERT_TRUE(mo.AddFact(p1).ok());
  ASSERT_TRUE(mo.Relate(0, p1, ValueId(9)).ok());
  ASSERT_TRUE(mo.Relate(1, p1, ValueId(500)).ok());

  auto projected = Project(mo, {1});
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected->dimension_count(), 1u);
  EXPECT_EQ(projected->dimension(0).name(), "Name");
  // The set of facts stays the same ("we do not remove duplicate
  // values").
  EXPECT_EQ(projected->fact_count(), 1u);

  // Reordering works too.
  auto reordered = Project(mo, {1, 0});
  ASSERT_TRUE(reordered.ok());
  EXPECT_EQ(reordered->dimension(0).name(), "Name");
  EXPECT_EQ(reordered->dimension(1).name(), "Diagnosis");
}

TEST(ProjectTest, RejectsBadArguments) {
  MdObject mo = BuildPatientDiagnosisMo();
  EXPECT_FALSE(Project(mo, {}).ok());
  EXPECT_FALSE(Project(mo, {3}).ok());
  EXPECT_FALSE(Project(mo, {0, 0}).ok());
}

TEST(RenameTest, RenamesSchemaOnly) {
  MdObject mo = BuildPatientDiagnosisMo();
  auto renamed = Rename(mo, RenameSpec{"Case", {"Diagnosis2"}});
  ASSERT_TRUE(renamed.ok());
  EXPECT_EQ(renamed->schema().fact_type(), "Case");
  EXPECT_EQ(renamed->dimension(0).name(), "Diagnosis2");
  EXPECT_EQ(renamed->facts(), mo.facts());
  EXPECT_EQ(renamed->relation(0).size(), mo.relation(0).size());
}

TEST(RenameTest, EmptyEntriesKeepNames) {
  MdObject mo = BuildPatientDiagnosisMo();
  auto renamed = Rename(mo, RenameSpec{"", {""}});
  ASSERT_TRUE(renamed.ok());
  EXPECT_EQ(renamed->schema().fact_type(), "Patient");
  EXPECT_EQ(renamed->dimension(0).name(), "Diagnosis");
}

TEST(RenameTest, RejectsArityMismatch) {
  MdObject mo = BuildPatientDiagnosisMo();
  EXPECT_FALSE(Rename(mo, RenameSpec{"X", {"a", "b"}}).ok());
}

TEST(UnionTest, MergesFactsAndPairTimes) {
  auto registry = std::make_shared<FactRegistry>();
  MdObject m1("Patient", {BuildDiagnosisDimension()}, registry,
              TemporalType::kValidTime);
  MdObject m2("Patient", {BuildDiagnosisDimension()}, registry,
              TemporalType::kValidTime);
  FactId p1 = registry->Atom(1);
  FactId p2 = registry->Atom(2);
  ASSERT_TRUE(m1.AddFact(p1).ok());
  ASSERT_TRUE(m1.Relate(0, p1, ValueId(9), During("[01/01/80-31/12/84]")).ok());
  ASSERT_TRUE(m2.AddFact(p1).ok());
  ASSERT_TRUE(m2.Relate(0, p1, ValueId(9), During("[01/01/85-NOW]")).ok());
  ASSERT_TRUE(m2.AddFact(p2).ok());
  ASSERT_TRUE(m2.Relate(0, p2, ValueId(5), During("[01/01/82-NOW]")).ok());

  auto merged = Union(m1, m2);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->fact_count(), 2u);
  // The common pair (p1, 9) has the union of the two chronon sets.
  auto pairs = merged->relation(0).ForFact(p1);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_TRUE(pairs[0]->life.valid.Contains(Day("15/06/82")));
  EXPECT_TRUE(pairs[0]->life.valid.Contains(Day("15/06/99")));
}

TEST(UnionTest, RejectsSchemaMismatch) {
  auto registry = std::make_shared<FactRegistry>();
  MdObject m1("Patient", {BuildDiagnosisDimension()}, registry);
  DimensionTypeBuilder other("Other");
  other.AddCategory("X");
  MdObject m2("Patient", {Dimension(std::move(other.Build()).ValueOrDie())},
              registry);
  EXPECT_EQ(Union(m1, m2).status().code(), StatusCode::kSchemaMismatch);
}

TEST(UnionTest, RejectsSeparateRegistries) {
  MdObject m1 = BuildPatientDiagnosisMo();
  MdObject m2 = BuildPatientDiagnosisMo();
  EXPECT_FALSE(Union(m1, m2).ok());
}

TEST(DifferenceTest, SnapshotRemovesSharedFacts) {
  auto registry = std::make_shared<FactRegistry>();
  MdObject m1("Patient", {BuildDiagnosisDimension()}, registry);
  MdObject m2("Patient", {BuildDiagnosisDimension()}, registry);
  FactId p1 = registry->Atom(1);
  FactId p2 = registry->Atom(2);
  ASSERT_TRUE(m1.AddFact(p1).ok());
  ASSERT_TRUE(m1.AddFact(p2).ok());
  ASSERT_TRUE(m1.Relate(0, p1, ValueId(9)).ok());
  ASSERT_TRUE(m1.Relate(0, p2, ValueId(5)).ok());
  ASSERT_TRUE(m2.AddFact(p2).ok());
  ASSERT_TRUE(m2.Relate(0, p2, ValueId(5)).ok());

  auto diff = Difference(m1, m2);
  ASSERT_TRUE(diff.ok());
  ASSERT_EQ(diff->fact_count(), 1u);
  EXPECT_EQ(diff->facts()[0], p1);
  // M1's dimensions are retained unchanged.
  EXPECT_TRUE(diff->dimension(0).HasValue(ValueId(5)));
}

TEST(DifferenceTest, TemporalRuleCutsPairTimes) {
  auto registry = std::make_shared<FactRegistry>();
  MdObject m1("Patient", {BuildDiagnosisDimension()}, registry,
              TemporalType::kValidTime);
  MdObject m2("Patient", {BuildDiagnosisDimension()}, registry,
              TemporalType::kValidTime);
  FactId p1 = registry->Atom(1);
  ASSERT_TRUE(m1.AddFact(p1).ok());
  ASSERT_TRUE(m1.Relate(0, p1, ValueId(9), During("[01/01/80-31/12/89]")).ok());
  ASSERT_TRUE(m2.AddFact(p1).ok());
  ASSERT_TRUE(m2.Relate(0, p1, ValueId(9), During("[01/01/85-NOW]")).ok());

  auto diff = Difference(m1, m2);
  ASSERT_TRUE(diff.ok());
  ASSERT_EQ(diff->fact_count(), 1u);
  auto pairs = diff->relation(0).ForFact(p1);
  ASSERT_EQ(pairs.size(), 1u);
  // [80-89] minus [85-NOW] leaves [80-84].
  EXPECT_TRUE(pairs[0]->life.valid.Contains(Day("15/06/82")));
  EXPECT_FALSE(pairs[0]->life.valid.Contains(Day("15/06/86")));
}

TEST(DifferenceTest, TemporalFullCutRemovesFact) {
  auto registry = std::make_shared<FactRegistry>();
  MdObject m1("Patient", {BuildDiagnosisDimension()}, registry,
              TemporalType::kValidTime);
  MdObject m2("Patient", {BuildDiagnosisDimension()}, registry,
              TemporalType::kValidTime);
  FactId p1 = registry->Atom(1);
  ASSERT_TRUE(m1.AddFact(p1).ok());
  ASSERT_TRUE(m1.Relate(0, p1, ValueId(9), During("[01/01/85-31/12/89]")).ok());
  ASSERT_TRUE(m2.AddFact(p1).ok());
  ASSERT_TRUE(m2.Relate(0, p1, ValueId(9), During("[01/01/80-NOW]")).ok());
  auto diff = Difference(m1, m2);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff->fact_count(), 0u);
}

TEST(JoinTest, CartesianProductBuildsPairFacts) {
  auto registry = std::make_shared<FactRegistry>();
  MdObject m1("Patient", {BuildDiagnosisDimension()}, registry);
  MdObject m2 = *Rename(
      [&] {
        MdObject inner("Visit", {BuildDiagnosisDimension()}, registry);
        FactId v1 = registry->Atom(100);
        (void)inner.AddFact(v1);
        (void)inner.Relate(0, v1, ValueId(5));
        return inner;
      }(),
      RenameSpec{"", {"Diagnosis2"}});
  FactId p1 = registry->Atom(1);
  FactId p2 = registry->Atom(2);
  ASSERT_TRUE(m1.AddFact(p1).ok());
  ASSERT_TRUE(m1.AddFact(p2).ok());
  ASSERT_TRUE(m1.Relate(0, p1, ValueId(9)).ok());
  ASSERT_TRUE(m1.Relate(0, p2, ValueId(3)).ok());

  auto joined = Join(m1, m2, JoinPredicate::kTrue);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->fact_count(), 2u);  // 2 x 1 pairs
  EXPECT_EQ(joined->dimension_count(), 2u);
  EXPECT_EQ(joined->schema().fact_type(), "(Patient,Visit)");
  // Pair facts inherit the members' characterizations.
  FactId pair = registry->Pair(p1, registry->Atom(100));
  EXPECT_TRUE(joined->HasFact(pair));
  auto pairs_dim0 = joined->relation(0).ForFact(pair);
  ASSERT_EQ(pairs_dim0.size(), 1u);
  EXPECT_EQ(pairs_dim0[0]->value, ValueId(9));
  auto pairs_dim1 = joined->relation(1).ForFact(pair);
  ASSERT_EQ(pairs_dim1.size(), 1u);
  EXPECT_EQ(pairs_dim1[0]->value, ValueId(5));
}

TEST(JoinTest, EquiJoinPairsIdenticalFacts) {
  auto registry = std::make_shared<FactRegistry>();
  MdObject m1("Patient", {BuildDiagnosisDimension()}, registry);
  MdObject m2("Patient", {BuildDiagnosisDimension().RenamedAs("Diagnosis2")},
              registry);
  FactId p1 = registry->Atom(1);
  FactId p2 = registry->Atom(2);
  ASSERT_TRUE(m1.AddFact(p1).ok());
  ASSERT_TRUE(m1.Relate(0, p1, ValueId(9)).ok());
  ASSERT_TRUE(m2.AddFact(p1).ok());
  ASSERT_TRUE(m2.Relate(0, p1, ValueId(5)).ok());
  ASSERT_TRUE(m2.AddFact(p2).ok());
  ASSERT_TRUE(m2.Relate(0, p2, ValueId(6)).ok());

  auto joined = Join(m1, m2, JoinPredicate::kEqual);
  ASSERT_TRUE(joined.ok());
  ASSERT_EQ(joined->fact_count(), 1u);
  EXPECT_TRUE(joined->HasFact(registry->Pair(p1, p1)));

  auto anti = Join(m1, m2, JoinPredicate::kNotEqual);
  ASSERT_TRUE(anti.ok());
  ASSERT_EQ(anti->fact_count(), 1u);
  EXPECT_TRUE(anti->HasFact(registry->Pair(p1, p2)));
}

TEST(JoinTest, RejectsDuplicateDimensionNames) {
  auto registry = std::make_shared<FactRegistry>();
  MdObject m1("A", {BuildDiagnosisDimension()}, registry);
  MdObject m2("B", {BuildDiagnosisDimension()}, registry);
  auto joined = Join(m1, m2, JoinPredicate::kTrue);
  ASSERT_FALSE(joined.ok());
  EXPECT_NE(joined.status().message().find("rename"), std::string::npos);
}

}  // namespace
}  // namespace mddc
