#include <gtest/gtest.h>

#include "algebra/operators.h"
#include "common/date.h"
#include "core/properties.h"
#include "workload/case_study.h"

// One test per numbered example in the paper, executed against the
// canonical case-study MO. These are the ground-truth anchors of the
// reproduction.

namespace mddc {
namespace {

Chronon Day(const std::string& text) { return *ParseDate(text); }

class PaperExamplesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto built = BuildCaseStudy();
    ASSERT_TRUE(built.ok()) << built.status();
    cs_ = std::make_unique<CaseStudy>(*std::move(built));
  }

  std::unique_ptr<CaseStudy> cs_;
};

TEST_F(PaperExamplesTest, Example1_FactAndDimensionTypes) {
  // "Patient as the fact type, and Diagnosis, Residence, Age, DOB, Name,
  // and SSN as the dimension types."
  const FactSchema& schema = cs_->mo.schema();
  EXPECT_EQ(schema.fact_type(), "Patient");
  EXPECT_EQ(schema.dimension_count(), 6u);
  for (const char* name :
       {"Diagnosis", "Residence", "Age", "Date of Birth", "Name", "SSN"}) {
    EXPECT_TRUE(schema.Find(name).ok()) << name;
  }
}

TEST_F(PaperExamplesTest, Example2_DiagnosisCategoryOrder) {
  // Low-level Diagnosis < Diagnosis Family < Diagnosis Group < TOP, and
  // Pred(Low-level Diagnosis) = {Diagnosis Family}.
  const DimensionType& type = cs_->mo.dimension(cs_->diagnosis).type();
  CategoryTypeIndex low = *type.Find("Low-level Diagnosis");
  CategoryTypeIndex family = *type.Find("Diagnosis Family");
  CategoryTypeIndex group = *type.Find("Diagnosis Group");
  EXPECT_EQ(type.bottom(), low);
  EXPECT_TRUE(type.LessEq(low, family));
  EXPECT_TRUE(type.LessEq(family, group));
  EXPECT_TRUE(type.LessEq(group, type.top()));
  ASSERT_EQ(type.Pred(low).size(), 1u);
  EXPECT_EQ(type.Pred(low)[0], family);
}

TEST_F(PaperExamplesTest, Example3_AggregationTypes) {
  // AggType(Low-level Diagnosis) = c, AggType(Age) = Sigma,
  // AggType(DOB day) = phi.
  const DimensionType& diagnosis = cs_->mo.dimension(cs_->diagnosis).type();
  EXPECT_EQ(diagnosis.AggType(diagnosis.bottom()),
            AggregationType::kConstant);
  const DimensionType& age = cs_->mo.dimension(cs_->age).type();
  EXPECT_EQ(age.AggType(age.bottom()), AggregationType::kSum);
  const DimensionType& dob = cs_->mo.dimension(cs_->dob).type();
  EXPECT_EQ(dob.AggType(dob.bottom()), AggregationType::kAverage);
}

TEST_F(PaperExamplesTest, Example4_DiagnosisCategories) {
  // Low-level = {3,5,6}, Family = {4,7,8,9,10}, Group = {11,12}, TOP = {T}.
  const Dimension& diagnosis = cs_->mo.dimension(cs_->diagnosis);
  const DimensionType& type = diagnosis.type();
  auto ids_in = [&](const char* category) {
    std::vector<std::uint64_t> ids;
    for (ValueId value : diagnosis.ValuesIn(*type.Find(category))) {
      ids.push_back(value.raw());
    }
    std::sort(ids.begin(), ids.end());
    return ids;
  };
  EXPECT_EQ(ids_in("Low-level Diagnosis"),
            (std::vector<std::uint64_t>{3, 5, 6}));
  EXPECT_EQ(ids_in("Diagnosis Family"),
            (std::vector<std::uint64_t>{4, 7, 8, 9, 10}));
  EXPECT_EQ(ids_in("Diagnosis Group"), (std::vector<std::uint64_t>{11, 12}));
  EXPECT_EQ(diagnosis.ValuesIn(type.top()).size(), 1u);
}

TEST_F(PaperExamplesTest, Example5_Subdimension) {
  // Removing Low-level and Family retains only Group and TOP.
  const Dimension& diagnosis = cs_->mo.dimension(cs_->diagnosis);
  CategoryTypeIndex group = *diagnosis.type().Find("Diagnosis Group");
  auto sub = diagnosis.Subdimension({group, diagnosis.type().top()});
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->type().category_count(), 2u);
  EXPECT_TRUE(sub->HasValue(ValueId(11)));
  EXPECT_TRUE(sub->HasValue(ValueId(12)));
  EXPECT_FALSE(sub->HasValue(ValueId(3)));
}

TEST_F(PaperExamplesTest, Example6_Representations) {
  // Code(3) = "P11" (during the 70s) and Text carries the description.
  // (The paper's Example 6 quotes the post-1980 recoding O24; value 3's
  // Table 1 code is P11.)
  const Dimension& diagnosis = cs_->mo.dimension(cs_->diagnosis);
  CategoryTypeIndex low = *diagnosis.type().Find("Low-level Diagnosis");
  auto code = diagnosis.FindRepresentation(low, "Code");
  ASSERT_TRUE(code.ok());
  auto p11 = (*code)->Get(ValueId(3), Day("15/06/75"));
  ASSERT_TRUE(p11.ok());
  EXPECT_EQ(*p11, "P11");
  auto text = diagnosis.FindRepresentation(low, "Text");
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*(*text)->Get(ValueId(3), Day("15/06/75")),
            "Diabetes, pregnancy");
  // Inverse direction: the representation is an alternate key.
  EXPECT_EQ(*(*code)->Lookup("P11", Day("15/06/75")), ValueId(3));
}

TEST_F(PaperExamplesTest, Example7_FactDimensionRelation) {
  // R = {(1,9), (2,3), (2,5), (2,8), (2,9)}; fact 1 is related to a
  // *family*-level value (mixed granularity), and an unknown diagnosis
  // would be recorded as (f, T).
  const FactDimRelation& has = cs_->mo.relation(cs_->diagnosis);
  EXPECT_EQ(has.size(), 5u);
  std::set<std::pair<std::uint64_t, std::uint64_t>> pairs;
  for (const auto& entry : has.entries()) {
    auto term = cs_->registry->Get(entry.fact);
    ASSERT_TRUE(term.ok());
    pairs.emplace(term->atom, entry.value.raw());
  }
  std::set<std::pair<std::uint64_t, std::uint64_t>> expected = {
      {1, 9}, {2, 3}, {2, 5}, {2, 8}, {2, 9}};
  EXPECT_EQ(pairs, expected);
}

TEST_F(PaperExamplesTest, Example8_PatientMoShape) {
  // Six-dimensional MO, F = {1, 2}; Name and SSN are simple dimensions;
  // Age groups into five- and ten-year groups; DOB has two hierarchies.
  EXPECT_EQ(cs_->mo.fact_count(), 2u);
  const DimensionType& name = cs_->mo.dimension(cs_->name).type();
  EXPECT_EQ(name.category_count(), 2u);
  const DimensionType& ssn = cs_->mo.dimension(cs_->ssn).type();
  EXPECT_EQ(ssn.category_count(), 2u);
  const DimensionType& age = cs_->mo.dimension(cs_->age).type();
  EXPECT_TRUE(age.Find("Five-year Group").ok());
  EXPECT_TRUE(age.Find("Ten-year Group").ok());
  const DimensionType& dob = cs_->mo.dimension(cs_->dob).type();
  EXPECT_EQ(dob.Pred(dob.bottom()).size(), 2u);
}

TEST_F(PaperExamplesTest, Example9_TemporalAttachments) {
  // (2,3) in R during [23/03/75-24/12/75]; 10 in Diagnosis Family during
  // [01/01/80-NOW]; 3 <= 7 during [01/01/70-31/12/79]; Code(8) = "D1"
  // during [01/01/70-31/12/79] (membership is from 01/10/70).
  const Dimension& diagnosis = cs_->mo.dimension(cs_->diagnosis);
  FactId p2 = cs_->registry->Atom(2);
  bool found_pair = false;
  for (const auto* entry : cs_->mo.relation(cs_->diagnosis).ForFact(p2)) {
    if (entry->value == ValueId(3)) {
      found_pair = true;
      EXPECT_TRUE(entry->life.valid.Contains(Day("15/06/75")));
      EXPECT_FALSE(entry->life.valid.Contains(Day("15/06/76")));
    }
  }
  EXPECT_TRUE(found_pair);

  auto membership = diagnosis.MembershipOf(ValueId(10));
  ASSERT_TRUE(membership.ok());
  EXPECT_TRUE(membership->valid.Contains(Day("01/01/99")));
  EXPECT_FALSE(membership->valid.Contains(Day("01/01/79")));

  EXPECT_TRUE(diagnosis.LessEqAt(ValueId(3), ValueId(7), Day("15/06/75")));
  EXPECT_FALSE(diagnosis.LessEqAt(ValueId(3), ValueId(7), Day("15/06/85")));

  CategoryTypeIndex family = *diagnosis.type().Find("Diagnosis Family");
  auto code = diagnosis.FindRepresentation(family, "Code");
  ASSERT_TRUE(code.ok());
  EXPECT_EQ(*(*code)->Get(ValueId(8), Day("15/06/75")), "D1");
  EXPECT_FALSE((*code)->Get(ValueId(8), Day("15/06/85")).ok());
}

TEST_F(PaperExamplesTest, Example10_AnalysisAcrossChange) {
  // 8 <= 11 during [01/01/80-NOW]: patients with the old Diabetes count
  // together with the new one.
  const Dimension& diagnosis = cs_->mo.dimension(cs_->diagnosis);
  EXPECT_TRUE(diagnosis.LessEqAt(ValueId(8), ValueId(11), Day("01/01/99")));
  EXPECT_FALSE(diagnosis.LessEqAt(ValueId(8), ValueId(11), Day("15/06/79")));
  FactId p2 = cs_->registry->Atom(2);
  Lifespan span = cs_->mo.CharacterizationSpan(p2, cs_->diagnosis,
                                               ValueId(11));
  EXPECT_TRUE(span.valid.Contains(Day("15/06/80")));
}

TEST_F(PaperExamplesTest, Example11_HierarchyProperties) {
  // Residence strict + partitioning; Diagnosis non-strict; the WHO
  // restriction snapshot-strict.
  EXPECT_TRUE(IsStrict(cs_->mo.dimension(cs_->residence)));
  EXPECT_TRUE(IsPartitioning(cs_->mo.dimension(cs_->residence)));
  EXPECT_FALSE(IsStrict(cs_->mo.dimension(cs_->diagnosis)));
  EXPECT_FALSE(IsSnapshotStrict(cs_->mo.dimension(cs_->diagnosis)));
}

TEST_F(PaperExamplesTest, Example12_AggregateFormation) {
  // Set-count per diagnosis group: R1 = {({1,2},11), ({2},12)} and
  // R7 = {({1,2},2), ({2},1)}.
  AggregateSpec spec{AggFunction::SetCount(), {}, ResultDimensionSpec::Auto(),
                     kNowChronon, true};
  for (std::size_t i = 0; i < cs_->mo.dimension_count(); ++i) {
    spec.grouping.push_back(
        i == cs_->diagnosis
            ? *cs_->mo.dimension(i).type().Find("Diagnosis Group")
            : cs_->mo.dimension(i).type().top());
  }
  auto result = AggregateFormation(cs_->mo, spec);
  ASSERT_TRUE(result.ok()) << result.status();

  // Seven dimensions: six restricted arguments + the result.
  EXPECT_EQ(result->dimension_count(), 7u);
  FactId both =
      cs_->registry->Set({cs_->registry->Atom(1), cs_->registry->Atom(2)});
  FactId only2 = cs_->registry->Set({cs_->registry->Atom(2)});
  ASSERT_EQ(result->fact_count(), 2u);
  EXPECT_TRUE(result->HasFact(both));
  EXPECT_TRUE(result->HasFact(only2));

  auto value_of = [&](FactId fact, std::size_t dim) {
    auto pairs = result->relation(dim).ForFact(fact);
    return pairs.empty() ? ValueId() : pairs.front()->value;
  };
  EXPECT_EQ(value_of(both, cs_->diagnosis), ValueId(11));
  EXPECT_EQ(value_of(only2, cs_->diagnosis), ValueId(12));

  const std::size_t result_dim = 6;
  EXPECT_DOUBLE_EQ(*result->dimension(result_dim)
                        .NumericValueOf(value_of(both, result_dim)),
                   2.0);
  EXPECT_DOUBLE_EQ(*result->dimension(result_dim)
                        .NumericValueOf(value_of(only2, result_dim)),
                   1.0);

  // The five uninvolved argument dimensions are trivial (top only).
  for (std::size_t dim : {cs_->dob, cs_->residence, cs_->name, cs_->ssn,
                          cs_->age}) {
    EXPECT_EQ(result->dimension(dim).type().category_count(), 1u)
        << "dimension " << dim << " should be cut to TOP";
  }
}

}  // namespace
}  // namespace mddc
