#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/flat_hash.h"
#include "common/interner.h"

namespace mddc {
namespace {

TEST(StringInternerTest, InternIsIdempotent) {
  StringInterner interner;
  StringId a = interner.Intern("alpha");
  StringId b = interner.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(interner.Intern("alpha"), a);
  EXPECT_EQ(interner.Intern("beta"), b);
  EXPECT_EQ(interner.size(), 2u);
}

TEST(StringInternerTest, IdsAreDenseAndStable) {
  StringInterner interner;
  std::vector<StringId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(interner.Intern("value-" + std::to_string(i)));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(ids[i], static_cast<StringId>(i));
    // Re-interning after later growth still returns the original id.
    EXPECT_EQ(interner.Intern("value-" + std::to_string(i)), ids[i]);
    EXPECT_EQ(interner.View(ids[i]), "value-" + std::to_string(i));
  }
}

TEST(StringInternerTest, FindDoesNotIntern) {
  StringInterner interner;
  EXPECT_EQ(interner.Find("missing"), kInvalidStringId);
  EXPECT_EQ(interner.size(), 0u);
  StringId id = interner.Intern("present");
  EXPECT_EQ(interner.Find("present"), id);
  EXPECT_EQ(interner.Find("presen"), kInvalidStringId);
  EXPECT_EQ(interner.Find("presentx"), kInvalidStringId);
  EXPECT_EQ(interner.size(), 1u);
}

TEST(StringInternerTest, EmptyStringRoundTrips) {
  StringInterner interner;
  StringId empty = interner.Intern("");
  EXPECT_NE(empty, kInvalidStringId);
  EXPECT_EQ(interner.View(empty), "");
  EXPECT_EQ(interner.Find(""), empty);
  EXPECT_EQ(interner.Intern(""), empty);
  // The empty string is distinct from every non-empty string.
  StringId other = interner.Intern("x");
  EXPECT_NE(empty, other);
}

TEST(StringInternerTest, LongStringsRoundTrip) {
  StringInterner interner;
  std::string long_a(100000, 'a');
  std::string long_b(100000, 'a');
  long_b.back() = 'b';  // same length and hash prefix path, last byte differs
  StringId a = interner.Intern(long_a);
  StringId b = interner.Intern(long_b);
  EXPECT_NE(a, b);
  EXPECT_EQ(interner.View(a), long_a);
  EXPECT_EQ(interner.View(b), long_b);
  EXPECT_EQ(interner.Find(long_a), a);
  EXPECT_EQ(interner.Find(long_b), b);
}

TEST(StringInternerTest, CStrIsNulTerminated) {
  StringInterner interner;
  StringId a = interner.Intern("3.25");
  StringId b = interner.Intern("not-a-number");
  EXPECT_EQ(std::strlen(interner.CStr(a)), 4u);
  EXPECT_STREQ(interner.CStr(a), "3.25");
  EXPECT_STREQ(interner.CStr(b), "not-a-number");
  // Embedded NUL truncates CStr but not View.
  std::string with_nul("ab");
  with_nul.push_back('\0');
  with_nul.push_back('c');
  StringId n = interner.Intern(with_nul);
  EXPECT_EQ(interner.View(n).size(), 4u);
  EXPECT_EQ(std::strlen(interner.CStr(n)), 2u);
}

TEST(StringInternerTest, HashOfMatchesFnv1a) {
  StringInterner interner;
  const std::string text = "Capital Region";
  StringId id = interner.Intern(text);
  EXPECT_EQ(interner.HashOf(id), Fnv1a64(text.data(), text.size()));
}

// Forces table-slot collisions: the index has power-of-two capacity, so
// two strings whose hashes agree in the low bits land in the same probe
// chain. Pigeonhole over a small mask guarantees collisions among few
// candidates; every colliding string must still resolve to its own id.
TEST(StringInternerTest, SlotCollisionsResolveCorrectly) {
  constexpr std::uint64_t kMask = 15;  // initial capacity is 16
  std::vector<std::string> colliding;
  std::uint64_t target_slot = 0;
  for (int i = 0; colliding.size() < 8 && i < 100000; ++i) {
    std::string candidate = "collide-" + std::to_string(i);
    std::uint64_t slot = Fnv1a64(candidate.data(), candidate.size()) & kMask;
    if (colliding.empty()) target_slot = slot;
    if (slot == target_slot) colliding.push_back(std::move(candidate));
  }
  ASSERT_EQ(colliding.size(), 8u);

  StringInterner interner;
  std::vector<StringId> ids;
  for (const std::string& s : colliding) ids.push_back(interner.Intern(s));
  for (std::size_t i = 0; i < colliding.size(); ++i) {
    EXPECT_EQ(interner.Find(colliding[i]), ids[i]) << colliding[i];
    EXPECT_EQ(interner.View(ids[i]), colliding[i]);
    for (std::size_t j = i + 1; j < colliding.size(); ++j) {
      EXPECT_NE(ids[i], ids[j]);
    }
  }
}

// Grows through several rehashes and checks every string survives.
TEST(StringInternerTest, SurvivesRehashGrowth) {
  StringInterner interner;
  constexpr int kCount = 10000;
  std::vector<StringId> ids;
  for (int i = 0; i < kCount; ++i) {
    ids.push_back(interner.Intern("k" + std::to_string(i * 7919)));
  }
  EXPECT_EQ(interner.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) {
    const std::string key = "k" + std::to_string(i * 7919);
    EXPECT_EQ(interner.Find(key), ids[i]);
    EXPECT_EQ(interner.View(ids[i]), key);
  }
  EXPECT_GT(interner.pool_bytes(), static_cast<std::size_t>(kCount));
}

}  // namespace
}  // namespace mddc
