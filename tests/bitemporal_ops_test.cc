#include <gtest/gtest.h>

#include "algebra/operators.h"
#include "algebra/timeslice.h"
#include "fixtures.h"

// Transaction-time and bitemporal behavior of the algebra: the paper
// states transaction time is supported "in the same way as valid time"
// (Section 4.2). These tests pin that down for the implemented operators.

namespace mddc {
namespace {

using testing_fixtures::BuildDiagnosisDimension;
using testing_fixtures::Day;

Lifespan Recorded(const std::string& interval) {
  return Lifespan::RecordedDuring(
      TemporalElement(*Interval::Parse(interval)));
}

TEST(BitemporalOpsTest, UnionCoalescesTransactionTime) {
  auto registry = std::make_shared<FactRegistry>();
  MdObject m1("Patient", {BuildDiagnosisDimension()}, registry,
              TemporalType::kTransactionTime);
  MdObject m2("Patient", {BuildDiagnosisDimension()}, registry,
              TemporalType::kTransactionTime);
  FactId p1 = registry->Atom(1);
  ASSERT_TRUE(m1.AddFact(p1).ok());
  ASSERT_TRUE(
      m1.Relate(0, p1, ValueId(9), Recorded("[01/01/89-31/12/92]")).ok());
  ASSERT_TRUE(m2.AddFact(p1).ok());
  ASSERT_TRUE(
      m2.Relate(0, p1, ValueId(9), Recorded("[01/01/93-NOW]")).ok());
  auto merged = Union(m1, m2);
  ASSERT_TRUE(merged.ok()) << merged.status();
  auto pairs = merged->relation(0).ForFact(p1);
  ASSERT_EQ(pairs.size(), 1u);
  // Adjacent recording periods coalesce.
  EXPECT_TRUE(pairs.front()->life.transaction.Contains(Day("15/06/90")));
  EXPECT_TRUE(pairs.front()->life.transaction.Contains(Day("15/06/95")));
  EXPECT_FALSE(pairs.front()->life.transaction.Contains(Day("15/06/88")));
}

TEST(BitemporalOpsTest, TransactionSliceOfUnion) {
  auto registry = std::make_shared<FactRegistry>();
  MdObject m1("Patient", {BuildDiagnosisDimension()}, registry,
              TemporalType::kTransactionTime);
  MdObject m2("Patient", {BuildDiagnosisDimension()}, registry,
              TemporalType::kTransactionTime);
  FactId p1 = registry->Atom(1);
  FactId p2 = registry->Atom(2);
  ASSERT_TRUE(m1.AddFact(p1).ok());
  ASSERT_TRUE(
      m1.Relate(0, p1, ValueId(9), Recorded("[01/01/89-31/12/92]")).ok());
  ASSERT_TRUE(m2.AddFact(p2).ok());
  ASSERT_TRUE(
      m2.Relate(0, p2, ValueId(5), Recorded("[01/01/91-NOW]")).ok());
  auto merged = Union(m1, m2);
  ASSERT_TRUE(merged.ok());

  // At a 1990 transaction time, only p1 was recorded.
  auto in_90 = TransactionTimeslice(*merged, Day("15/06/90"));
  ASSERT_TRUE(in_90.ok()) << in_90.status();
  EXPECT_EQ(in_90->temporal_type(), TemporalType::kSnapshot);
  EXPECT_EQ(in_90->fact_count(), 1u);
  EXPECT_TRUE(in_90->HasFact(p1));

  // At 1995, only p2's pair was still current.
  auto in_95 = TransactionTimeslice(*merged, Day("15/06/95"));
  ASSERT_TRUE(in_95.ok());
  EXPECT_EQ(in_95->fact_count(), 1u);
  EXPECT_TRUE(in_95->HasFact(p2));
}

TEST(BitemporalOpsTest, BitemporalUnionThenDoubleSlice) {
  auto registry = std::make_shared<FactRegistry>();
  MdObject m1("Patient", {BuildDiagnosisDimension()}, registry,
              TemporalType::kBitemporal);
  MdObject m2("Patient", {BuildDiagnosisDimension()}, registry,
              TemporalType::kBitemporal);
  FactId p1 = registry->Atom(1);
  ASSERT_TRUE(m1.AddFact(p1).ok());
  // Recorded 1989, claiming validity from 1989.
  ASSERT_TRUE(m1.Relate(0, p1, ValueId(9),
                        Lifespan{TemporalElement(Interval(Day("01/01/89"),
                                                          kNowChronon)),
                                 TemporalElement(Interval(Day("05/01/89"),
                                                          kNowChronon))})
                  .ok());
  FactId p2 = registry->Atom(2);
  ASSERT_TRUE(m2.AddFact(p2).ok());
  ASSERT_TRUE(m2.Relate(0, p2, ValueId(5),
                        Lifespan{TemporalElement(Interval(Day("01/01/82"),
                                                          Day("30/09/82"))),
                                 TemporalElement(Interval(Day("01/02/82"),
                                                          kNowChronon))})
                  .ok());
  auto merged = Union(m1, m2);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->temporal_type(), TemporalType::kBitemporal);

  // rho_t then rho_v: the database state of 1990, viewed at mid-1989.
  auto as_recorded_90 = TransactionTimeslice(*merged, Day("15/06/90"));
  ASSERT_TRUE(as_recorded_90.ok());
  EXPECT_EQ(as_recorded_90->temporal_type(), TemporalType::kValidTime);
  auto snapshot = ValidTimeslice(*as_recorded_90, Day("15/06/89"));
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->temporal_type(), TemporalType::kSnapshot);
  // Valid mid-1989: p1 yes (valid from 01/01/89); p2 no (validity ended
  // 30/09/82).
  EXPECT_EQ(snapshot->fact_count(), 1u);
  EXPECT_TRUE(snapshot->HasFact(p1));
}

TEST(BitemporalOpsTest, DifferenceLeavesTransactionComponentIntact) {
  auto registry = std::make_shared<FactRegistry>();
  MdObject m1("Patient", {BuildDiagnosisDimension()}, registry,
              TemporalType::kBitemporal);
  MdObject m2("Patient", {BuildDiagnosisDimension()}, registry,
              TemporalType::kBitemporal);
  FactId p1 = registry->Atom(1);
  ASSERT_TRUE(m1.AddFact(p1).ok());
  ASSERT_TRUE(m1.Relate(0, p1, ValueId(9),
                        Lifespan{TemporalElement(Interval(Day("01/01/80"),
                                                          Day("31/12/89"))),
                                 TemporalElement(Interval(Day("01/01/80"),
                                                          kNowChronon))})
                  .ok());
  ASSERT_TRUE(m2.AddFact(p1).ok());
  // Overlapping transaction time, cutting valid [85-NOW].
  ASSERT_TRUE(m2.Relate(0, p1, ValueId(9),
                        Lifespan{TemporalElement(Interval(Day("01/01/85"),
                                                          kNowChronon)),
                                 TemporalElement(Interval(Day("01/01/80"),
                                                          kNowChronon))})
                  .ok());
  auto diff = Difference(m1, m2);
  ASSERT_TRUE(diff.ok()) << diff.status();
  auto pairs = diff->relation(0).ForFact(p1);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_TRUE(pairs.front()->life.valid.Contains(Day("15/06/82")));
  EXPECT_FALSE(pairs.front()->life.valid.Contains(Day("15/06/86")));
  EXPECT_TRUE(
      pairs.front()->life.transaction.Contains(Day("15/06/99")));
}

TEST(BitemporalOpsTest, NonOverlappingTransactionTimeDoesNotCut) {
  // The difference rule only cuts valid time when the recording periods
  // overlap: a pair deleted from a *different* transaction era is
  // untouched.
  auto registry = std::make_shared<FactRegistry>();
  MdObject m1("Patient", {BuildDiagnosisDimension()}, registry,
              TemporalType::kBitemporal);
  MdObject m2("Patient", {BuildDiagnosisDimension()}, registry,
              TemporalType::kBitemporal);
  FactId p1 = registry->Atom(1);
  ASSERT_TRUE(m1.AddFact(p1).ok());
  ASSERT_TRUE(m1.Relate(0, p1, ValueId(9),
                        Lifespan{TemporalElement(Interval(Day("01/01/80"),
                                                          kNowChronon)),
                                 TemporalElement(Interval(Day("01/01/80"),
                                                          Day("31/12/84")))})
                  .ok());
  ASSERT_TRUE(m2.AddFact(p1).ok());
  ASSERT_TRUE(m2.Relate(0, p1, ValueId(9),
                        Lifespan{TemporalElement(Interval(Day("01/01/80"),
                                                          kNowChronon)),
                                 TemporalElement(Interval(Day("01/01/90"),
                                                          kNowChronon))})
                  .ok());
  auto diff = Difference(m1, m2);
  ASSERT_TRUE(diff.ok());
  auto pairs = diff->relation(0).ForFact(p1);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_TRUE(pairs.front()->life.valid.Contains(Day("15/06/85")));
}

}  // namespace
}  // namespace mddc
