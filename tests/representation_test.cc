#include <gtest/gtest.h>

#include "core/representation.h"
#include "fixtures.h"

namespace mddc {
namespace {

using testing_fixtures::Day;
using testing_fixtures::During;

TEST(RepresentationTest, BasicRoundTrip) {
  Representation rep("Code");
  ASSERT_TRUE(rep.Set(ValueId(3), "O24").ok());
  auto text = rep.Get(ValueId(3));
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "O24");
  auto value = rep.Lookup("O24");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, ValueId(3));
}

TEST(RepresentationTest, UnknownValueIsNotFound) {
  Representation rep("Code");
  EXPECT_EQ(rep.Get(ValueId(1)).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(rep.Lookup("missing").status().code(), StatusCode::kNotFound);
}

TEST(RepresentationTest, BijectivityPerChronon) {
  Representation rep("Code");
  // The code "D1" denoted value 8 during the 70s; from 1980 a different
  // value may reuse the code, but an *overlapping* reuse is rejected.
  ASSERT_TRUE(rep.Set(ValueId(8), "D1", During("[01/01/70-31/12/79]")).ok());
  EXPECT_EQ(rep.Set(ValueId(9), "D1", During("[01/06/75-NOW]")).code(),
            StatusCode::kInvariantViolation);
  EXPECT_TRUE(rep.Set(ValueId(9), "D1", During("[01/01/80-NOW]")).ok());

  auto in_70s = rep.Lookup("D1", Day("15/06/75"));
  ASSERT_TRUE(in_70s.ok());
  EXPECT_EQ(*in_70s, ValueId(8));
  auto in_80s = rep.Lookup("D1", Day("15/06/85"));
  ASSERT_TRUE(in_80s.ok());
  EXPECT_EQ(*in_80s, ValueId(9));
}

TEST(RepresentationTest, ValueCannotHaveTwoSimultaneousNames) {
  Representation rep("Code");
  ASSERT_TRUE(rep.Set(ValueId(3), "P11", During("[01/01/70-31/12/79]")).ok());
  EXPECT_FALSE(rep.Set(ValueId(3), "X99", During("[01/01/75-NOW]")).ok());
  // Non-overlapping rename is fine (the paper: "names might change").
  EXPECT_TRUE(rep.Set(ValueId(3), "X99", During("[01/01/80-NOW]")).ok());
  EXPECT_EQ(*rep.Get(ValueId(3), Day("15/06/75")), "P11");
  EXPECT_EQ(*rep.Get(ValueId(3), Day("15/06/85")), "X99");
}

TEST(RepresentationTest, ReassertionCoalesces) {
  Representation rep("Code");
  ASSERT_TRUE(rep.Set(ValueId(3), "P11", During("[01/01/70-31/12/74]")).ok());
  ASSERT_TRUE(rep.Set(ValueId(3), "P11", During("[01/01/75-31/12/79]")).ok());
  auto all = rep.GetAll(ValueId(3));
  ASSERT_EQ(all.size(), 1u);
  EXPECT_TRUE(all[0].second.valid.Contains(Day("15/06/72")));
  EXPECT_TRUE(all[0].second.valid.Contains(Day("15/06/77")));
}

TEST(RepresentationTest, NumericInterpretation) {
  Representation rep("AgeValue");
  ASSERT_TRUE(rep.Set(ValueId(1), "42").ok());
  ASSERT_TRUE(rep.Set(ValueId(2), "3.5").ok());
  ASSERT_TRUE(rep.Set(ValueId(3), "young").ok());
  EXPECT_DOUBLE_EQ(*rep.GetNumeric(ValueId(1)), 42.0);
  EXPECT_DOUBLE_EQ(*rep.GetNumeric(ValueId(2)), 3.5);
  EXPECT_EQ(rep.GetNumeric(ValueId(3)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(RepresentationTest, RejectsInvalidInput) {
  Representation rep("Code");
  EXPECT_FALSE(rep.Set(ValueId(), "x").ok());
  Lifespan empty = Lifespan::ValidDuring(TemporalElement());
  EXPECT_FALSE(rep.Set(ValueId(1), "x", empty).ok());
}

TEST(RepresentationTest, SizeCountsEntries) {
  Representation rep("Code");
  ASSERT_TRUE(rep.Set(ValueId(1), "a", During("[01/01/70-31/12/74]")).ok());
  ASSERT_TRUE(rep.Set(ValueId(1), "b", During("[01/01/75-NOW]")).ok());
  ASSERT_TRUE(rep.Set(ValueId(2), "c").ok());
  EXPECT_EQ(rep.size(), 3u);
}

}  // namespace
}  // namespace mddc
