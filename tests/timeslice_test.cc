#include <gtest/gtest.h>

#include "algebra/timeslice.h"
#include "fixtures.h"

namespace mddc {
namespace {

using testing_fixtures::BuildDiagnosisDimension;
using testing_fixtures::BuildPatientDiagnosisMo;
using testing_fixtures::Day;
using testing_fixtures::During;

TEST(TimesliceTest, ValidSliceIn1975UsesOldClassification) {
  MdObject mo = BuildPatientDiagnosisMo();
  auto sliced = ValidTimeslice(mo, Day("15/06/75"));
  ASSERT_TRUE(sliced.ok()) << sliced.status();
  EXPECT_EQ(sliced->temporal_type(), TemporalType::kSnapshot);

  // In 1975 the new classification did not exist yet.
  EXPECT_FALSE(sliced->dimension(0).HasValue(ValueId(5)));
  EXPECT_FALSE(sliced->dimension(0).HasValue(ValueId(11)));
  EXPECT_TRUE(sliced->dimension(0).HasValue(ValueId(3)));
  EXPECT_TRUE(sliced->dimension(0).HasValue(ValueId(7)));

  // Only patient 2 had diagnoses in 1975; patient 1's pair starts 1989.
  ASSERT_EQ(sliced->fact_count(), 1u);
  EXPECT_EQ(sliced->facts()[0], mo.registry()->Atom(2));

  // Attached valid times are removed by the slice.
  for (const auto& entry : sliced->relation(0).entries()) {
    EXPECT_EQ(entry.life.valid, TemporalElement::Always());
  }
}

TEST(TimesliceTest, ValidSliceNowUsesNewClassification) {
  MdObject mo = BuildPatientDiagnosisMo();
  auto sliced = ValidTimeslice(mo, Day("01/06/99"));
  ASSERT_TRUE(sliced.ok());
  EXPECT_TRUE(sliced->dimension(0).HasValue(ValueId(9)));
  EXPECT_TRUE(sliced->dimension(0).HasValue(ValueId(11)));
  EXPECT_FALSE(sliced->dimension(0).HasValue(ValueId(7)));
  // Both patients carry current diagnoses.
  EXPECT_EQ(sliced->fact_count(), 2u);
  // The old->new bridge (8 <= 11) does not appear because 8 is not a
  // member in 1999.
  EXPECT_FALSE(sliced->dimension(0).HasValue(ValueId(8)));
}

TEST(TimesliceTest, SliceKeepsOrderEdgesAliveAtT) {
  MdObject mo = BuildPatientDiagnosisMo();
  auto sliced = ValidTimeslice(mo, Day("15/06/85"));
  ASSERT_TRUE(sliced.ok());
  const Dimension& diagnosis = sliced->dimension(0);
  EXPECT_TRUE(diagnosis.LessEqAt(ValueId(5), ValueId(4)));
  EXPECT_TRUE(diagnosis.LessEqAt(ValueId(9), ValueId(11)));
  // The 1970s edge 3 <= 7 is gone (and so are its endpoints).
  EXPECT_FALSE(diagnosis.HasValue(ValueId(3)));
}

TEST(TimesliceTest, SliceFiltersRepresentations) {
  MdObject mo = BuildPatientDiagnosisMo();
  auto sliced = ValidTimeslice(mo, Day("15/06/85"));
  ASSERT_TRUE(sliced.ok());
  CategoryTypeIndex family =
      *sliced->dimension(0).type().Find("Diagnosis Family");
  auto rep = sliced->dimension(0).FindRepresentation(family, "Code");
  ASSERT_TRUE(rep.ok());
  // "E10" (new coding) is present; "D1" (old coding) is not.
  EXPECT_TRUE((*rep)->Lookup("E10").ok());
  EXPECT_FALSE((*rep)->Lookup("D1").ok());
}

TEST(TimesliceTest, RejectsWrongTemporalType) {
  auto registry = std::make_shared<FactRegistry>();
  MdObject snapshot("Patient", {BuildDiagnosisDimension()}, registry,
                    TemporalType::kSnapshot);
  EXPECT_EQ(ValidTimeslice(snapshot, 0).status().code(),
            StatusCode::kTemporalTypeMismatch);
  EXPECT_EQ(TransactionTimeslice(snapshot, 0).status().code(),
            StatusCode::kTemporalTypeMismatch);
}

TEST(TimesliceTest, BitemporalSliceChain) {
  // A bitemporal MO: the pair (p1, 9) was recorded on 05/01/89 with valid
  // time [01/01/89-NOW]; on 01/06/90 the valid time was corrected to
  // [01/03/89-NOW].
  auto registry = std::make_shared<FactRegistry>();
  MdObject mo("Patient", {BuildDiagnosisDimension()}, registry,
              TemporalType::kBitemporal);
  FactId p1 = registry->Atom(1);
  ASSERT_TRUE(mo.AddFact(p1).ok());
  Chronon t1 = Day("05/01/89");
  Chronon t2 = Day("01/06/90");
  ASSERT_TRUE(mo.Relate(0, p1, ValueId(9),
                        Lifespan{TemporalElement(
                                     Interval(Day("01/01/89"), kNowChronon)),
                                 TemporalElement(Interval(t1, t2 - 1))})
                  .ok());
  ASSERT_TRUE(mo.Relate(0, p1, ValueId(9),
                        Lifespan{TemporalElement(
                                     Interval(Day("01/03/89"), kNowChronon)),
                                 TemporalElement(Interval(t2, kNowChronon))})
                  .ok());

  // As recorded before the correction: valid from 01/01/89.
  auto before = TransactionTimeslice(mo, t1);
  ASSERT_TRUE(before.ok()) << before.status();
  EXPECT_EQ(before->temporal_type(), TemporalType::kValidTime);
  auto pairs = before->relation(0).ForFact(p1);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_TRUE(pairs.front()->life.valid.Contains(Day("15/01/89")));

  // As recorded after: valid only from 01/03/89.
  auto after = TransactionTimeslice(mo, t2);
  ASSERT_TRUE(after.ok());
  pairs = after->relation(0).ForFact(p1);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_FALSE(pairs.front()->life.valid.Contains(Day("15/01/89")));
  EXPECT_TRUE(pairs.front()->life.valid.Contains(Day("15/03/89")));

  // Chaining: transaction slice then valid slice yields a snapshot.
  auto snapshot = ValidTimeslice(*after, Day("15/03/89"));
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->temporal_type(), TemporalType::kSnapshot);
  EXPECT_EQ(snapshot->fact_count(), 1u);
}

TEST(TimesliceTest, DimensionLevelSliceHelper) {
  Dimension diagnosis = BuildDiagnosisDimension();
  auto sliced = ValidTimesliceDimension(diagnosis, Day("15/06/75"));
  ASSERT_TRUE(sliced.ok());
  EXPECT_TRUE(sliced->HasValue(ValueId(3)));
  EXPECT_FALSE(sliced->HasValue(ValueId(5)));
  EXPECT_TRUE(sliced->Validate().ok());
}

TEST(TimesliceTest, AnalysisAcrossChange_Example10) {
  // Example 10: counting patients with the old Diabetes (8) together with
  // the new Diabetes (11) "when we look at diagnoses made from 1970 to
  // the present" — the bridge 8 <= [80-NOW] 11 makes patient 2's 1970s
  // diagnosis 8 count toward group 11 today.
  MdObject mo = BuildPatientDiagnosisMo();
  FactId p2 = mo.registry()->Atom(2);
  Lifespan span = mo.CharacterizationSpan(p2, 0, ValueId(11));
  // Via the bridge, patient 2 is in group 11 from 1980 (while (2,8) held
  // until 1981), and from 1982 via diagnosis 9.
  EXPECT_TRUE(span.valid.Contains(Day("15/06/80")));
  EXPECT_TRUE(span.valid.Contains(Day("15/06/99")));
}

}  // namespace
}  // namespace mddc
