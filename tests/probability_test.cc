#include <gtest/gtest.h>

#include "uncertainty/probability.h"

namespace mddc {
namespace {

TEST(ProbabilityTest, Validation) {
  EXPECT_TRUE(IsProbability(0.0));
  EXPECT_TRUE(IsProbability(1.0));
  EXPECT_FALSE(IsProbability(-0.1));
  EXPECT_FALSE(IsProbability(1.1));
  EXPECT_TRUE(ValidateAttachedProbability(0.5).ok());
  EXPECT_FALSE(ValidateAttachedProbability(0.0).ok());
  EXPECT_FALSE(ValidateAttachedProbability(1.5).ok());
}

TEST(ProbabilityTest, NoisyOr) {
  EXPECT_DOUBLE_EQ(NoisyOr({}), 0.0);
  EXPECT_DOUBLE_EQ(NoisyOr({0.5}), 0.5);
  EXPECT_DOUBLE_EQ(NoisyOr({0.5, 0.5}), 0.75);
  EXPECT_DOUBLE_EQ(NoisyOr({1.0, 0.3}), 1.0);
}

TEST(ProbabilityTest, PathProduct) {
  EXPECT_DOUBLE_EQ(PathProduct({}), 1.0);
  EXPECT_DOUBLE_EQ(PathProduct({0.9, 0.5}), 0.45);
}

TEST(ProbabilityTest, ExpectedCountAndSum) {
  EXPECT_DOUBLE_EQ(ExpectedCount({0.9, 0.5, 1.0}), 2.4);
  auto sum = ExpectedSum({10.0, 20.0}, {0.5, 1.0});
  ASSERT_TRUE(sum.ok());
  EXPECT_DOUBLE_EQ(*sum, 25.0);
  EXPECT_FALSE(ExpectedSum({1.0}, {0.5, 0.5}).ok());
}

TEST(ProbabilityTest, CountDistributionIsPoissonBinomial) {
  std::vector<double> d = CountDistribution({0.5, 0.5});
  ASSERT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d[0], 0.25);
  EXPECT_DOUBLE_EQ(d[1], 0.5);
  EXPECT_DOUBLE_EQ(d[2], 0.25);
  // Distribution sums to 1 and its mean equals ExpectedCount.
  std::vector<double> probs = {0.1, 0.9, 0.4, 0.7};
  std::vector<double> dist = CountDistribution(probs);
  double total = 0.0;
  double mean = 0.0;
  for (std::size_t k = 0; k < dist.size(); ++k) {
    total += dist[k];
    mean += k * dist[k];
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_NEAR(mean, ExpectedCount(probs), 1e-12);
}

TEST(ProbabilityTest, ProbabilityNonEmptyMatchesNoisyOr) {
  EXPECT_DOUBLE_EQ(ProbabilityNonEmpty({0.2, 0.2}),
                   NoisyOr({0.2, 0.2}));
}

}  // namespace
}  // namespace mddc
