#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "algebra/operators.h"
#include "engine/executor.h"
#include "io/serialize.h"
#include "relational/algebra.h"
#include "workload/clinical_generator.h"
#include "workload/retail_generator.h"

namespace mddc {
namespace {

// ---- ThreadPool -----------------------------------------------------------

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndSingleton) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](std::size_t) { FAIL() << "no iterations expected"; });
  int runs = 0;
  pool.ParallelFor(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++runs;
  });
  EXPECT_EQ(runs, 1);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossParallelFors) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.ParallelFor(100, [&](std::size_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 4950u);
  }
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> runs{0};
  pool.ParallelFor(5, [&](std::size_t) { runs.fetch_add(1); });
  EXPECT_EQ(runs.load(), 5);
}

TEST(ExecContextTest, WantsParallelRespectsThresholds) {
  ExecContext sequential;
  EXPECT_FALSE(sequential.WantsParallel(1u << 20));
  ExecContext parallel(4, 100);
  EXPECT_FALSE(parallel.WantsParallel(99));
  EXPECT_TRUE(parallel.WantsParallel(100));
}

// ---- Shared process-wide pool ---------------------------------------------

TEST(SharedThreadPoolTest, FirstBorrowCreatesLaterBorrowsReuse) {
  ShutdownSharedThreadPool();
  bool created = false;
  ThreadPool& first = SharedThreadPool(2, &created);
  EXPECT_TRUE(created);
  ThreadPool& second = SharedThreadPool(2, &created);
  EXPECT_FALSE(created);
  EXPECT_EQ(&first, &second);
  // A later, larger request is served by the existing pool rather than
  // respawning: correctness never depends on worker count.
  ThreadPool& third = SharedThreadPool(16, &created);
  EXPECT_FALSE(created);
  EXPECT_EQ(&first, &third);
}

TEST(SharedThreadPoolTest, PoolSizeCoversAtLeastTheRequest) {
  ShutdownSharedThreadPool();
  ThreadPool& pool = SharedThreadPool(3);
  EXPECT_GE(pool.size(), 3u);
}

TEST(SharedThreadPoolTest, ShutdownAllowsAFreshPool) {
  ShutdownSharedThreadPool();
  bool created = false;
  SharedThreadPool(2, &created);
  EXPECT_TRUE(created);
  ShutdownSharedThreadPool();
  SharedThreadPool(2, &created);
  EXPECT_TRUE(created);
}

TEST(SharedThreadPoolTest, ShutdownIsIdempotentAndConcurrencySafe) {
  // Repeated shutdown of an absent pool is a no-op.
  ShutdownSharedThreadPool();
  ShutdownSharedThreadPool();

  // Shutdown→reuse cycles always yield a working pool.
  for (int cycle = 0; cycle < 5; ++cycle) {
    ThreadPool& pool = SharedThreadPool(2);
    std::atomic<std::size_t> sum{0};
    pool.ParallelFor(64, [&](std::size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 64u * 63u / 2u);
    ShutdownSharedThreadPool();
  }

  // Shutdown racing in-flight task completion: the task signals from
  // inside the pool, so submission strictly precedes destruction, and
  // the drain-on-join guarantee means the task still runs to completion.
  for (int cycle = 0; cycle < 10; ++cycle) {
    ThreadPool& pool = SharedThreadPool(2);
    std::atomic<bool> started{false};
    std::atomic<bool> finished{false};
    pool.Submit([&] {
      started = true;
      finished = true;
    });
    while (!started.load()) std::this_thread::yield();
    // Concurrent shutdowns from several threads are safe: the pool is
    // detached under the guard and joined outside it.
    std::thread racer([] { ShutdownSharedThreadPool(); });
    ShutdownSharedThreadPool();
    racer.join();
    EXPECT_TRUE(finished.load());
    // The next borrow creates a fresh, usable pool.
    bool created = false;
    ThreadPool& fresh = SharedThreadPool(2, &created);
    EXPECT_TRUE(created);
    std::atomic<std::size_t> count{0};
    fresh.ParallelFor(8, [&](std::size_t) { ++count; });
    EXPECT_EQ(count.load(), 8u);
  }
  ShutdownSharedThreadPool();
}

TEST(ExecStatsTest, MergeFromSumsEveryCounter) {
  ExecStats a;
  a.parallel_runs = 1;
  a.partitions = 4;
  a.merge_nanos = 100;
  a.index_hits = 2;
  ExecStats b;
  b.parallel_runs = 2;
  b.sequential_fallbacks = 3;
  b.merge_nanos = 50;
  b.dense_groupby_runs = 1;
  a.MergeFrom(b);
  EXPECT_EQ(a.parallel_runs, 3u);
  EXPECT_EQ(a.sequential_fallbacks, 3u);
  EXPECT_EQ(a.partitions, 4u);
  EXPECT_EQ(a.merge_nanos, 150u);
  EXPECT_EQ(a.index_hits, 2u);
  EXPECT_EQ(a.dense_groupby_runs, 1u);
}

TEST(ExecStatsTest, ToJsonListsEveryCounter) {
  ExecStats stats;
  stats.parallel_runs = 7;
  stats.merge_nanos = 12345;
  const std::string json = stats.ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"parallel_runs\": 7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"merge_nanos\": 12345"), std::string::npos) << json;
  EXPECT_NE(json.find("\"sequential_fallbacks\": 0"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"index_builds\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"dense_slot_fallbacks\""), std::string::npos) << json;
}

TEST(SharedThreadPoolTest, ContextsCountReusesNotCreations) {
  ShutdownSharedThreadPool();
  ExecContext creator(4, 1);
  creator.pool();  // spawns the shared pool
  EXPECT_EQ(creator.stats.pool_reuses, 0u);
  creator.pool();  // second borrow from the same context is not a reuse
  EXPECT_EQ(creator.stats.pool_reuses, 0u);

  ExecContext borrower(4, 1);
  borrower.pool();
  EXPECT_EQ(borrower.stats.pool_reuses, 1u);
  EXPECT_EQ(&creator.pool(), &borrower.pool());
}

// ---- Differential harness -------------------------------------------------

RetailMo BuildRetail(std::uint32_t seed = 7, std::size_t purchases = 300) {
  RetailWorkloadParams params;
  params.seed = seed;
  params.num_purchases = purchases;
  auto workload =
      GenerateRetailWorkload(params, std::make_shared<FactRegistry>());
  return std::move(workload).ValueOrDie();
}

/// The clinical workload with its defaults exhibits exactly the phenomena
/// that break the Section 3.4 preconditions: non-strict user-defined
/// groupings, mixed-granularity registrations and many-to-many diagnoses.
ClinicalMo BuildClinical(std::uint32_t seed = 42,
                         std::size_t patients = 150) {
  ClinicalWorkloadParams params;
  params.seed = seed;
  params.num_patients = patients;
  auto workload =
      GenerateClinicalWorkload(params, std::make_shared<FactRegistry>());
  return std::move(workload).ValueOrDie();
}

std::vector<CategoryTypeIndex> GroupingAt(const MdObject& mo,
                                          std::size_t dim,
                                          CategoryTypeIndex category) {
  std::vector<CategoryTypeIndex> grouping;
  for (std::size_t i = 0; i < mo.dimension_count(); ++i) {
    grouping.push_back(i == dim ? category : mo.dimension(i).type().top());
  }
  return grouping;
}

AggregationType ResultBottomType(const MdObject& aggregated) {
  const DimensionType& type =
      aggregated.dimension(aggregated.dimension_count() - 1).type();
  return type.AggType(type.bottom());
}

/// The differential oracle: the sequential algebra is ground truth; the
/// parallel engine at 1, 2 and 8 threads must reproduce it down to the
/// serialized bytes, including the result dimension's aggregation-type
/// degradation.
void ExpectParallelMatchesSequential(const MdObject& mo,
                                     const AggregateSpec& spec) {
  auto sequential = AggregateFormation(mo, spec);
  ASSERT_TRUE(sequential.ok()) << sequential.status();
  auto sequential_bytes = io::WriteMo(*sequential);
  ASSERT_TRUE(sequential_bytes.ok()) << sequential_bytes.status();

  for (std::size_t threads : {1u, 2u, 8u}) {
    ExecContext ctx(threads, /*min_facts=*/1);
    auto parallel = AggregateFormation(mo, spec, &ctx);
    ASSERT_TRUE(parallel.ok())
        << "threads=" << threads << ": " << parallel.status();
    auto parallel_bytes = io::WriteMo(*parallel);
    ASSERT_TRUE(parallel_bytes.ok()) << parallel_bytes.status();
    EXPECT_EQ(*parallel_bytes, *sequential_bytes)
        << "serialized result differs at threads=" << threads;
    EXPECT_EQ(ResultBottomType(*parallel), ResultBottomType(*sequential))
        << "aggregation type differs at threads=" << threads;
    EXPECT_EQ(parallel->fact_count(), sequential->fact_count());
  }
}

AggregateSpec SpecFor(const AggFunction& function,
                      std::vector<CategoryTypeIndex> grouping) {
  return AggregateSpec{function, std::move(grouping),
                       ResultDimensionSpec::Auto(), kNowChronon,
                       /*enforce_aggregation_types=*/true};
}

TEST(ExecutorDifferentialTest, RetailSetCountByCategory) {
  RetailMo retail = BuildRetail();
  ExpectParallelMatchesSequential(
      retail.mo,
      SpecFor(AggFunction::SetCount(),
              GroupingAt(retail.mo, retail.product_dim, retail.category)));
}

TEST(ExecutorDifferentialTest, RetailSumByProductCategoryDepartment) {
  RetailMo retail = BuildRetail();
  for (CategoryTypeIndex level :
       {retail.product, retail.category, retail.department}) {
    ExpectParallelMatchesSequential(
        retail.mo,
        SpecFor(AggFunction::Sum(retail.amount_dim),
                GroupingAt(retail.mo, retail.product_dim, level)));
  }
}

TEST(ExecutorDifferentialTest, RetailMinMaxCountByCity) {
  RetailMo retail = BuildRetail();
  auto by_city = GroupingAt(retail.mo, retail.store_dim, retail.city);
  ExpectParallelMatchesSequential(
      retail.mo, SpecFor(AggFunction::Min(retail.price_dim), by_city));
  ExpectParallelMatchesSequential(
      retail.mo, SpecFor(AggFunction::Max(retail.price_dim), by_city));
  ExpectParallelMatchesSequential(
      retail.mo, SpecFor(AggFunction::Count(retail.price_dim), by_city));
}

TEST(ExecutorDifferentialTest, RetailAvgDegradesAndStillMatches) {
  // AVG is not distributive, so the summarizability gate forces the
  // sequential path — the differential contract must hold regardless.
  RetailMo retail = BuildRetail();
  ExpectParallelMatchesSequential(
      retail.mo,
      SpecFor(AggFunction::Avg(retail.price_dim),
              GroupingAt(retail.mo, retail.store_dim, retail.region)));
}

TEST(ExecutorDifferentialTest, RetailTwoDimensionalGrouping) {
  RetailMo retail = BuildRetail();
  auto grouping = GroupingAt(retail.mo, retail.product_dim, retail.category);
  grouping[retail.store_dim] = retail.city;
  ExpectParallelMatchesSequential(
      retail.mo, SpecFor(AggFunction::Sum(retail.amount_dim), grouping));
}

TEST(ExecutorDifferentialTest, RetailExpectedCounts) {
  RetailMo retail = BuildRetail();
  AggregateSpec spec =
      SpecFor(AggFunction::SetCount(),
              GroupingAt(retail.mo, retail.product_dim, retail.category));
  spec.expected_counts = true;
  ExpectParallelMatchesSequential(retail.mo, spec);
}

TEST(ExecutorDifferentialTest, NonStrictClinicalFallsBackAndMatches) {
  // Non-strict family membership and mixed-granularity registrations:
  // the parallel engine must refuse (Section 3.4) and the result must
  // still be byte-identical.
  ClinicalMo clinical = BuildClinical();
  for (CategoryTypeIndex level : {clinical.family, clinical.group}) {
    ExpectParallelMatchesSequential(
        clinical.mo,
        SpecFor(AggFunction::SetCount(),
                GroupingAt(clinical.mo, clinical.diagnosis_dim, level)));
  }
}

TEST(ExecutorDifferentialTest, ClinicalResidenceGrouping) {
  ClinicalMo clinical = BuildClinical();
  for (CategoryTypeIndex level : {clinical.county, clinical.region}) {
    ExpectParallelMatchesSequential(
        clinical.mo,
        SpecFor(AggFunction::SetCount(),
                GroupingAt(clinical.mo, clinical.residence_dim, level)));
  }
}

TEST(ExecutorDifferentialTest, RandomizedWorkloadSweep) {
  // Property sweep: across seeds and sizes, every function/grouping
  // combination must agree between the engines.
  for (std::uint32_t seed : {1u, 13u, 99u}) {
    RetailMo retail = BuildRetail(seed, /*purchases=*/128);
    for (CategoryTypeIndex level : {retail.category, retail.department}) {
      auto grouping = GroupingAt(retail.mo, retail.product_dim, level);
      ExpectParallelMatchesSequential(
          retail.mo, SpecFor(AggFunction::SetCount(), grouping));
      ExpectParallelMatchesSequential(
          retail.mo, SpecFor(AggFunction::Sum(retail.amount_dim), grouping));
      ExpectParallelMatchesSequential(
          retail.mo, SpecFor(AggFunction::Min(retail.price_dim), grouping));
    }
  }
}

// ---- Counters -------------------------------------------------------------

TEST(ExecutorCountersTest, StrictWorkloadRunsParallel) {
  RetailMo retail = BuildRetail();
  ExecContext ctx(8, /*min_facts=*/1);
  auto result = AggregateFormation(
      retail.mo,
      SpecFor(AggFunction::Sum(retail.amount_dim),
              GroupingAt(retail.mo, retail.product_dim, retail.category)),
      &ctx);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(ctx.stats.parallel_runs, 1u);
  EXPECT_EQ(ctx.stats.sequential_fallbacks, 0u);
  EXPECT_EQ(ctx.stats.partitions, 8u);
  EXPECT_GT(ctx.stats.tasks, 0u);
}

TEST(ExecutorCountersTest, NonStrictWorkloadFallsBack) {
  ClinicalMo clinical = BuildClinical();
  ExecContext ctx(8, /*min_facts=*/1);
  auto result = AggregateFormation(
      clinical.mo,
      SpecFor(AggFunction::SetCount(),
              GroupingAt(clinical.mo, clinical.diagnosis_dim,
                         clinical.group)),
      &ctx);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(ctx.stats.parallel_runs, 0u);
  EXPECT_GE(ctx.stats.sequential_fallbacks, 1u);
  EXPECT_EQ(ctx.stats.partitions, 0u);
}

TEST(ExecutorCountersTest, SmallInputStaysSequential) {
  RetailMo retail = BuildRetail(7, /*purchases=*/50);
  ExecContext ctx(8, /*min_facts=*/4096);
  auto result = AggregateFormation(
      retail.mo,
      SpecFor(AggFunction::Sum(retail.amount_dim),
              GroupingAt(retail.mo, retail.product_dim, retail.category)),
      &ctx);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(ctx.stats.parallel_runs, 0u);
  EXPECT_EQ(ctx.stats.sequential_fallbacks, 0u);
}

// ---- Determinism ----------------------------------------------------------

TEST(ExecutorDeterminismTest, FiftyParallelRunsAreByteIdentical) {
  RetailMo retail = BuildRetail();
  AggregateSpec spec =
      SpecFor(AggFunction::Sum(retail.amount_dim),
              GroupingAt(retail.mo, retail.product_dim, retail.category));
  std::string reference;
  for (int run = 0; run < 50; ++run) {
    ExecContext ctx(8, /*min_facts=*/1);
    auto result = AggregateFormation(retail.mo, spec, &ctx);
    ASSERT_TRUE(result.ok()) << "run " << run << ": " << result.status();
    ASSERT_EQ(ctx.stats.parallel_runs, 1u) << "run " << run;
    auto bytes = io::WriteMo(*result);
    ASSERT_TRUE(bytes.ok()) << bytes.status();
    if (run == 0) {
      reference = *bytes;
    } else {
      ASSERT_EQ(*bytes, reference) << "run " << run << " diverged";
    }
  }
}

// ---- Relational group-by --------------------------------------------------

relational::Relation RandomRelation(std::uint32_t seed, std::size_t rows) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<std::int64_t> key_dist(0, 12);
  std::uniform_real_distribution<double> value_dist(-100.0, 100.0);
  std::uniform_int_distribution<int> null_dist(0, 9);
  relational::Relation r({"k1", "k2", "v", "w"});
  for (std::size_t i = 0; i < rows; ++i) {
    relational::Tuple tuple;
    tuple.push_back(relational::Value(key_dist(rng)));
    tuple.push_back(relational::Value(std::string(
        key_dist(rng) % 2 == 0 ? "even" : "odd")));
    tuple.push_back(null_dist(rng) == 0
                        ? relational::Value::Null()
                        : relational::Value(value_dist(rng)));
    tuple.push_back(relational::Value(static_cast<std::int64_t>(i % 17)));
    EXPECT_TRUE(r.Insert(std::move(tuple)).ok());
  }
  return r;
}

TEST(RelationalParallelTest, GroupByMatchesSequentialAcrossThreads) {
  using relational::AggregateTerm;
  const std::vector<AggregateTerm> terms = {
      {AggregateTerm::Func::kCountStar, "", "n"},
      {AggregateTerm::Func::kCount, "v", "n_v"},
      {AggregateTerm::Func::kCountDistinct, "w", "w_distinct"},
      {AggregateTerm::Func::kSum, "v", "v_sum"},
      {AggregateTerm::Func::kAvg, "v", "v_avg"},
      {AggregateTerm::Func::kMin, "v", "v_min"},
      {AggregateTerm::Func::kMax, "w", "w_max"},
  };
  for (std::uint32_t seed : {3u, 21u}) {
    relational::Relation r = RandomRelation(seed, 500);
    auto sequential = relational::Aggregate(r, {"k1", "k2"}, terms);
    ASSERT_TRUE(sequential.ok()) << sequential.status();
    for (std::size_t threads : {1u, 2u, 8u}) {
      ExecContext ctx(threads, /*min_facts=*/1);
      auto parallel = relational::Aggregate(r, {"k1", "k2"}, terms, &ctx);
      ASSERT_TRUE(parallel.ok())
          << "threads=" << threads << ": " << parallel.status();
      EXPECT_TRUE(*parallel == *sequential)
          << "relation differs at threads=" << threads << ", seed=" << seed;
    }
  }
}

TEST(RelationalParallelTest, ParallelCountersAdvance) {
  relational::Relation r = RandomRelation(5, 300);
  ExecContext ctx(4, /*min_facts=*/1);
  auto result = relational::Aggregate(
      r, {"k1"},
      {{relational::AggregateTerm::Func::kCountStar, "", "n"}}, &ctx);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(ctx.stats.parallel_runs, 1u);
  EXPECT_EQ(ctx.stats.partitions, 4u);
}

}  // namespace
}  // namespace mddc
