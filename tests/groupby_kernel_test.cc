#include "engine/groupby_kernel.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "algebra/operators.h"
#include "engine/executor.h"
#include "engine/rollup_index.h"
#include "fixtures.h"
#include "io/serialize.h"
#include "relational/algebra.h"
#include "workload/clinical_generator.h"
#include "workload/retail_generator.h"

// Coverage for the dense-slot / flat-hash group-by kernels
// (docs/groupby_kernel.md): differential proof against the context-free
// ordered-map baseline over schemas forcing each rung of the fallback
// ladder, exact behaviour at the slot-threshold boundary, 50x
// byte-identity at 1/2/8 threads through the dense kernel, the
// NaN-payload result-interning regression, and the relational flat-hash
// engine against its own baseline.

namespace mddc {
namespace {

using testing_fixtures::During;

RetailMo BuildRetail(std::uint32_t seed = 7, std::size_t purchases = 300) {
  RetailWorkloadParams params;
  params.seed = seed;
  params.num_purchases = purchases;
  auto workload =
      GenerateRetailWorkload(params, std::make_shared<FactRegistry>());
  return std::move(workload).ValueOrDie();
}

ClinicalMo BuildClinical(std::uint32_t seed = 42,
                         std::size_t patients = 150) {
  ClinicalWorkloadParams params;
  params.seed = seed;
  params.num_patients = patients;
  auto workload =
      GenerateClinicalWorkload(params, std::make_shared<FactRegistry>());
  return std::move(workload).ValueOrDie();
}

std::vector<CategoryTypeIndex> GroupingAt(const MdObject& mo,
                                          std::size_t dim,
                                          CategoryTypeIndex category) {
  std::vector<CategoryTypeIndex> grouping;
  for (std::size_t i = 0; i < mo.dimension_count(); ++i) {
    grouping.push_back(i == dim ? category : mo.dimension(i).type().top());
  }
  return grouping;
}

AggregateSpec SpecFor(const AggFunction& function,
                      std::vector<CategoryTypeIndex> grouping) {
  return AggregateSpec{function, std::move(grouping),
                       ResultDimensionSpec::Auto(), kNowChronon,
                       /*enforce_aggregation_types=*/true};
}

std::string BaselineBytes(const MdObject& mo, const AggregateSpec& spec) {
  auto baseline = AggregateFormation(mo, spec);
  EXPECT_TRUE(baseline.ok()) << baseline.status();
  auto bytes = io::WriteMo(*baseline);
  EXPECT_TRUE(bytes.ok());
  return *bytes;
}

// ---- Engine-selection ladder, differential against the baseline -----------

TEST(GroupByKernelTest, StrictSchemaRunsDenseAndMatchesBaseline) {
  RetailMo retail = BuildRetail();
  AggregateSpec spec =
      SpecFor(AggFunction::Sum(retail.amount_dim),
              GroupingAt(retail.mo, retail.product_dim, retail.category));
  const std::string baseline = BaselineBytes(retail.mo, spec);

  ExecContext ctx(2, /*min_facts=*/1);
  auto result = AggregateFormation(retail.mo, spec, &ctx);
  ASSERT_TRUE(result.ok()) << result.status();
  // Strict, non-temporal product hierarchy: every grouping dimension is
  // flat-table covered (or at top) and the slot space is tiny.
  EXPECT_EQ(ctx.stats.dense_groupby_runs, 1u);
  EXPECT_EQ(ctx.stats.flat_hash_runs, 0u);
  EXPECT_EQ(ctx.stats.dense_slot_fallbacks, 0u);
  auto bytes = io::WriteMo(*result);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, baseline);
}

TEST(GroupByKernelTest, NonStrictSchemaUsesFlatHashAndMatchesBaseline) {
  ClinicalMo clinical = BuildClinical();
  AggregateSpec spec = SpecFor(
      AggFunction::SetCount(),
      GroupingAt(clinical.mo, clinical.diagnosis_dim, clinical.family));
  const std::string baseline = BaselineBytes(clinical.mo, spec);

  ExecContext ctx(2, /*min_facts=*/1);
  auto result = AggregateFormation(clinical.mo, spec, &ctx);
  ASSERT_TRUE(result.ok()) << result.status();
  // The non-strict, temporal diagnosis hierarchy fails the flat-table
  // gate, so the dense engine cannot compose slots.
  EXPECT_GT(ctx.stats.index_fallbacks, 0u);
  EXPECT_EQ(ctx.stats.dense_groupby_runs, 0u);
  EXPECT_EQ(ctx.stats.flat_hash_runs, 1u);
  EXPECT_EQ(ctx.stats.dense_slot_fallbacks, 0u);
  auto bytes = io::WriteMo(*result);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, baseline);
}

TEST(GroupByKernelTest, TemporalEdgeForcesFlatHashAndMatchesBaseline) {
  // One temporal containment edge in an otherwise strict hierarchy fails
  // the snapshot's flat-table gate — a different fallback cause than
  // non-strictness, same flat-hash rung.
  RetailMo retail = BuildRetail();
  Dimension& products = retail.mo.dimension_mutable(retail.product_dim);
  const ValueId category_value = products.ValuesIn(retail.category).front();
  ASSERT_TRUE(products.AddValue(retail.product, ValueId(999983)).ok());
  ASSERT_TRUE(products
                  .AddOrder(ValueId(999983), category_value,
                            During("[01/01/80-NOW]"))
                  .ok());
  AggregateSpec spec =
      SpecFor(AggFunction::Sum(retail.amount_dim),
              GroupingAt(retail.mo, retail.product_dim, retail.category));
  const std::string baseline = BaselineBytes(retail.mo, spec);

  ExecContext ctx(2, /*min_facts=*/1);
  auto result = AggregateFormation(retail.mo, spec, &ctx);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(ctx.stats.index_fallbacks, 0u);
  EXPECT_EQ(ctx.stats.dense_groupby_runs, 0u);
  EXPECT_EQ(ctx.stats.flat_hash_runs, 1u);
  auto bytes = io::WriteMo(*result);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, baseline);
}

// ---- Slot-threshold boundary ----------------------------------------------

TEST(GroupByKernelTest, ThresholdBoundaryExactFitStaysDense) {
  RetailMo retail = BuildRetail();
  AggregateSpec spec =
      SpecFor(AggFunction::Sum(retail.amount_dim),
              GroupingAt(retail.mo, retail.product_dim, retail.category));
  const std::string baseline = BaselineBytes(retail.mo, spec);
  // Only the product dimension contributes digits (the rest group at
  // top), so the slot space is exactly the category's cardinality.
  const std::uint64_t slots = retail.mo.dimension(retail.product_dim)
                                  .ValuesIn(retail.category)
                                  .size();
  ASSERT_GT(slots, 1u);

  ExecContext exact(2, /*min_facts=*/1);
  exact.max_dense_groupby_slots = slots;
  auto at_limit = AggregateFormation(retail.mo, spec, &exact);
  ASSERT_TRUE(at_limit.ok()) << at_limit.status();
  EXPECT_EQ(exact.stats.dense_groupby_runs, 1u);
  EXPECT_EQ(exact.stats.dense_slot_fallbacks, 0u);
  auto exact_bytes = io::WriteMo(*at_limit);
  ASSERT_TRUE(exact_bytes.ok());
  EXPECT_EQ(*exact_bytes, baseline);

  ExecContext over(2, /*min_facts=*/1);
  over.max_dense_groupby_slots = slots - 1;
  auto one_over = AggregateFormation(retail.mo, spec, &over);
  ASSERT_TRUE(one_over.ok()) << one_over.status();
  EXPECT_EQ(over.stats.dense_groupby_runs, 0u);
  EXPECT_EQ(over.stats.dense_slot_fallbacks, 1u);
  EXPECT_EQ(over.stats.flat_hash_runs, 1u);
  auto over_bytes = io::WriteMo(*one_over);
  ASSERT_TRUE(over_bytes.ok());
  EXPECT_EQ(*over_bytes, baseline);
}

// ---- Repeated-run byte-identity across thread counts ----------------------

TEST(GroupByKernelTest, FiftyDenseRunsAreByteIdenticalAcrossThreads) {
  RetailMo retail = BuildRetail();
  AggregateSpec spec =
      SpecFor(AggFunction::Sum(retail.price_dim),
              GroupingAt(retail.mo, retail.store_dim, retail.city));
  const std::string baseline = BaselineBytes(retail.mo, spec);

  for (std::size_t threads : {1u, 2u, 8u}) {
    for (int run = 0; run < 50; ++run) {
      ExecContext ctx(threads, /*min_facts=*/1);
      auto result = AggregateFormation(retail.mo, spec, &ctx);
      ASSERT_TRUE(result.ok()) << result.status();
      ASSERT_EQ(ctx.stats.dense_groupby_runs, 1u);
      auto bytes = io::WriteMo(*result);
      ASSERT_TRUE(bytes.ok());
      ASSERT_EQ(*bytes, baseline)
          << "dense kernel diverged at threads=" << threads
          << " run=" << run;
    }
  }
}

TEST(GroupByKernelTest, FiftyFlatHashRunsAreByteIdenticalAcrossThreads) {
  RetailMo retail = BuildRetail();
  AggregateSpec spec =
      SpecFor(AggFunction::Sum(retail.amount_dim),
              GroupingAt(retail.mo, retail.product_dim, retail.category));
  const std::string baseline = BaselineBytes(retail.mo, spec);

  for (std::size_t threads : {1u, 2u, 8u}) {
    for (int run = 0; run < 50; ++run) {
      ExecContext ctx(threads, /*min_facts=*/1);
      ctx.max_dense_groupby_slots = 0;  // force the flat-hash engine
      auto result = AggregateFormation(retail.mo, spec, &ctx);
      ASSERT_TRUE(result.ok()) << result.status();
      ASSERT_EQ(ctx.stats.flat_hash_runs, 1u);
      ASSERT_EQ(ctx.stats.dense_slot_fallbacks, 1u);
      auto bytes = io::WriteMo(*result);
      ASSERT_TRUE(bytes.ok());
      ASSERT_EQ(*bytes, baseline)
          << "flat-hash kernel diverged at threads=" << threads
          << " run=" << run;
    }
  }
}

// ---- Result-value interning regression ------------------------------------

/// Two distinct doubles whose FormatDouble texts collide (NaNs with
/// different payloads both print "nan") must still intern to two distinct
/// result values: interning is keyed by bit pattern, the text is
/// display-only.
TEST(GroupByKernelTest, DistinctResultsWithIdenticalFormattingDoNotCollide) {
  const double nan_a = std::strtod("nan(0x1)", nullptr);
  const double nan_b = std::strtod("nan(0x2)", nullptr);
  if (std::bit_cast<std::uint64_t>(nan_a) ==
      std::bit_cast<std::uint64_t>(nan_b)) {
    GTEST_SKIP() << "platform strtod does not preserve NaN payloads";
  }

  // One grouping dimension with two bottom values, one measure dimension
  // whose per-group sums are the two payload-distinct NaNs.
  DimensionTypeBuilder group_builder("Group");
  group_builder.AddCategory("Key", AggregationType::kConstant);
  Dimension group_dim(std::move(group_builder.Build()).ValueOrDie());
  CategoryTypeIndex key = group_dim.type().bottom();
  ASSERT_TRUE(group_dim.AddValue(key, ValueId(1)).ok());
  ASSERT_TRUE(group_dim.AddValue(key, ValueId(2)).ok());

  DimensionTypeBuilder measure_builder("Measure");
  measure_builder.AddCategory("Reading", AggregationType::kSum);
  Dimension measure_dim(std::move(measure_builder.Build()).ValueOrDie());
  CategoryTypeIndex reading = measure_dim.type().bottom();
  Representation& rep = measure_dim.RepresentationFor(reading, "Value");
  ASSERT_TRUE(measure_dim.AddValue(reading, ValueId(10)).ok());
  ASSERT_TRUE(measure_dim.AddValue(reading, ValueId(11)).ok());
  ASSERT_TRUE(rep.Set(ValueId(10), "nan(0x1)").ok());
  ASSERT_TRUE(rep.Set(ValueId(11), "nan(0x2)").ok());

  auto registry = std::make_shared<FactRegistry>();
  MdObject mo("Sample", {group_dim, measure_dim}, registry);
  FactId f1 = registry->Atom(1);
  FactId f2 = registry->Atom(2);
  ASSERT_TRUE(mo.AddFact(f1).ok());
  ASSERT_TRUE(mo.AddFact(f2).ok());
  ASSERT_TRUE(mo.Relate(0, f1, ValueId(1)).ok());
  ASSERT_TRUE(mo.Relate(0, f2, ValueId(2)).ok());
  ASSERT_TRUE(mo.Relate(1, f1, ValueId(10)).ok());
  ASSERT_TRUE(mo.Relate(1, f2, ValueId(11)).ok());

  AggregateSpec spec = SpecFor(AggFunction::Sum(1),
                               {key, mo.dimension(1).type().top()});
  auto check = [&](ExecContext* exec, const char* engine) {
    auto result = AggregateFormation(mo, spec, exec);
    ASSERT_TRUE(result.ok()) << result.status();
    const std::size_t result_dim = result->dimension_count() - 1;
    const CategoryTypeIndex bottom =
        result->dimension(result_dim).type().bottom();
    // Two groups, two distinct NaN sums: two result values, not one.
    EXPECT_EQ(result->fact_count(), 2u);
    EXPECT_EQ(result->dimension(result_dim).ValuesIn(bottom).size(), 2u)
        << engine;
  };
  check(nullptr, "baseline engine");
  ExecContext ctx(1, /*min_facts=*/1);
  check(&ctx, "kernel engine");
}

// ---- Relational flat-hash engine ------------------------------------------

TEST(GroupByKernelTest, RelationalFlatHashMatchesBaselineAndCounts) {
  using relational::AggregateTerm;
  relational::Relation r({"k", "v"});
  for (std::int64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(r.Insert({relational::Value(i % 13),
                          relational::Value(static_cast<double>(i) * 0.5)})
                    .ok());
  }
  const std::vector<AggregateTerm> terms = {
      {AggregateTerm::Func::kCountStar, "", "n"},
      {AggregateTerm::Func::kSum, "v", "v_sum"},
  };
  auto baseline = relational::Aggregate(r, {"k"}, terms);
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  // Sequential flat-hash run: below the parallel threshold but with a
  // context, so the open-addressing engine replaces the map.
  ExecContext ctx;
  ASSERT_FALSE(ctx.WantsParallel(r.tuples().size()));
  auto flat = relational::Aggregate(r, {"k"}, terms, &ctx);
  ASSERT_TRUE(flat.ok()) << flat.status();
  EXPECT_EQ(ctx.stats.flat_hash_runs, 1u);
  EXPECT_EQ(ctx.stats.parallel_runs, 0u);
  EXPECT_TRUE(*flat == *baseline);
}

// ---- Shared building blocks -----------------------------------------------

TEST(GroupByKernelTest, FlatHashGroupIndexSurvivesRehashing) {
  // Intern far more keys than the initial capacity so several rehashes
  // run, then verify every key still finds its original ordinal.
  FlatHashGroupIndex index;
  std::vector<ValueId> keys;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    keys.push_back(ValueId(i * 7 + 1));
  }
  for (std::uint32_t i = 0; i < keys.size(); ++i) {
    bool inserted = false;
    const std::uint32_t ordinal = index.FindOrInsert(
        HashValueIds(&keys[i], 1), i,
        [&](std::uint32_t existing) { return keys[existing] == keys[i]; },
        &inserted);
    EXPECT_TRUE(inserted);
    EXPECT_EQ(ordinal, i);
  }
  EXPECT_EQ(index.size(), keys.size());
  for (std::uint32_t i = 0; i < keys.size(); ++i) {
    bool inserted = false;
    const std::uint32_t ordinal = index.FindOrInsert(
        HashValueIds(&keys[i], 1), 0xdeadbeefu,
        [&](std::uint32_t existing) { return keys[existing] == keys[i]; },
        &inserted);
    EXPECT_FALSE(inserted);
    EXPECT_EQ(ordinal, i);
  }
}

}  // namespace
}  // namespace mddc
