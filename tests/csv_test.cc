#include <gtest/gtest.h>

#include "algebra/derived.h"
#include "common/date.h"
#include "core/properties.h"
#include "io/csv.h"

namespace mddc {
namespace io {
namespace {

constexpr char kResidenceCsv[] =
    "area,county,region\n"
    "Centrum,North County,Capital\n"
    "Vestby,West County,Capital\n"
    "Harbor,North County,Capital\n";

constexpr char kDiagnosisCsv[] =
    "low,family\n"
    "O24.0,E10\n"
    "O24.1,E11\n";

constexpr char kFactCsv[] =
    "patient,diagnosis,area,from,to,p\n"
    "1,O24.0,Centrum,01/01/1989,NOW,\n"
    "2,O24.0,Vestby,01/01/1982,NOW,0.9\n"
    "2,O24.1,Vestby,01/01/1985,31/12/1990,\n";

TEST(CsvParseTest, TypesAndQuoting) {
  auto relation = ParseCsv(
      "a,b,c\n"
      "1,2.5,\"hello, \"\"world\"\"\"\n"
      ",x,\n");
  ASSERT_TRUE(relation.ok()) << relation.status();
  ASSERT_EQ(relation->size(), 2u);
  ASSERT_EQ(relation->arity(), 3u);
  // First row: int, double, quoted string with embedded comma and quotes.
  const auto& rows = relation->tuples();
  // Sorted set order: null-first row sorts before the 1-row.
  EXPECT_TRUE(rows[1][0] == relational::Value(std::int64_t{1}) ||
              rows[0][0] == relational::Value(std::int64_t{1}));
  bool found = false;
  for (const auto& row : rows) {
    if (row[2] == relational::Value(std::string("hello, \"world\""))) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(CsvParseTest, Errors) {
  EXPECT_FALSE(ParseCsv("").ok());
  EXPECT_FALSE(ParseCsv("a,b\n1\n").ok());        // arity mismatch
  EXPECT_FALSE(ParseCsv("a\n\"unterminated\n").ok());
}

CsvFactSpec ClinicalSpec() {
  CsvFactSpec spec;
  spec.fact_type = "Patient";
  spec.fact_id_column = "patient";
  spec.characterizations = {{"Diagnosis", "diagnosis"},
                            {"Residence", "area"}};
  spec.valid_from_column = "from";
  spec.valid_to_column = "to";
  spec.probability_column = "p";
  spec.probability_dimension = "Diagnosis";
  return spec;
}

std::vector<CsvHierarchySpec> ClinicalHierarchies() {
  return {{"Diagnosis", {"low", "family"}},
          {"Residence", {"area", "county", "region"}}};
}

TEST(CsvImportTest, BuildsValidTemporalMo) {
  auto mo = MoFromCsv(kFactCsv,
                      {{"Diagnosis", kDiagnosisCsv},
                       {"Residence", kResidenceCsv}},
                      ClinicalHierarchies(), ClinicalSpec(),
                      std::make_shared<FactRegistry>());
  ASSERT_TRUE(mo.ok()) << mo.status();
  EXPECT_EQ(mo->fact_count(), 2u);
  EXPECT_EQ(mo->dimension_count(), 2u);
  EXPECT_EQ(mo->temporal_type(), TemporalType::kValidTime);
  EXPECT_TRUE(mo->Validate().ok());
  // Residence hierarchy: 3 areas, 2 counties, 1 region (+ top).
  EXPECT_EQ(mo->dimension(1).value_count(), 7u);
  EXPECT_TRUE(IsStrict(mo->dimension(1)));
  EXPECT_TRUE(IsPartitioning(mo->dimension(1)));
}

TEST(CsvImportTest, CharacterizationsAndProbabilities) {
  auto mo = MoFromCsv(kFactCsv,
                      {{"Diagnosis", kDiagnosisCsv},
                       {"Residence", kResidenceCsv}},
                      ClinicalHierarchies(), ClinicalSpec(),
                      std::make_shared<FactRegistry>());
  ASSERT_TRUE(mo.ok());
  FactId p2 = mo->registry()->Atom(2);
  auto pairs = mo->relation(0).ForFact(p2);
  ASSERT_EQ(pairs.size(), 2u);  // O24.0 and O24.1
  bool saw_uncertain = false;
  for (const auto* entry : pairs) {
    if (entry->prob == 0.9) saw_uncertain = true;
  }
  EXPECT_TRUE(saw_uncertain);
  // Valid times parsed: the O24.1 pair ends 31/12/1990.
  Chronon in_1995 = *ParseDate("01/06/95");
  std::size_t alive = 0;
  for (const auto* entry : pairs) {
    if (entry->life.valid.Contains(in_1995)) ++alive;
  }
  EXPECT_EQ(alive, 1u);
}

TEST(CsvImportTest, RollUpByCountyWorks) {
  auto mo = MoFromCsv(kFactCsv,
                      {{"Diagnosis", kDiagnosisCsv},
                       {"Residence", kResidenceCsv}},
                      ClinicalHierarchies(), ClinicalSpec(),
                      std::make_shared<FactRegistry>());
  ASSERT_TRUE(mo.ok());
  CategoryTypeIndex county = *mo->dimension(1).type().Find("county");
  auto rows = SqlAggregate(*mo, {SqlGroupBy{1, county, "Name"}},
                           AggFunction::SetCount());
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 2u);
  // Patient 1 in North County (Centrum), patient 2 in West (Vestby).
  EXPECT_EQ((*rows)[0].group[0], "North County");
  EXPECT_DOUBLE_EQ((*rows)[0].value, 1.0);
  EXPECT_EQ((*rows)[1].group[0], "West County");
  EXPECT_DOUBLE_EQ((*rows)[1].value, 1.0);
}

TEST(CsvImportTest, MeasureColumns) {
  const char* fact_csv =
      "sale,product,amount\n"
      "1,widget,5\n"
      "2,widget,3\n"
      "3,gadget,10\n";
  const char* product_csv =
      "product,category\n"
      "widget,tools\n"
      "gadget,toys\n";
  CsvFactSpec spec;
  spec.fact_type = "Sale";
  spec.fact_id_column = "sale";
  spec.characterizations = {{"Product", "product"}};
  spec.measure_columns = {"amount"};
  auto mo = MoFromCsv(fact_csv, {{"Product", product_csv}},
                      {{"Product", {"product", "category"}}}, spec,
                      std::make_shared<FactRegistry>());
  ASSERT_TRUE(mo.ok()) << mo.status();
  EXPECT_EQ(mo->dimension_count(), 2u);
  CategoryTypeIndex category = *mo->dimension(0).type().Find("category");
  auto rows = SqlAggregate(*mo, {SqlGroupBy{0, category, "Name"}},
                           AggFunction::Sum(1));
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0].group[0], "tools");
  EXPECT_DOUBLE_EQ((*rows)[0].value, 8.0);
  EXPECT_EQ((*rows)[1].group[0], "toys");
  EXPECT_DOUBLE_EQ((*rows)[1].value, 10.0);
}

TEST(CsvImportTest, UnknownValueAndMissingCsvAreErrors) {
  const char* bad_fact = "patient,diagnosis,area,from,to,p\n"
                         "1,UNKNOWN,Centrum,01/01/1989,NOW,\n";
  auto unknown = MoFromCsv(bad_fact,
                           {{"Diagnosis", kDiagnosisCsv},
                            {"Residence", kResidenceCsv}},
                           ClinicalHierarchies(), ClinicalSpec(),
                           std::make_shared<FactRegistry>());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);

  auto missing = MoFromCsv(kFactCsv, {{"Diagnosis", kDiagnosisCsv}},
                           ClinicalHierarchies(), ClinicalSpec(),
                           std::make_shared<FactRegistry>());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(CsvImportTest, EmptyCellMeansUnknownCharacterization) {
  const char* fact_csv =
      "patient,diagnosis,area,from,to,p\n"
      "1,,Centrum,01/01/1989,NOW,\n";
  auto mo = MoFromCsv(fact_csv,
                      {{"Diagnosis", kDiagnosisCsv},
                       {"Residence", kResidenceCsv}},
                      ClinicalHierarchies(), ClinicalSpec(),
                      std::make_shared<FactRegistry>());
  ASSERT_TRUE(mo.ok()) << mo.status();
  auto pairs = mo->relation(0).entries();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].value, mo->dimension(0).top_value());
}

}  // namespace
}  // namespace io
}  // namespace mddc
