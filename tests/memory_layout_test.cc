#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "core/fact.h"
#include "core/fact_dim_relation.h"

namespace mddc {
namespace {

// ---- CSR by-fact span view ------------------------------------------------

std::vector<std::size_t> SpanToVector(const FactDimRelation& relation,
                                      FactId fact) {
  for (const FactDimRelation::FactSpan& span : relation.FactSpans()) {
    if (span.fact != fact) continue;
    const std::size_t* base = relation.SpanEntryIndexes().data();
    return std::vector<std::size_t>(base + span.begin, base + span.end);
  }
  return {};
}

FactDimRelation SmallRelation() {
  FactDimRelation relation;
  EXPECT_TRUE(relation.Add(FactId(2), ValueId(10)).ok());
  EXPECT_TRUE(relation.Add(FactId(1), ValueId(11)).ok());
  EXPECT_TRUE(relation.Add(FactId(2), ValueId(12)).ok());
  EXPECT_TRUE(relation.Add(FactId(3), ValueId(10)).ok());
  return relation;
}

TEST(FactDimRelationCsrTest, SpansMatchPerFactIndexAndAreSorted) {
  FactDimRelation relation = SmallRelation();
  const std::vector<FactDimRelation::FactSpan>& spans = relation.FactSpans();
  ASSERT_EQ(spans.size(), 3u);
  // Facts ascending, regardless of insertion order.
  EXPECT_TRUE(std::is_sorted(
      spans.begin(), spans.end(),
      [](const auto& a, const auto& b) { return a.fact < b.fact; }));
  for (const FactDimRelation::FactSpan& span : spans) {
    EXPECT_EQ(SpanToVector(relation, span.fact),
              relation.EntryIndexesForFact(span.fact))
        << "fact " << span.fact;
  }
}

TEST(FactDimRelationCsrTest, AddInvalidatesAndRebuilds) {
  FactDimRelation relation = SmallRelation();
  ASSERT_EQ(relation.FactSpans().size(), 3u);  // build the view
  ASSERT_TRUE(relation.Add(FactId(7), ValueId(10)).ok());
  const std::vector<FactDimRelation::FactSpan>& spans = relation.FactSpans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans.back().fact, FactId(7));
  EXPECT_EQ(SpanToVector(relation, FactId(7)),
            relation.EntryIndexesForFact(FactId(7)));
  // Coalescing Add (same pair again) also invalidates, then rebuilds to
  // the same shape.
  ASSERT_TRUE(relation.Add(FactId(7), ValueId(10)).ok());
  EXPECT_EQ(relation.FactSpans().size(), 4u);
}

TEST(FactDimRelationCsrTest, RestrictToFactsInvalidatesAndRebuilds) {
  FactDimRelation relation = SmallRelation();
  ASSERT_EQ(relation.FactSpans().size(), 3u);  // build the view
  relation.RestrictToFacts({FactId(2)});
  const std::vector<FactDimRelation::FactSpan>& spans = relation.FactSpans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].fact, FactId(2));
  EXPECT_EQ(spans[0].end - spans[0].begin, 2u);
  EXPECT_EQ(SpanToVector(relation, FactId(2)),
            relation.EntryIndexesForFact(FactId(2)));
}

TEST(FactDimRelationCsrTest, CopyGetsItsOwnView) {
  FactDimRelation relation = SmallRelation();
  relation.SealIndexes();
  FactDimRelation copy(relation);
  ASSERT_TRUE(copy.Add(FactId(9), ValueId(10)).ok());
  EXPECT_EQ(copy.FactSpans().size(), 4u);
  EXPECT_EQ(relation.FactSpans().size(), 3u);  // original untouched
}

TEST(FactDimRelationCsrTest, EntrySpanOfWrapsAVector) {
  const std::vector<std::size_t> list = {4, 8, 15};
  FactDimRelation::EntrySpan span = FactDimRelation::EntrySpan::Of(list);
  EXPECT_EQ(span.size(), 3u);
  EXPECT_FALSE(span.empty());
  EXPECT_EQ(span.front(), 4u);
  EXPECT_EQ(std::vector<std::size_t>(span.begin(), span.end()), list);
  EXPECT_TRUE(FactDimRelation::EntrySpan{}.empty());
}

// ---- FactRegistry flat-hash differential ----------------------------------

/// A deliberately naive ordered-map registry mirroring FactRegistry's id
/// assignment contract (dense ids in interning order, canonical sets).
/// The flat-hash implementation must agree with it on every id.
class ReferenceRegistry {
 public:
  FactId Atom(std::uint64_t key) {
    auto [it, inserted] = atoms_.try_emplace(key, FactId(next_));
    if (inserted) ++next_;
    return it->second;
  }
  FactId Pair(FactId a, FactId b) {
    auto [it, inserted] = pairs_.try_emplace(std::make_pair(a, b),
                                             FactId(next_));
    if (inserted) ++next_;
    return it->second;
  }
  FactId Set(std::vector<FactId> members) {
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()),
                  members.end());
    auto [it, inserted] = sets_.try_emplace(std::move(members),
                                            FactId(next_));
    if (inserted) ++next_;
    return it->second;
  }
  std::size_t size() const { return next_; }

 private:
  std::map<std::uint64_t, FactId> atoms_;
  std::map<std::pair<FactId, FactId>, FactId> pairs_;
  std::map<std::vector<FactId>, FactId> sets_;
  std::uint64_t next_ = 0;
};

/// Replays a deterministic mixed intern sequence against both
/// implementations, asserting id-for-id agreement.
void ReplayAndCompare(FactRegistry& registry, ReferenceRegistry& reference,
                      std::uint64_t seed, int operations) {
  std::uint64_t state = seed;
  auto next_random = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  std::vector<FactId> known;
  for (int op = 0; op < operations; ++op) {
    FactId got, want;
    switch (next_random() % 3) {
      case 0: {
        std::uint64_t key = next_random() % 64;  // dense: forces re-interns
        got = registry.Atom(key);
        want = reference.Atom(key);
        break;
      }
      case 1: {
        if (known.size() < 2) continue;
        FactId a = known[next_random() % known.size()];
        FactId b = known[next_random() % known.size()];
        got = registry.Pair(a, b);
        want = reference.Pair(a, b);
        break;
      }
      default: {
        std::vector<FactId> members;
        for (std::uint64_t i = 0, n = next_random() % 5; i < n; ++i) {
          if (!known.empty()) {
            members.push_back(known[next_random() % known.size()]);
          }
        }
        got = registry.Set(members);
        want = reference.Set(std::move(members));
        break;
      }
    }
    ASSERT_EQ(got, want) << "op " << op;
    known.push_back(got);
  }
  EXPECT_EQ(registry.size(), reference.size());
}

TEST(FactRegistryDifferentialTest, FlatHashMatchesOrderedMapReference) {
  FactRegistry registry;
  ReferenceRegistry reference;
  ReplayAndCompare(registry, reference, /*seed=*/0xfeedu, /*operations=*/2000);
}

TEST(FactRegistryDifferentialTest, ForkInternFlattenKeepsIdsStable) {
  auto root = std::make_shared<FactRegistry>();
  ReferenceRegistry reference;
  {
    ReplayAndCompare(*root, reference, /*seed=*/1u, /*operations=*/500);
  }
  // Fork: the overlay must resolve base terms to their original ids and
  // continue the id sequence for new terms — exactly what the single
  // reference registry does when simply replayed further.
  std::shared_ptr<FactRegistry> fork = FactRegistry::ForkOf(root);
  EXPECT_EQ(fork->fork_depth(), 1u);
  EXPECT_EQ(fork->size(), reference.size());
  ReplayAndCompare(*fork, reference, /*seed=*/2u, /*operations=*/500);

  // A second-generation fork, then flatten: ids must survive both.
  std::shared_ptr<FactRegistry> fork2 =
      FactRegistry::ForkOf(std::shared_ptr<const FactRegistry>(fork));
  ReplayAndCompare(*fork2, reference, /*seed=*/3u, /*operations=*/500);
  std::shared_ptr<FactRegistry> flat = fork2->Flatten();
  EXPECT_EQ(flat->fork_depth(), 0u);
  EXPECT_EQ(flat->size(), reference.size());
  // Every structure resolves identically pre- and post-flatten...
  for (std::uint64_t raw = 0; raw < flat->size(); ++raw) {
    auto before = fork2->Get(FactId(raw));
    auto after = flat->Get(FactId(raw));
    ASSERT_TRUE(before.ok() && after.ok()) << "id " << raw;
    EXPECT_TRUE(*before == *after) << "id " << raw;
  }
  // ...and further identical interning stays in agreement.
  ReplayAndCompare(*flat, reference, /*seed=*/4u, /*operations=*/500);
}

TEST(FactRegistryDifferentialTest, SiblingForksAssignTheSameNewIds) {
  auto root = std::make_shared<FactRegistry>();
  for (std::uint64_t key = 0; key < 100; ++key) (void)root->Atom(key);
  std::shared_ptr<const FactRegistry> frozen = root;
  std::shared_ptr<FactRegistry> left = FactRegistry::ForkOf(frozen);
  std::shared_ptr<FactRegistry> right = FactRegistry::ForkOf(frozen);
  // Shared history resolves to the same ids in both forks.
  EXPECT_EQ(left->Atom(42), right->Atom(42));
  // The same sequence of *new* terms assigns the same new ids.
  EXPECT_EQ(left->Atom(1000), right->Atom(1000));
  EXPECT_EQ(left->Pair(FactId(1), FactId(2)), right->Pair(FactId(1), FactId(2)));
  EXPECT_EQ(left->Set({FactId(3), FactId(4)}),
            right->Set({FactId(4), FactId(3), FactId(4)}));
}

}  // namespace
}  // namespace mddc
