#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "engine/executor.h"
#include "mdql/mdql.h"
#include "mdql/parser.h"
#include "serve/mdql_server.h"
#include "serve/mo_store.h"
#include "workload/clinical_generator.h"

// The incremental-ingestion differential (docs/ingestion.md): a store
// whose epochs are published through AppendBatch's patched sealing —
// CSR tails spliced, rollup snapshots patched, warm pre-aggregates
// delta-folded — must render every query byte-identically to a store
// that re-seals every epoch from scratch through Mutate, at any thread
// count, including across a structural mutation that forces the
// fast path to fall back mid-stream.

namespace mddc {
namespace {

ClinicalWorkloadParams SmallParams(std::size_t patients) {
  ClinicalWorkloadParams params;
  params.seed = 17;
  params.num_patients = patients;
  return params;
}

ClinicalMo Build(const ClinicalWorkloadParams& params) {
  auto workload =
      GenerateClinicalWorkload(params, std::make_shared<FactRegistry>());
  EXPECT_TRUE(workload.ok()) << workload.status();
  return std::move(workload).ValueOrDie();
}

/// The read set replayed after every batch: rollups at three levels, a
/// temporal slice, a probabilistic threshold and the star-join shape, so
/// the differential covers every fused/interpreted path over the
/// patched snapshot.
std::vector<std::string> ReadSet() {
  return {
      "SELECT COUNT FROM clinical BY Diagnosis.\"Diagnosis Group\"",
      "SELECT COUNT FROM clinical BY Residence.Region",
      "SELECT COUNT FROM clinical BY Diagnosis.\"Low-level Diagnosis\""
      " WHERE Diagnosis.\"Diagnosis Family\" = 'F0'",
      "SELECT COUNT FROM clinical BY Diagnosis.\"Diagnosis Group\""
      " ASOF '01/01/95'",
      "SELECT COUNT FROM clinical BY Residence.Region"
      " WHERE PROB(Diagnosis.\"Diagnosis Family\" = 'F1') >= 0.7",
      "SELECT COUNT FROM clinical"
      " BY Diagnosis.\"Diagnosis Group\", Residence.Region"
      " WHERE Residence.Region = 'R0' OR Residence.County = 'CO1'",
  };
}

std::vector<CategoryTypeIndex> RegionGrouping(const ClinicalMo& clinical) {
  std::vector<CategoryTypeIndex> grouping(clinical.mo.dimension_count());
  for (std::size_t i = 0; i < clinical.mo.dimension_count(); ++i) {
    grouping[i] = clinical.mo.dimension(i).type().top();
  }
  grouping[clinical.residence_dim] = clinical.region;
  return grouping;
}

/// A bulk INSERT of `count` new patients over existing leaf values.
std::string BulkInsert(std::uint64_t base_key, std::size_t count,
                       std::size_t lows, std::size_t areas) {
  std::string statement = "INSERT INTO clinical";
  for (std::size_t b = 0; b < count; ++b) {
    const std::uint64_t key = base_key + b;
    statement += StrCat(
        b == 0 ? " " : ", ", "FACT ", key,
        " (Diagnosis.\"Low-level Diagnosis\" = 'L", key % lows, "'",
        b % 2 == 1 ? " PROB 0.8" : "", ", Residence.Area = 'A", key % areas,
        "')");
  }
  return statement;
}

/// Renders the read set on both stores at 1, 2 and 8 threads per query
/// and asserts byte identity.
void ExpectReadsMatch(serve::MoStore& incremental, serve::MoStore& rebuilt,
                      const std::string& context) {
  serve::MdqlServer inc_server(&incremental);
  serve::MdqlServer full_server(&rebuilt);
  for (std::size_t threads : {1u, 2u, 8u}) {
    serve::ServerSession inc = inc_server.Connect(threads);
    serve::ServerSession full = full_server.Connect(threads);
    for (const std::string& query : ReadSet()) {
      auto a = inc.Execute(query);
      auto b = full.Execute(query);
      ASSERT_TRUE(a.ok()) << context << ": " << query << "\n" << a.status();
      ASSERT_TRUE(b.ok()) << context << ": " << query << "\n" << b.status();
      EXPECT_EQ(a->ToString(), b->ToString())
          << context << " at " << threads << " threads: " << query;
    }
  }
}

TEST(IngestDifferentialTest, AppendedEpochsMatchFullRebuild) {
  const ClinicalWorkloadParams params = SmallParams(300);
  ClinicalMo clinical = Build(params);
  const std::size_t lows = clinical.num_low_level;
  const std::size_t areas =
      params.num_regions * params.counties_per_region * params.areas_per_county;

  MdObject seed_inc = clinical.mo;
  MdObject seed_full = clinical.mo;
  serve::MoStore incremental;
  serve::MoStore rebuilt;
  ASSERT_TRUE(incremental.Publish("clinical", std::move(seed_inc)).ok());
  ASSERT_TRUE(rebuilt.Publish("clinical", std::move(seed_full)).ok());

  // Warm pre-aggregates on BOTH stores: the incremental one delta-folds
  // them on every appended epoch, the rebuilt one rescans — the Peek'd
  // and queried results must agree anyway.
  const auto grouping = RegionGrouping(clinical);
  ASSERT_TRUE(incremental
                  .WarmAggregate("clinical", AggFunction::SetCount(), grouping)
                  .ok());
  ASSERT_TRUE(
      rebuilt.WarmAggregate("clinical", AggFunction::SetCount(), grouping)
          .ok());

  ExecStats append_stats;
  const std::size_t kBatches = 5;
  for (std::size_t batch = 0; batch < kBatches; ++batch) {
    const std::string statement =
        BulkInsert(91000000 + batch * 100, 4 + batch, lows, areas);
    auto parsed = mdql::Parse(statement);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    ASSERT_TRUE(parsed->insert.has_value());

    // Batches 1 and 3 also grow the Diagnosis dimension by a fresh leaf
    // under an existing family and characterize one more new patient by
    // it — the "new leaf values are fine" clause of the append gate,
    // and the path that patches (rather than reuses) the rollup
    // snapshot.
    const bool grow_leaf = batch == 1 || batch == 3;
    const std::uint64_t leaf_key = 92000000 + batch;
    auto appender = [&](MdObject& draft) -> Status {
      MDDC_RETURN_NOT_OK(mdql::ApplyInsert(draft, *parsed->insert).status());
      if (!grow_leaf) return Status::OK();
      Dimension& dim = draft.dimension_mutable(clinical.diagnosis_dim);
      // AddValueAuto keeps the value append-classified (an explicit id
      // below the dimension's high-water mark would count as structural
      // and demote the batch); both stores run the identical appender on
      // identical drafts, so the auto ids — and their rendered id:<raw>
      // labels — agree byte-for-byte.
      MDDC_ASSIGN_OR_RETURN(const ValueId leaf,
                            dim.AddValueAuto(clinical.low_level));
      MDDC_RETURN_NOT_OK(
          dim.AddOrder(leaf, dim.ValuesIn(clinical.family).front()));
      const FactId fact = draft.registry()->Atom(leaf_key);
      MDDC_RETURN_NOT_OK(draft.AddFact(fact));
      MDDC_RETURN_NOT_OK(draft.Relate(clinical.diagnosis_dim, fact, leaf));
      return draft.CoverWithTop();
    };

    ASSERT_TRUE(incremental
                    .AppendBatch("clinical", appender, /*published_epoch=*/
                                 nullptr, &append_stats)
                    .ok())
        << "batch " << batch;
    ASSERT_TRUE(rebuilt.Mutate("clinical", appender).ok()) << "batch " << batch;

    ExpectReadsMatch(incremental, rebuilt, StrCat("batch ", batch));
  }

  // Every batch took the fast path...
  const serve::MoStore::Stats stats = incremental.CollectStats();
  EXPECT_EQ(stats.append_batches, kBatches);
  EXPECT_EQ(stats.append_fallbacks, 0u);
  // ...and the patched seal actually patched: CSR tails spliced every
  // batch, rollups patched on the leaf-growing batches, warm
  // pre-aggregates delta-folded rather than rescanned.
  EXPECT_GT(append_stats.csr_tail_extends, 0u);
  EXPECT_GT(append_stats.rollup_patches, 0u);
  EXPECT_GT(append_stats.preagg_folds, 0u);

  // The warm entry is present (peekable without computing) on the
  // patched store's published snapshot.
  const auto snapshot = incremental.Pin();
  const serve::PublishedMo* entry = snapshot->Find("clinical");
  ASSERT_NE(entry, nullptr);
  ASSERT_NE(entry->preagg, nullptr);
  EXPECT_NE(entry->preagg->Peek(AggFunction::SetCount(), grouping), nullptr);
}

TEST(IngestDifferentialTest, StructuralMutationMidStreamFallsBack) {
  const ClinicalWorkloadParams params = SmallParams(200);
  ClinicalMo clinical = Build(params);
  const std::size_t lows = clinical.num_low_level;
  const std::size_t areas =
      params.num_regions * params.counties_per_region * params.areas_per_county;

  MdObject seed_inc = clinical.mo;
  MdObject seed_full = clinical.mo;
  serve::MoStore incremental;
  serve::MoStore rebuilt;
  ASSERT_TRUE(incremental.Publish("clinical", std::move(seed_inc)).ok());
  ASSERT_TRUE(rebuilt.Publish("clinical", std::move(seed_full)).ok());
  const auto grouping = RegionGrouping(clinical);
  ASSERT_TRUE(incremental
                  .WarmAggregate("clinical", AggFunction::SetCount(), grouping)
                  .ok());
  ASSERT_TRUE(
      rebuilt.WarmAggregate("clinical", AggFunction::SetCount(), grouping)
          .ok());

  // Both stores receive the identical operation stream, the incremental
  // one always through AppendBatch — which must demote itself to a full
  // seal on the two structural operations and resume patching after.
  std::vector<std::function<Status(MdObject&)>> stream;
  auto insert_op = [&](std::uint64_t base, std::size_t count) {
    auto parsed = mdql::Parse(BulkInsert(base, count, lows, areas));
    EXPECT_TRUE(parsed.ok()) << parsed.status();
    stream.push_back([parsed = std::move(*parsed)](MdObject& draft) -> Status {
      return mdql::ApplyInsert(draft, *parsed.insert).status();
    });
  };
  insert_op(93000000, 4);
  insert_op(93000100, 3);
  // Structural op 1: DELETE one of the facts appended above.
  {
    auto parsed = mdql::Parse("DELETE FROM clinical FACT 93000001");
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    stream.push_back([parsed = std::move(*parsed)](MdObject& draft) -> Status {
      return mdql::ApplyDelete(draft, *parsed.del).status();
    });
  }
  insert_op(93000200, 4);
  // Structural op 2: re-characterize an already-published fact (a new
  // relation entry referencing an old fact fails the append gate).
  stream.push_back([&](MdObject& draft) -> Status {
    Dimension& dim = draft.dimension_mutable(clinical.diagnosis_dim);
    // The leaf itself is append-classified (auto id); the relation entry
    // for the long-published patient 1 is what fails the gate.
    MDDC_ASSIGN_OR_RETURN(const ValueId leaf,
                          dim.AddValueAuto(clinical.low_level));
    MDDC_RETURN_NOT_OK(
        dim.AddOrder(leaf, dim.ValuesIn(clinical.family).front()));
    return draft.Relate(clinical.diagnosis_dim, draft.registry()->Atom(1),
                        leaf);
  });
  insert_op(93000300, 5);

  for (std::size_t op = 0; op < stream.size(); ++op) {
    ASSERT_TRUE(incremental.AppendBatch("clinical", stream[op]).ok())
        << "op " << op;
    ASSERT_TRUE(rebuilt.Mutate("clinical", stream[op]).ok()) << "op " << op;
    ExpectReadsMatch(incremental, rebuilt, StrCat("op ", op));
  }

  const serve::MoStore::Stats stats = incremental.CollectStats();
  EXPECT_EQ(stats.append_batches, 4u);   // the four pure-append inserts
  EXPECT_EQ(stats.append_fallbacks, 2u);  // delete + old-fact re-relate
}

TEST(ServerSessionIngestTest, RoutesInsertsThroughAppendPathAndCachesPlans) {
  const ClinicalWorkloadParams params = SmallParams(150);
  ClinicalMo clinical = Build(params);
  const std::size_t lows = clinical.num_low_level;
  const std::size_t areas =
      params.num_regions * params.counties_per_region * params.areas_per_county;

  serve::MoStore store;
  serve::MdqlServer server(&store);
  ASSERT_TRUE(store.Publish("clinical", std::move(clinical.mo)).ok());
  serve::ServerSession session = server.Connect();

  // A bulk INSERT acks one row per fact and publishes ONE epoch through
  // the append fast path.
  const std::uint64_t epoch_before = store.epoch();
  auto ack = session.Execute(BulkInsert(94000000, 3, lows, areas));
  ASSERT_TRUE(ack.ok()) << ack.status();
  EXPECT_EQ(ack->rows.size(), 3u);
  EXPECT_EQ(store.epoch(), epoch_before + 1);
  EXPECT_EQ(store.CollectStats().append_batches, 1u);
  EXPECT_EQ(store.CollectStats().append_fallbacks, 0u);

  // DELETE routes through the full-rebuild writer and says so.
  auto del = session.Execute("DELETE FROM clinical FACT 94000001");
  ASSERT_TRUE(del.ok()) << del.status();
  ASSERT_EQ(del->rows.size(), 1u);
  EXPECT_NE(del->rows[0][2].find("full-rebuild"), std::string::npos);
  EXPECT_EQ(store.CollectStats().append_batches, 1u);

  // Repeated dashboard reads hit the session plan cache (same text,
  // same published epoch → same MO version in the view session).
  const std::string query =
      "SELECT COUNT FROM clinical BY Residence.Region";
  ASSERT_TRUE(session.Execute(query).ok());
  const std::uint64_t hits_after_first = session.stats().exec.plan_cache_hits;
  ASSERT_TRUE(session.Execute(query).ok());
  ASSERT_TRUE(session.Execute(query).ok());
  EXPECT_GE(session.stats().exec.plan_cache_hits, hits_after_first + 2);
}

TEST(ServerSessionIngestTest, AdvisorWarmsTheSessionsHotGroupings) {
  const ClinicalWorkloadParams params = SmallParams(150);
  ClinicalMo clinical = Build(params);
  const auto grouping = RegionGrouping(clinical);

  serve::MoStore store;
  serve::MdqlServer server(&store);
  ASSERT_TRUE(store.Publish("clinical", std::move(clinical.mo)).ok());
  serve::ServerSession session = server.Connect();

  // No log yet: advising is a no-op, nothing published.
  const std::uint64_t epoch_before = store.epoch();
  ASSERT_TRUE(session.AdviseWarmAggregates("clinical").ok());
  EXPECT_EQ(store.epoch(), epoch_before);

  // A hot grouping accumulates in the query log...
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        session.Execute("SELECT COUNT FROM clinical BY Residence.Region")
            .ok());
  }
  // ...and the advisor turns it into a warm spec: a new epoch whose
  // snapshot can Peek the aggregate without computing.
  ASSERT_TRUE(session.AdviseWarmAggregates("clinical").ok());
  EXPECT_GT(store.epoch(), epoch_before);
  const auto snapshot = store.Pin();
  const serve::PublishedMo* entry = snapshot->Find("clinical");
  ASSERT_NE(entry, nullptr);
  ASSERT_NE(entry->preagg, nullptr);
  EXPECT_NE(entry->preagg->Peek(AggFunction::SetCount(), grouping), nullptr);

  // Re-advising the same log is idempotent: no churn epoch.
  const std::uint64_t epoch_after = store.epoch();
  ASSERT_TRUE(session.AdviseWarmAggregates("clinical").ok());
  EXPECT_EQ(store.epoch(), epoch_after);
}

}  // namespace
}  // namespace mddc
