#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "serve/mdql_server.h"
#include "serve/mo_store.h"
#include "stress/driver.h"
#include "stress/mix.h"
#include "stress/oracle.h"
#include "workload/clinical_generator.h"

// Coverage for the mixed-workload stress harness (src/stress): the mix
// spec, the statement generator's class coverage, the concurrent driver,
// and — the point of the subsystem — the differential oracle: every read
// of a concurrent run against live MdqlServer sessions must render
// byte-identically to a sequential replay at its pinned epoch.

namespace mddc {
namespace stress {
namespace {

ClinicalWorkloadParams SmallParams(std::size_t patients) {
  ClinicalWorkloadParams params;
  params.seed = 17;
  params.num_patients = patients;
  return params;
}

ClinicalMo Build(const ClinicalWorkloadParams& params) {
  auto workload =
      GenerateClinicalWorkload(params, std::make_shared<FactRegistry>());
  EXPECT_TRUE(workload.ok()) << workload.status();
  return std::move(workload).ValueOrDie();
}

TEST(MixSpecTest, ParsesAndRoundTrips) {
  auto spec = MixSpec::Parse("rollup=4,temporal=2,prob=1,star=1,insert=1");
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->weights[0], 4u);
  EXPECT_EQ(spec->weights[4], 1u);
  auto round = MixSpec::Parse(spec->ToString());
  ASSERT_TRUE(round.ok()) << round.status();
  EXPECT_EQ(round->weights, spec->weights);

  // Omitted classes get weight 0.
  auto partial = MixSpec::Parse("insert=3");
  ASSERT_TRUE(partial.ok()) << partial.status();
  EXPECT_EQ(partial->weights[4], 3u);
  EXPECT_EQ(partial->weights[0], 0u);

  EXPECT_FALSE(MixSpec::Parse("bogus=1").ok());
  EXPECT_FALSE(MixSpec::Parse("rollup=x").ok());
  EXPECT_FALSE(MixSpec::Parse("rollup").ok());
  EXPECT_FALSE(MixSpec::Parse("").ok());
  EXPECT_FALSE(MixSpec::Parse("rollup=0,insert=0").ok());
}

TEST(StatementGeneratorTest, EveryClassEmitsExecutableStatements) {
  const ClinicalWorkloadParams params = SmallParams(50);
  ClinicalMo clinical = Build(params);
  WorkloadProfile profile =
      WorkloadProfile::For(params, clinical, "clinical");
  mdql::Session session;
  ASSERT_TRUE(session.Register("clinical", std::move(clinical.mo)).ok());

  StatementGenerator generator(profile, /*seed=*/3, /*session_index=*/0);
  for (std::size_t c = 0; c < kQueryClassCount; ++c) {
    const auto query_class = static_cast<QueryClass>(c);
    const std::vector<std::string> statements =
        generator.Generate(query_class);
    ASSERT_FALSE(statements.empty()) << QueryClassName(query_class);
    for (const std::string& statement : statements) {
      auto result = session.Execute(statement);
      EXPECT_TRUE(result.ok())
          << QueryClassName(query_class) << ": " << statement << ": "
          << result.status();
    }
  }
}

// The tier-1 smoke: 10^4 facts, one session, every query class exactly
// once, verified against the sequential replay. Stays within seconds.
TEST(StressSmokeTest, AllClassesOnceWithOracle) {
  const ClinicalWorkloadParams params = SmallParams(10000);
  ClinicalMo clinical = Build(params);
  WorkloadProfile profile =
      WorkloadProfile::For(params, clinical, "clinical");
  MdObject replica = clinical.mo;

  serve::MoStore store;
  serve::MdqlServer server(&store);
  ASSERT_TRUE(store.Publish("clinical", std::move(clinical.mo)).ok());
  const std::uint64_t base_epoch = store.epoch();

  StressOptions options;
  options.profile = profile;
  options.sessions = 1;
  options.ops_per_session = kQueryClassCount;  // the cycle: each class once
  options.cycle_classes = true;
  options.record = true;
  auto report = RunStressMix(server, options);
  ASSERT_TRUE(report.ok()) << report.status();

  EXPECT_EQ(report->errors, 0u);
  for (std::size_t c = 0; c < kQueryClassCount; ++c) {
    EXPECT_GT(report->per_class[c].statements, 0u)
        << QueryClassName(static_cast<QueryClass>(c));
  }
  // One kInsert op plus one kAppendBatch op; the bulk INSERT is a
  // single write statement (and a single epoch) no matter how many
  // facts it carries.
  EXPECT_EQ(report->writes, 2u);
  EXPECT_EQ(report->epoch_after, base_epoch + report->writes);

  auto oracle = VerifySequentialReplay(std::move(replica), "clinical",
                                       base_epoch, *report);
  ASSERT_TRUE(oracle.ok()) << oracle.status();
  EXPECT_EQ(oracle->mismatches, 0u) << oracle->first_mismatch;
  EXPECT_EQ(oracle->reads_checked, report->read_records.size());
  EXPECT_EQ(oracle->writes_replayed, report->write_records.size());
}

// The acceptance shape: >= 4 concurrent sessions, each executing >= 50
// mixed-operator reads while every session's INSERTs keep the store's
// writer live, and every recorded read byte-identical to the sequential
// replay at its pinned epoch. The clinical MO brings the paper's hard
// phenomena — many-to-many diagnoses, non-strict hierarchy edges,
// reclassified old-era families and probabilistic characterizations —
// into every class of the mix.
TEST(StressDifferentialTest, ConcurrentRunMatchesSequentialReplay) {
  const ClinicalWorkloadParams params = SmallParams(800);
  ClinicalMo clinical = Build(params);
  WorkloadProfile profile =
      WorkloadProfile::For(params, clinical, "clinical");
  MdObject replica = clinical.mo;

  serve::MoStore store;
  serve::MdqlServer server(&store);
  ASSERT_TRUE(store.Publish("clinical", std::move(clinical.mo)).ok());
  const std::uint64_t base_epoch = store.epoch();

  StressOptions options;
  options.profile = profile;
  options.seed = 5;
  options.sessions = 4;
  options.ops_per_session = 60;  // 10 cycles: 70 reads + 20 writes each
  options.cycle_classes = true;
  options.record = true;
  auto report = RunStressMix(server, options);
  ASSERT_TRUE(report.ok()) << report.status();

  EXPECT_EQ(report->errors, 0u);
  ASSERT_EQ(report->reads_per_session.size(), 4u);
  for (std::uint64_t reads : report->reads_per_session) {
    EXPECT_GE(reads, 50u);
  }
  for (std::size_t c = 0; c < kQueryClassCount; ++c) {
    EXPECT_GT(report->per_class[c].statements, 0u)
        << QueryClassName(static_cast<QueryClass>(c));
  }
  // Every write statement (single-fact or batched INSERT) published
  // exactly one epoch: the writer stayed live for the whole run.
  EXPECT_EQ(report->writes, 4u * 20u);
  EXPECT_EQ(report->epoch_after - report->epoch_before, report->writes);
  // The sessions' group-bys actually exercised the kernels.
  EXPECT_GT(report->exec.flat_hash_runs + report->exec.dense_groupby_runs,
            0u);

  auto oracle = VerifySequentialReplay(std::move(replica), "clinical",
                                       base_epoch, *report);
  ASSERT_TRUE(oracle.ok()) << oracle.status();
  EXPECT_EQ(oracle->reads_checked, report->read_records.size());
  EXPECT_GE(oracle->reads_checked, 4u * 50u);
  EXPECT_EQ(oracle->writes_replayed, report->write_records.size());
  EXPECT_EQ(oracle->mismatches, 0u) << oracle->first_mismatch;
}

// Weighted-draw mode: the default mix must run clean too (no oracle —
// this is the throughput shape the bench uses).
TEST(StressDriverTest, WeightedMixRunsClean) {
  const ClinicalWorkloadParams params = SmallParams(500);
  ClinicalMo clinical = Build(params);
  WorkloadProfile profile =
      WorkloadProfile::For(params, clinical, "clinical");

  serve::MoStore store;
  serve::MdqlServer server(&store);
  ASSERT_TRUE(store.Publish("clinical", std::move(clinical.mo)).ok());

  StressOptions options;
  options.profile = profile;
  options.seed = 23;
  options.sessions = 2;
  options.ops_per_session = 30;
  auto report = RunStressMix(server, options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->errors, 0u);
  EXPECT_GT(report->reads, 0u);
  EXPECT_TRUE(report->read_records.empty());  // record off
  EXPECT_EQ(report->epoch_after - report->epoch_before, report->writes);
}

TEST(StressDriverTest, RejectsDegenerateOptions) {
  serve::MoStore store;
  serve::MdqlServer server(&store);
  StressOptions options;
  options.profile.mo_name = "clinical";
  options.sessions = 0;
  EXPECT_FALSE(RunStressMix(server, options).ok());

  options.sessions = 1;
  options.profile.mo_name.clear();
  EXPECT_FALSE(RunStressMix(server, options).ok());

  options.profile.mo_name = "clinical";
  options.mix.weights.fill(0);
  EXPECT_FALSE(RunStressMix(server, options).ok());
}

// MoStore::CollectStats under the mix: epochs_published is monotone
// while the run is live, and once the run drains (no session pins, no
// retained snapshots) every retired epoch has been reclaimed — the MVCC
// tier does not leak epochs under sustained mixed load.
TEST(StressStatsTest, CountersMonotoneAndNoLeakedEpochsAfterDrain) {
  const ClinicalWorkloadParams params = SmallParams(400);
  ClinicalMo clinical = Build(params);
  WorkloadProfile profile =
      WorkloadProfile::For(params, clinical, "clinical");

  serve::MoStore store;
  serve::MdqlServer server(&store);
  ASSERT_TRUE(store.Publish("clinical", std::move(clinical.mo)).ok());

  StressOptions options;
  options.profile = profile;
  options.seed = 31;
  options.sessions = 3;
  options.ops_per_session = 20;
  options.cycle_classes = true;

  std::atomic<bool> done{false};
  Result<StressReport> report = Status::InvariantViolation("not run");
  std::thread driver([&] {
    report = RunStressMix(server, options);
    done.store(true, std::memory_order_release);
  });

  std::uint64_t last_epochs = 0;
  while (!done.load(std::memory_order_acquire)) {
    const serve::MoStore::Stats stats = store.CollectStats();
    EXPECT_GE(stats.epochs_published, last_epochs);
    EXPECT_GE(stats.live_snapshots, 1u);
    last_epochs = stats.epochs_published;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  driver.join();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->errors, 0u);

  // Sessions are gone and nothing pins a snapshot: the only live epoch
  // is the current one, and every retired epoch has been reclaimed.
  const serve::MoStore::Stats drained = store.CollectStats();
  EXPECT_GE(drained.epochs_published, last_epochs);
  EXPECT_EQ(drained.live_snapshots, 1u);
  EXPECT_EQ(drained.reclaimed_snapshots, drained.epochs_published);
}

}  // namespace
}  // namespace stress
}  // namespace mddc
