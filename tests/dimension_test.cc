#include <gtest/gtest.h>

#include "fixtures.h"

namespace mddc {
namespace {

using testing_fixtures::BuildDiagnosisDimension;
using testing_fixtures::Day;
using testing_fixtures::DiagnosisType;
using testing_fixtures::During;

TEST(DimensionTest, TopValueExistsInTopCategory) {
  Dimension dimension(DiagnosisType());
  EXPECT_TRUE(dimension.HasValue(dimension.top_value()));
  auto category = dimension.CategoryOf(dimension.top_value());
  ASSERT_TRUE(category.ok());
  EXPECT_EQ(*category, dimension.type().top());
}

TEST(DimensionTest, AddValueRejectsDuplicates) {
  Dimension dimension(DiagnosisType());
  CategoryTypeIndex low = *dimension.type().Find("Low-level Diagnosis");
  ASSERT_TRUE(dimension.AddValue(low, ValueId(3)).ok());
  EXPECT_EQ(dimension.AddValue(low, ValueId(3)).code(),
            StatusCode::kInvariantViolation);
}

TEST(DimensionTest, AddValueRejectsTopCategory) {
  Dimension dimension(DiagnosisType());
  EXPECT_FALSE(dimension.AddValue(dimension.type().top(), ValueId(99)).ok());
}

TEST(DimensionTest, AutoIdsDoNotCollideWithExplicitIds) {
  Dimension dimension(DiagnosisType());
  CategoryTypeIndex low = *dimension.type().Find("Low-level Diagnosis");
  ASSERT_TRUE(dimension.AddValue(low, ValueId(10)).ok());
  auto auto_id = dimension.AddValueAuto(low);
  ASSERT_TRUE(auto_id.ok());
  EXPECT_GT(auto_id->raw(), 10u);
}

TEST(DimensionTest, AddOrderRequiresStrictlyLargerCategory) {
  Dimension dimension(DiagnosisType());
  CategoryTypeIndex low = *dimension.type().Find("Low-level Diagnosis");
  CategoryTypeIndex family = *dimension.type().Find("Diagnosis Family");
  ASSERT_TRUE(dimension.AddValue(low, ValueId(1)).ok());
  ASSERT_TRUE(dimension.AddValue(low, ValueId(2)).ok());
  ASSERT_TRUE(dimension.AddValue(family, ValueId(3)).ok());
  // Same category: rejected.
  EXPECT_FALSE(dimension.AddOrder(ValueId(1), ValueId(2)).ok());
  // Downward: rejected.
  EXPECT_FALSE(dimension.AddOrder(ValueId(3), ValueId(1)).ok());
  // Upward: accepted.
  EXPECT_TRUE(dimension.AddOrder(ValueId(1), ValueId(3)).ok());
}

TEST(DimensionTest, AddOrderValidatesProbability) {
  Dimension dimension = BuildDiagnosisDimension();
  EXPECT_FALSE(
      dimension.AddOrder(ValueId(5), ValueId(4), Lifespan{}, 0.0).ok());
  EXPECT_FALSE(
      dimension.AddOrder(ValueId(5), ValueId(4), Lifespan{}, 1.5).ok());
}

TEST(DimensionTest, RepeatedOrderCoalescesLifespans) {
  Dimension dimension = BuildDiagnosisDimension();
  std::size_t edges_before = dimension.edges().size();
  // Re-assert 5 <= 4 for a disjoint period: same edge, unioned lifespan.
  ASSERT_TRUE(dimension
                  .AddOrder(ValueId(5), ValueId(4),
                            During("[01/01/60-31/12/69]"))
                  .ok());
  EXPECT_EQ(dimension.edges().size(), edges_before);
  Lifespan span = dimension.ContainmentSpan(ValueId(5), ValueId(4));
  EXPECT_TRUE(span.valid.Contains(Day("15/06/65")));
  EXPECT_TRUE(span.valid.Contains(Day("15/06/85")));
  EXPECT_FALSE(span.valid.Contains(Day("15/06/75")));
}

TEST(DimensionTest, ContainmentSpanFollowsPaths) {
  Dimension dimension = BuildDiagnosisDimension();
  // 5 <= 4 directly during [80-NOW] (Grouping table).
  Lifespan direct = dimension.ContainmentSpan(ValueId(5), ValueId(4));
  EXPECT_TRUE(direct.valid.Contains(Day("01/06/85")));
  EXPECT_FALSE(direct.valid.Contains(Day("01/06/75")));
  // 5 <= 11 via 9 (user-defined then WHO), both alive [80-NOW].
  Lifespan indirect = dimension.ContainmentSpan(ValueId(5), ValueId(11));
  EXPECT_TRUE(indirect.valid.Contains(Day("01/06/85")));
  // 3 <= 11? 3's parents are 7 and 8; 8 <= 11 from 1980 but 3 <= 8 only
  // until 1979: the path intersection is empty.
  Lifespan none = dimension.ContainmentSpan(ValueId(3), ValueId(11));
  EXPECT_TRUE(none.valid.Empty());
}

TEST(DimensionTest, ContainmentInTopIsUnconditional) {
  Dimension dimension = BuildDiagnosisDimension();
  Lifespan span =
      dimension.ContainmentSpan(ValueId(3), dimension.top_value());
  EXPECT_EQ(span.valid, TemporalElement::Always());
  EXPECT_TRUE(dimension.LessEqAt(ValueId(3), dimension.top_value(),
                                 Day("01/01/99")));
}

TEST(DimensionTest, LessEqAtHonorsEdgeValidTime) {
  Dimension dimension = BuildDiagnosisDimension();
  // 3 <= 7 held only during the 70s (old classification).
  EXPECT_TRUE(dimension.LessEqAt(ValueId(3), ValueId(7), Day("15/06/75")));
  EXPECT_FALSE(dimension.LessEqAt(ValueId(3), ValueId(7), Day("15/06/85")));
}

TEST(DimensionTest, NonStrictHierarchyGivesTwoParents) {
  Dimension dimension = BuildDiagnosisDimension();
  // Value 5 ("Ins. dep. diab., pregn.") is in families 4 and 9 — the
  // paper's flagship non-strict example.
  CategoryTypeIndex family = *dimension.type().Find("Diagnosis Family");
  auto parents = dimension.AncestorsIn(ValueId(5), family);
  std::vector<std::uint64_t> ids;
  for (const auto& c : parents) ids.push_back(c.value.raw());
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{4, 9}));
}

TEST(DimensionTest, AncestorsIncludeTop) {
  Dimension dimension = BuildDiagnosisDimension();
  bool found_top = false;
  for (const auto& c : dimension.Ancestors(ValueId(5))) {
    if (c.value == dimension.top_value()) {
      found_top = true;
      EXPECT_EQ(c.life.valid, TemporalElement::Always());
      EXPECT_EQ(c.prob, 1.0);
    }
  }
  EXPECT_TRUE(found_top);
}

TEST(DimensionTest, DescendantsMirrorAncestors) {
  Dimension dimension = BuildDiagnosisDimension();
  // Group 11 contains families 9, 10, 8 and low-levels 5, 6.
  std::vector<std::uint64_t> ids;
  for (const auto& c : dimension.Descendants(ValueId(11))) {
    ids.push_back(c.value.raw());
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{5, 6, 8, 9, 10}));
}

TEST(DimensionTest, TopDescendantsAreAllValues) {
  Dimension dimension = BuildDiagnosisDimension();
  EXPECT_EQ(dimension.Descendants(dimension.top_value()).size(),
            dimension.value_count() - 1);
}

TEST(DimensionTest, ProbabilisticContainmentCombines) {
  Dimension dimension(DiagnosisType());
  CategoryTypeIndex low = *dimension.type().Find("Low-level Diagnosis");
  CategoryTypeIndex family = *dimension.type().Find("Diagnosis Family");
  CategoryTypeIndex group = *dimension.type().Find("Diagnosis Group");
  ASSERT_TRUE(dimension.AddValue(low, ValueId(1)).ok());
  ASSERT_TRUE(dimension.AddValue(family, ValueId(2)).ok());
  ASSERT_TRUE(dimension.AddValue(family, ValueId(3)).ok());
  ASSERT_TRUE(dimension.AddValue(group, ValueId(4)).ok());
  // 1 <= 2 with p=0.9, 1 <= 3 with p=0.5; both 2,3 <= 4 certainly.
  ASSERT_TRUE(dimension.AddOrder(ValueId(1), ValueId(2), Lifespan{}, 0.9).ok());
  ASSERT_TRUE(dimension.AddOrder(ValueId(1), ValueId(3), Lifespan{}, 0.5).ok());
  ASSERT_TRUE(dimension.AddOrder(ValueId(2), ValueId(4)).ok());
  ASSERT_TRUE(dimension.AddOrder(ValueId(3), ValueId(4)).ok());
  EXPECT_DOUBLE_EQ(dimension.ContainmentProbAt(ValueId(1), ValueId(2)), 0.9);
  // Noisy-or across the two paths: 1 - (1-0.9)(1-0.5) = 0.95.
  EXPECT_DOUBLE_EQ(dimension.ContainmentProbAt(ValueId(1), ValueId(4)), 0.95);
  // Certain containment stays 1.
  EXPECT_DOUBLE_EQ(dimension.ContainmentProbAt(ValueId(2), ValueId(4)), 1.0);
}

TEST(DimensionTest, UnionMergesValuesAndEdges) {
  Dimension a(DiagnosisType());
  Dimension b(DiagnosisType());
  CategoryTypeIndex low = *a.type().Find("Low-level Diagnosis");
  CategoryTypeIndex family = *a.type().Find("Diagnosis Family");
  ASSERT_TRUE(a.AddValue(low, ValueId(1)).ok());
  ASSERT_TRUE(a.AddValue(family, ValueId(10)).ok());
  ASSERT_TRUE(a.AddOrder(ValueId(1), ValueId(10)).ok());
  ASSERT_TRUE(b.AddValue(low, ValueId(2)).ok());
  ASSERT_TRUE(b.AddValue(family, ValueId(10)).ok());
  ASSERT_TRUE(b.AddOrder(ValueId(2), ValueId(10)).ok());

  auto merged = Dimension::UnionWith(a, b);
  ASSERT_TRUE(merged.ok());
  EXPECT_TRUE(merged->HasValue(ValueId(1)));
  EXPECT_TRUE(merged->HasValue(ValueId(2)));
  EXPECT_TRUE(merged->LessEqAt(ValueId(1), ValueId(10)));
  EXPECT_TRUE(merged->LessEqAt(ValueId(2), ValueId(10)));
  // 1 + 2 + 10 + top.
  EXPECT_EQ(merged->value_count(), 4u);
}

TEST(DimensionTest, UnionRejectsDifferentTypes) {
  Dimension a(DiagnosisType());
  DimensionTypeBuilder other("Other");
  other.AddCategory("X");
  Dimension b(std::move(other.Build()).ValueOrDie());
  EXPECT_EQ(Dimension::UnionWith(a, b).status().code(),
            StatusCode::kSchemaMismatch);
}

TEST(DimensionTest, UnionCoalescesSharedValueMembership) {
  Dimension a(DiagnosisType());
  Dimension b(DiagnosisType());
  CategoryTypeIndex low = *a.type().Find("Low-level Diagnosis");
  ASSERT_TRUE(a.AddValue(low, ValueId(1), During("[01/01/70-31/12/74]")).ok());
  ASSERT_TRUE(b.AddValue(low, ValueId(1), During("[01/01/75-31/12/79]")).ok());
  auto merged = Dimension::UnionWith(a, b);
  ASSERT_TRUE(merged.ok());
  auto membership = merged->MembershipOf(ValueId(1));
  ASSERT_TRUE(membership.ok());
  EXPECT_TRUE(membership->valid.Contains(Day("15/06/72")));
  EXPECT_TRUE(membership->valid.Contains(Day("15/06/77")));
}

TEST(DimensionTest, SubdimensionKeepsUpperCategories) {
  // Paper Example 5: drop Low-level Diagnosis and Diagnosis Family,
  // keeping Diagnosis Group and TOP.
  Dimension dimension = BuildDiagnosisDimension();
  CategoryTypeIndex group = *dimension.type().Find("Diagnosis Group");
  auto sub = dimension.Subdimension({group, dimension.type().top()});
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->type().category_count(), 2u);
  EXPECT_TRUE(sub->HasValue(ValueId(11)));
  EXPECT_TRUE(sub->HasValue(ValueId(12)));
  EXPECT_FALSE(sub->HasValue(ValueId(5)));
  EXPECT_TRUE(sub->Validate().ok());
}

TEST(DimensionTest, SubdimensionPreservesTransitiveOrder) {
  // Keep Low-level and Group, dropping Family: 5 <= 11 must survive.
  Dimension dimension = BuildDiagnosisDimension();
  CategoryTypeIndex low = *dimension.type().Find("Low-level Diagnosis");
  CategoryTypeIndex group = *dimension.type().Find("Diagnosis Group");
  auto sub = dimension.Subdimension({low, group, dimension.type().top()});
  ASSERT_TRUE(sub.ok());
  EXPECT_TRUE(sub->LessEqAt(ValueId(5), ValueId(11), Day("01/06/85")));
  EXPECT_FALSE(sub->HasValue(ValueId(9)));
  EXPECT_TRUE(sub->Validate().ok());
}

TEST(DimensionTest, RestrictAboveMatchesAggregateFormationRule) {
  Dimension dimension = BuildDiagnosisDimension();
  CategoryTypeIndex family = *dimension.type().Find("Diagnosis Family");
  auto restricted = dimension.RestrictAbove(family);
  ASSERT_TRUE(restricted.ok());
  EXPECT_EQ(restricted->type().category(restricted->type().bottom()).name,
            "Diagnosis Family");
  EXPECT_TRUE(restricted->HasValue(ValueId(9)));
  EXPECT_FALSE(restricted->HasValue(ValueId(5)));
  EXPECT_TRUE(
      restricted->LessEqAt(ValueId(9), ValueId(11), Day("01/06/85")));
}

TEST(DimensionTest, ValidateAcceptsCaseStudyDimension) {
  Dimension dimension = BuildDiagnosisDimension();
  EXPECT_TRUE(dimension.Validate().ok());
}

TEST(DimensionTest, ValuesInReturnsCategoryMembers) {
  Dimension dimension = BuildDiagnosisDimension();
  CategoryTypeIndex group = *dimension.type().Find("Diagnosis Group");
  std::vector<ValueId> groups = dimension.ValuesIn(group);
  EXPECT_EQ(groups.size(), 2u);
}

TEST(DimensionTest, MemoizationIsTransparent) {
  // Queries must return identical results with the closure memo on and
  // off, including across mutations that invalidate it.
  Dimension memoized = BuildDiagnosisDimension();
  Dimension plain = BuildDiagnosisDimension();
  plain.set_memoization_enabled(false);
  EXPECT_TRUE(memoized.memoization_enabled());
  EXPECT_FALSE(plain.memoization_enabled());

  auto snapshot = [](const Dimension& dimension, ValueId value) {
    std::vector<std::tuple<std::uint64_t, std::string, double>> result;
    for (const auto& c : dimension.Ancestors(value)) {
      result.emplace_back(c.value.raw(), c.life.ToString(), c.prob);
    }
    std::sort(result.begin(), result.end());
    return result;
  };

  for (std::uint64_t id : {3, 5, 6, 8, 9}) {
    EXPECT_EQ(snapshot(memoized, ValueId(id)), snapshot(plain, ValueId(id)))
        << "value " << id;
    // Ask twice: the second query is served from the memo.
    EXPECT_EQ(snapshot(memoized, ValueId(id)),
              snapshot(memoized, ValueId(id)));
  }

  // Mutation invalidates: add a new edge and compare again.
  ASSERT_TRUE(memoized
                  .AddOrder(ValueId(6), ValueId(9),
                            During("[01/01/90-NOW]"))
                  .ok());
  ASSERT_TRUE(
      plain.AddOrder(ValueId(6), ValueId(9), During("[01/01/90-NOW]")).ok());
  for (std::uint64_t id : {6, 3}) {
    EXPECT_EQ(snapshot(memoized, ValueId(id)), snapshot(plain, ValueId(id)))
        << "post-mutation value " << id;
  }
  // The new containment is visible through the memoized path.
  EXPECT_TRUE(memoized.LessEqAt(ValueId(6), ValueId(9), Day("01/06/95")));
}

TEST(DimensionTest, EdgesFromChildAndToParent) {
  Dimension dimension = BuildDiagnosisDimension();
  // Value 3 has two parents: 7 (WHO) and 8 (user-defined).
  EXPECT_EQ(dimension.EdgesFromChild(ValueId(3)).size(), 2u);
  // Group 11 has three children: 9, 10, 8.
  EXPECT_EQ(dimension.EdgesToParent(ValueId(11)).size(), 3u);
}

}  // namespace
}  // namespace mddc
