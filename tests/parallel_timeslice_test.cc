#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "algebra/timeslice.h"
#include "engine/executor.h"
#include "fixtures.h"
#include "io/serialize.h"
#include "workload/clinical_generator.h"
#include "workload/retail_generator.h"

// Differential, determinism, fallback and concurrency coverage for the
// parallel timeslice. Timeslice is embarrassingly parallel — per-fact and
// per-dimension work lands in disjoint slots and there is no merge — so
// the bit-identity contract must hold trivially; these tests prove it
// does, at 1/2/8 threads and across repeated runs.

namespace mddc {
namespace {

using testing_fixtures::Day;

ClinicalMo BuildClinical(std::uint32_t seed = 42,
                         std::size_t patients = 150) {
  ClinicalWorkloadParams params;
  params.seed = seed;
  params.num_patients = patients;
  auto workload =
      GenerateClinicalWorkload(params, std::make_shared<FactRegistry>());
  return std::move(workload).ValueOrDie();
}

void ExpectParallelSliceMatchesSequential(const MdObject& mo, Chronon at,
                                          bool valid_axis) {
  auto run = [&](ExecContext* exec) {
    return valid_axis ? ValidTimeslice(mo, at, exec)
                      : TransactionTimeslice(mo, at, exec);
  };
  auto sequential = run(nullptr);
  ASSERT_TRUE(sequential.ok()) << sequential.status();
  auto sequential_bytes = io::WriteMo(*sequential);
  ASSERT_TRUE(sequential_bytes.ok()) << sequential_bytes.status();

  for (std::size_t threads : {1u, 2u, 8u}) {
    ExecContext ctx(threads, /*min_facts=*/1);
    auto parallel = run(&ctx);
    ASSERT_TRUE(parallel.ok())
        << "threads=" << threads << ": " << parallel.status();
    auto parallel_bytes = io::WriteMo(*parallel);
    ASSERT_TRUE(parallel_bytes.ok()) << parallel_bytes.status();
    EXPECT_EQ(*parallel_bytes, *sequential_bytes)
        << "serialized timeslice differs at threads=" << threads;
    EXPECT_EQ(parallel->fact_count(), sequential->fact_count());
  }
}

TEST(ParallelTimesliceDifferentialTest, ValidSliceMatchesAcrossThreads) {
  ClinicalMo clinical = BuildClinical();
  // Mid-case-study date: straddles the 01/01/1980 reclassification epoch
  // lifespans, so the slice is a strict subset, not all-or-nothing.
  ExpectParallelSliceMatchesSequential(clinical.mo, Day("15/06/85"),
                                       /*valid_axis=*/true);
}

TEST(ParallelTimesliceDifferentialTest,
     ValidSliceMatchesAcrossThreadsAtEpochBoundary) {
  ClinicalMo clinical = BuildClinical();
  ExpectParallelSliceMatchesSequential(clinical.mo, Day("01/01/80"),
                                       /*valid_axis=*/true);
}

TEST(ParallelTimesliceDifferentialTest,
     TransactionSliceMatchesAcrossThreads) {
  // The clinical workload is valid-time; recast it as bitemporal so the
  // transaction axis is sliceable (default transaction lifespans apply).
  ClinicalMo clinical = BuildClinical();
  MdObject bitemporal = clinical.mo;
  bitemporal.set_temporal_type(TemporalType::kBitemporal);
  ExpectParallelSliceMatchesSequential(bitemporal, Day("15/06/85"),
                                       /*valid_axis=*/false);
}

TEST(ParallelTimesliceDeterminismTest, FiftyParallelRunsAreByteIdentical) {
  ClinicalMo clinical = BuildClinical();
  const Chronon at = Day("15/06/85");
  std::string reference;
  for (int run = 0; run < 50; ++run) {
    ExecContext ctx(8, /*min_facts=*/1);
    auto result = ValidTimeslice(clinical.mo, at, &ctx);
    ASSERT_TRUE(result.ok()) << "run " << run << ": " << result.status();
    ASSERT_EQ(ctx.stats.timeslice_parallel_runs, 1u) << "run " << run;
    auto bytes = io::WriteMo(*result);
    ASSERT_TRUE(bytes.ok()) << bytes.status();
    if (run == 0) {
      reference = *bytes;
    } else {
      ASSERT_EQ(*bytes, reference) << "run " << run << " diverged";
    }
  }
}

// ---- Fallback and error paths ---------------------------------------------

TEST(ParallelTimesliceFallbackTest, SmallInputCountsSequentialFallback) {
  ClinicalMo clinical = BuildClinical(42, /*patients=*/20);
  ExecContext ctx(8, /*min_facts=*/4096);
  auto result = ValidTimeslice(clinical.mo, Day("15/06/85"), &ctx);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(ctx.stats.sequential_fallbacks, 1u);
  EXPECT_EQ(ctx.stats.timeslice_parallel_runs, 0u);
  EXPECT_EQ(ctx.stats.parallel_runs, 0u);
}

TEST(ParallelTimesliceFallbackTest,
     TemporalMismatchReturnsTheSequentialError) {
  // Retail is a snapshot MO: neither axis is sliceable. The parallel
  // context must surface exactly the sequential diagnostic.
  RetailWorkloadParams params;
  params.seed = 7;
  params.num_purchases = 50;
  auto retail =
      GenerateRetailWorkload(params, std::make_shared<FactRegistry>());
  ASSERT_TRUE(retail.ok()) << retail.status();

  auto sequential = ValidTimeslice(retail->mo, Day("15/06/85"));
  ASSERT_FALSE(sequential.ok());

  ExecContext ctx(8, /*min_facts=*/1);
  auto parallel = ValidTimeslice(retail->mo, Day("15/06/85"), &ctx);
  ASSERT_FALSE(parallel.ok());
  EXPECT_EQ(parallel.status().ToString(), sequential.status().ToString());
  EXPECT_EQ(ctx.stats.timeslice_parallel_runs, 0u);
}

// ---- Counters -------------------------------------------------------------

TEST(ParallelTimesliceCountersTest, ParallelRunAdvancesTimesliceCounters) {
  ClinicalMo clinical = BuildClinical();
  ExecContext ctx(4, /*min_facts=*/1);
  auto result = ValidTimeslice(clinical.mo, Day("15/06/85"), &ctx);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(ctx.stats.timeslice_parallel_runs, 1u);
  EXPECT_EQ(ctx.stats.parallel_runs, 1u);
  EXPECT_GT(ctx.stats.tasks, 0u);
}

// ---- Concurrent closure reads (TSan coverage) -----------------------------

TEST(ParallelTimesliceConcurrencyTest,
     ClosureReadsRaceFreeDuringParallelSlice) {
  // Mirrors the Join concurrency test: the timeslice warms the operand's
  // closure memos before fanning out, so reader threads querying the
  // operand while slices run concurrently only ever see pure reads.
  ClinicalMo clinical = BuildClinical();
  const Chronon at = Day("15/06/85");

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> reads{0};
  auto reader = [&] {
    while (!stop.load()) {
      for (FactId fact : clinical.mo.facts()) {
        reads.fetch_add(
            clinical.mo.CharacterizedBy(fact, clinical.diagnosis_dim).size());
        if (stop.load()) break;
      }
    }
  };
  {
    for (std::size_t i = 0; i < clinical.mo.dimension_count(); ++i) {
      clinical.mo.dimension(i).WarmClosureMemo();
    }
    std::jthread r1(reader);
    std::jthread r2(reader);
    for (int round = 0; round < 3; ++round) {
      ExecContext ctx(8, /*min_facts=*/1);
      auto result = ValidTimeslice(clinical.mo, at, &ctx);
      ASSERT_TRUE(result.ok()) << result.status();
      EXPECT_EQ(ctx.stats.timeslice_parallel_runs, 1u);
    }
    stop.store(true);
  }
  EXPECT_GT(reads.load(), 0u);
}

}  // namespace
}  // namespace mddc
