#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "algebra/operators.h"
#include "common/strings.h"
#include "engine/executor.h"
#include "io/serialize.h"
#include "mdql/mdql.h"
#include "mdql/parser.h"
#include "mdql/physical.h"
#include "mdql/plan.h"
#include "mdql/rewrite.h"
#include "workload/clinical_generator.h"
#include "workload/retail_generator.h"

// The MDQL compiler (docs/mdql_compiler.md): every logical rewrite rule
// individually and composed, and the load-bearing contract — the
// optimized (fused) physical plan renders byte-identically to the
// tree-walk interpreter, on every statement, at every thread count.

namespace mddc {
namespace mdql {
namespace {

ClinicalMo BuildClinical(std::size_t patients,
                         std::shared_ptr<FactRegistry> registry = nullptr) {
  ClinicalWorkloadParams params;
  params.seed = 17;
  params.num_patients = patients;
  if (registry == nullptr) registry = std::make_shared<FactRegistry>();
  auto workload = GenerateClinicalWorkload(params, std::move(registry));
  EXPECT_TRUE(workload.ok()) << workload.status();
  return std::move(workload).ValueOrDie();
}

/// The rules gated on Section 3.4 summarizability (select-below-aggregate,
/// collapse-rollup) need a dimension whose fact mapping is strict even
/// atemporally; relocations give a patient two residence areas, so they
/// are turned off here. Diagnosis keeps its non-strictness — the negative
/// cases rely on it.
ClinicalMo BuildClinicalSettled(std::size_t patients) {
  ClinicalWorkloadParams params;
  params.seed = 17;
  params.num_patients = patients;
  params.relocation_rate = 0.0;
  auto workload =
      GenerateClinicalWorkload(params, std::make_shared<FactRegistry>());
  EXPECT_TRUE(workload.ok()) << workload.status();
  return std::move(workload).ValueOrDie();
}

RetailMo BuildRetail(std::size_t purchases,
                     std::shared_ptr<FactRegistry> registry = nullptr) {
  RetailWorkloadParams params;
  params.seed = 7;
  params.num_purchases = purchases;
  if (registry == nullptr) registry = std::make_shared<FactRegistry>();
  auto workload = GenerateRetailWorkload(params, std::move(registry));
  EXPECT_TRUE(workload.ok()) << workload.status();
  return std::move(workload).ValueOrDie();
}

bool Fired(const RewriteOutcome& outcome, const std::string& rule) {
  return std::find(outcome.fired.begin(), outcome.fired.end(), rule) !=
         outcome.fired.end();
}

/// Renders an aggregate-result MO as sorted "label|value" lines: the
/// grouping label through the Code representation of `category`, the
/// result through the auto dimension's Value representation.
/// Shape-independent, so a two-level roll-up and its collapsed form are
/// comparable.
std::vector<std::string> RenderedValues(const MdObject& mo,
                                        const std::string& dim_name,
                                        const std::string& category) {
  std::vector<std::string> rows;
  auto dim_idx = mo.FindDimension(dim_name);
  EXPECT_TRUE(dim_idx.ok());
  if (!dim_idx.ok()) return rows;
  const Dimension& dim = mo.dimension(*dim_idx);
  auto cat = dim.type().Find(category);
  EXPECT_TRUE(cat.ok());
  if (!cat.ok()) return rows;
  auto rep = dim.FindRepresentation(*cat, "Code");
  EXPECT_TRUE(rep.ok());
  if (!rep.ok()) return rows;
  const std::size_t result_dim = mo.dimension_count() - 1;
  const Dimension& result = mo.dimension(result_dim);
  auto value_rep = result.FindRepresentation(result.type().bottom(), "Value");
  EXPECT_TRUE(value_rep.ok());
  if (!value_rep.ok()) return rows;
  for (FactId fact : mo.facts()) {
    auto group_pairs = mo.relation(*dim_idx).ForFact(fact);
    auto result_pairs = mo.relation(result_dim).ForFact(fact);
    if (group_pairs.empty() || result_pairs.empty()) {
      ADD_FAILURE() << "fact " << fact.raw() << " missing relations";
      continue;
    }
    auto label = (*rep)->Get(group_pairs.front()->value, kNowChronon);
    auto value = (*value_rep)->Get(result_pairs.front()->value, kNowChronon);
    if (!label.ok() || !value.ok()) {
      ADD_FAILURE() << "fact " << fact.raw() << " unrenderable";
      continue;
    }
    rows.push_back(StrCat(*label, "|", *value));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

// ---- Logical rules, individually --------------------------------------

TEST(RewriteRuleTest, HoistTimesliceSharesCommonChains) {
  ClinicalMo clinical = BuildClinical(200);
  auto statement = Parse(
      "SELECT COUNT, COUNT(Diagnosis) FROM clinical "
      "BY Diagnosis.\"Diagnosis Group\" "
      "WHERE Diagnosis.\"Diagnosis Group\" = 'G0' ASOF 'NOW'");
  ASSERT_TRUE(statement.ok()) << statement.status();
  PlanRef plan =
      LowerSelect(statement->select->mo_name, &clinical.mo,
                  *statement->select);
  // Lowering duplicates each branch's Select/Timeslice chain.
  const std::string before = PrintPlan(plan);
  EXPECT_EQ(plan->children.size(), 2u);
  EXPECT_NE(plan->children[0]->children[0], plan->children[1]->children[0]);

  RewriteOptions options;
  options.rule_mask = kRuleHoistTimeslice;
  RewriteOutcome outcome = Rewrite(plan, options);
  EXPECT_TRUE(Fired(outcome, "hoist-timeslice")) << before;
  // After CSE the two aggregate branches hang off one shared chain.
  ASSERT_EQ(outcome.plan->children.size(), 2u);
  EXPECT_EQ(outcome.plan->children[0]->children[0],
            outcome.plan->children[1]->children[0]);
  EXPECT_NE(PrintPlan(outcome.plan).find("[shared"), std::string::npos);
}

TEST(RewriteRuleTest, MergeSiblingAggregatesFoldsTheMerge) {
  ClinicalMo clinical = BuildClinical(200);
  auto statement = Parse(
      "SELECT COUNT, COUNT(Diagnosis) FROM clinical "
      "BY Diagnosis.\"Diagnosis Group\" "
      "WHERE Residence.Region = 'R0'");
  ASSERT_TRUE(statement.ok()) << statement.status();
  PlanRef plan =
      LowerSelect(statement->select->mo_name, &clinical.mo,
                  *statement->select);

  // Without the hoist the siblings' duplicated Select chains differ, so
  // merging alone cannot fire: the rule only absorbs siblings over one
  // shared child.
  RewriteOptions merge_only;
  merge_only.rule_mask = kRuleMergeSiblingAggregates;
  EXPECT_FALSE(Fired(Rewrite(plan, merge_only), "merge-sibling-aggregates"));

  plan = LowerSelect(statement->select->mo_name, &clinical.mo,
                     *statement->select);
  RewriteOptions both;
  both.rule_mask = kRuleHoistTimeslice | kRuleMergeSiblingAggregates;
  RewriteOutcome outcome = Rewrite(plan, both);
  EXPECT_TRUE(Fired(outcome, "merge-sibling-aggregates"));
  ASSERT_EQ(outcome.plan->children.size(), 1u);
  EXPECT_EQ(outcome.plan->children[0]->aggregates.size(), 2u);
}

TEST(RewriteRuleTest, SelectBelowAggregateDifferential) {
  ClinicalMo clinical = BuildClinicalSettled(300);
  // A Select sitting ABOVE the aggregate, on a category at or above the
  // grouping category. The surface language never produces this shape;
  // the IR constructors do. Residence is the strict, partitioning
  // hierarchy the rule's Theorem-2 gate demands (Diagnosis is
  // deliberately non-strict and must NOT fire — checked below).
  auto statement = Parse(
      "SELECT COUNT FROM clinical BY Residence.County "
      "WHERE Residence.Region = 'R0'");
  ASSERT_TRUE(statement.ok()) << statement.status();
  const SelectStatement& select = *statement->select;

  auto build = [&]() {
    PlanRef scan = MakeScan(select.mo_name, &clinical.mo);
    PlanRef agg =
        MakeAggregate(scan, select.aggregates, select.group_by);
    return MakeSelect(agg, select.where.get());
  };

  RewriteOptions options;
  options.rule_mask = kRuleSelectBelowAggregate;
  RewriteOutcome outcome = Rewrite(build(), options);
  ASSERT_TRUE(Fired(outcome, "select-below-aggregate"));
  // The rewritten root is the aggregate; the select moved below it.
  EXPECT_EQ(outcome.plan->kind, PlanKind::kAggregate);
  EXPECT_EQ(outcome.plan->children[0]->kind, PlanKind::kSelect);

  auto original = ExecutePlanMaterialized(build());
  ASSERT_TRUE(original.ok()) << original.status();
  auto rewritten = ExecutePlanMaterialized(outcome.plan);
  ASSERT_TRUE(rewritten.ok()) << rewritten.status();
  // sigma restricts facts, not dimension values, so the original keeps
  // orphaned auto-result values for the filtered-out groups; compare the
  // rendered rows, which is what any consumer of either MO observes.
  std::vector<std::string> original_rows =
      RenderedValues(*original, "Residence", "County");
  EXPECT_FALSE(original_rows.empty());
  EXPECT_EQ(original_rows, RenderedValues(*rewritten, "Residence", "County"));

  // The non-strict Diagnosis hierarchy fails the gate: pushing a family
  // predicate below the aggregate would drop facts that reach the named
  // family only through one of their several parents.
  auto non_strict = Parse(
      "SELECT COUNT FROM clinical BY Diagnosis.\"Diagnosis Family\" "
      "WHERE Diagnosis.\"Diagnosis Family\" = 'F3'");
  ASSERT_TRUE(non_strict.ok()) << non_strict.status();
  const SelectStatement& ns = *non_strict->select;
  PlanRef scan = MakeScan(ns.mo_name, &clinical.mo);
  PlanRef agg = MakeAggregate(scan, ns.aggregates, ns.group_by);
  RewriteOutcome refused = Rewrite(MakeSelect(agg, ns.where.get()), options);
  EXPECT_FALSE(Fired(refused, "select-below-aggregate"));
}

TEST(RewriteRuleTest, SelectBelowJoinDifferential) {
  auto registry = std::make_shared<FactRegistry>();
  ClinicalMo clinical = BuildClinical(60, registry);
  RetailMo retail = BuildRetail(60, registry);
  // Dimension names are disjoint, so the whole predicate resolves on the
  // clinical side and pushes below the join.
  auto statement = Parse(
      "SELECT COUNT FROM joined "
      "WHERE Diagnosis.\"Diagnosis Group\" = 'G1'");
  ASSERT_TRUE(statement.ok()) << statement.status();
  const SelectStatement& select = *statement->select;

  auto build = [&]() {
    PlanRef left = MakeScan(Name::Of("clinical"), &clinical.mo);
    PlanRef right = MakeScan(Name::Of("retail"), &retail.mo);
    PlanRef join = MakeJoin(left, right, JoinPredicate::kTrue);
    return MakeSelect(join, select.where.get());
  };

  RewriteOptions options;
  options.rule_mask = kRuleSelectBelowJoin;
  RewriteOutcome outcome = Rewrite(build(), options);
  ASSERT_TRUE(Fired(outcome, "select-below-join"));
  EXPECT_EQ(outcome.plan->kind, PlanKind::kJoin);
  EXPECT_EQ(outcome.plan->children[0]->kind, PlanKind::kSelect);
  EXPECT_EQ(outcome.plan->children[1]->kind, PlanKind::kScan);

  auto original = ExecutePlanMaterialized(build());
  ASSERT_TRUE(original.ok()) << original.status();
  auto rewritten = ExecutePlanMaterialized(outcome.plan);
  ASSERT_TRUE(rewritten.ok()) << rewritten.status();
  auto original_text = io::WriteMo(*original);
  auto rewritten_text = io::WriteMo(*rewritten);
  ASSERT_TRUE(original_text.ok() && rewritten_text.ok());
  EXPECT_EQ(*original_text, *rewritten_text);
}

TEST(RewriteRuleTest, CollapseRollupDifferential) {
  ClinicalMo clinical = BuildClinicalSettled(300);
  // Residence again: collapse is licensed by the same strict +
  // partitioning summarizability gate as the stream's parallel path.
  auto inner_stmt = Parse(
      "SELECT COUNT FROM clinical BY Residence.County");
  auto outer_stmt = Parse(
      "SELECT SUM(Result) FROM clinical BY Residence.Region");
  ASSERT_TRUE(inner_stmt.ok() && outer_stmt.ok());
  const SelectStatement& inner = *inner_stmt->select;
  const SelectStatement& outer = *outer_stmt->select;

  auto build = [&]() {
    PlanRef scan = MakeScan(inner.mo_name, &clinical.mo);
    PlanRef low = MakeAggregate(scan, inner.aggregates, inner.group_by);
    return MakeAggregate(low, outer.aggregates, outer.group_by);
  };

  RewriteOptions options;
  options.rule_mask = kRuleCollapseRollup;
  RewriteOutcome outcome = Rewrite(build(), options);
  ASSERT_TRUE(Fired(outcome, "collapse-rollup"));
  // One aggregate straight over the scan: SUM o COUNT == COUNT regrouped.
  EXPECT_EQ(outcome.plan->kind, PlanKind::kAggregate);
  EXPECT_EQ(outcome.plan->children[0]->kind, PlanKind::kScan);
  ASSERT_EQ(outcome.plan->aggregates.size(), 1u);
  EXPECT_EQ(outcome.plan->aggregates[0].fn, AggRef::Fn::kSetCount);
  // The collapsed aggregate renders under the outer statement's label.
  EXPECT_EQ(outcome.plan->aggregates[0].label, outer.aggregates[0].label);

  auto original = ExecutePlanMaterialized(build());
  ASSERT_TRUE(original.ok()) << original.status();
  auto rewritten = ExecutePlanMaterialized(outcome.plan);
  ASSERT_TRUE(rewritten.ok()) << rewritten.status();
  // MO shapes differ (the two-level plan nests a second result
  // dimension), so compare at the rendered-value level.
  EXPECT_EQ(RenderedValues(*original, "Residence", "Region"),
            RenderedValues(*rewritten, "Residence", "Region"));
}

TEST(RewriteRuleTest, PruneDeadDimensionsAnnotates) {
  ClinicalMo clinical = BuildClinical(200);
  // Groups only Diagnosis; Residence is dead.
  auto statement = Parse(
      "SELECT COUNT FROM clinical BY Diagnosis.\"Diagnosis Group\"");
  ASSERT_TRUE(statement.ok()) << statement.status();
  PlanRef plan =
      LowerSelect(statement->select->mo_name, &clinical.mo,
                  *statement->select);
  RewriteOptions options;
  options.rule_mask = kRulePruneDeadDimensions;
  RewriteOutcome outcome = Rewrite(plan, options);
  EXPECT_TRUE(Fired(outcome, "prune-dead-dimensions"));
  ASSERT_EQ(outcome.plan->children.size(), 1u);
  EXPECT_TRUE(outcome.plan->children[0]->prune_dead);
}

TEST(RewriteRuleTest, ComposedRulesReachTheFusedShape) {
  ClinicalMo clinical = BuildClinical(200);
  auto statement = Parse(
      "SELECT COUNT, COUNT(Diagnosis) FROM clinical "
      "BY Diagnosis.\"Diagnosis Family\" "
      "WHERE Diagnosis.\"Diagnosis Group\" = 'G0' ASOF 'NOW'");
  ASSERT_TRUE(statement.ok()) << statement.status();
  PlanRef plan =
      LowerSelect(statement->select->mo_name, &clinical.mo,
                  *statement->select);
  RewriteOutcome outcome = Rewrite(plan, RewriteOptions{});
  EXPECT_TRUE(Fired(outcome, "hoist-timeslice"));
  EXPECT_TRUE(Fired(outcome, "merge-sibling-aggregates"));
  EXPECT_TRUE(Fired(outcome, "prune-dead-dimensions"));
  // Merge -> one Aggregate -> Select -> Timeslice -> Scan.
  ASSERT_EQ(outcome.plan->children.size(), 1u);
  const PlanNode& agg = *outcome.plan->children[0];
  EXPECT_EQ(agg.kind, PlanKind::kAggregate);
  EXPECT_EQ(agg.aggregates.size(), 2u);
  EXPECT_TRUE(agg.prune_dead);
  EXPECT_EQ(agg.children[0]->kind, PlanKind::kSelect);
  EXPECT_EQ(agg.children[0]->children[0]->kind, PlanKind::kTimeslice);
  EXPECT_EQ(agg.children[0]->children[0]->children[0]->kind,
            PlanKind::kScan);
}

// ---- Optimized vs tree-walk, byte for byte ----------------------------

/// The differential workload: every statement class the compiler
/// handles, including the shapes that force a fallback.
const char* kStatements[] = {
    "SELECT COUNT FROM clinical BY Diagnosis.\"Diagnosis Group\"",
    "SELECT COUNT FROM clinical BY Diagnosis.\"Diagnosis Family\" "
    "WHERE Diagnosis.\"Diagnosis Group\" = 'G1'",
    // The exact shape that once diverged: a fact characterized by
    // several low-level diagnoses makes singleton groups with identical
    // member sets, which the formation interns into ONE set-fact.
    "SELECT COUNT FROM clinical BY Diagnosis.\"Low-level Diagnosis\" AS Seq "
    "WHERE Diagnosis.\"Diagnosis Family\" = 'F61'",
    "SELECT COUNT, COUNT(Diagnosis) FROM clinical "
    "BY Diagnosis.\"Diagnosis Group\" AS Code, Residence.Region",
    "SELECT COUNT FROM clinical WHERE "
    "PROB(Diagnosis.\"Diagnosis Family\" = 'F2') >= 0.5",
    "SELECT COUNT FROM clinical BY Diagnosis.\"Diagnosis Family\" "
    "ASOF 'NOW'",
    "SELECT COUNT FROM clinical",
    "SELECT COUNT FROM clinical BY Diagnosis.\"Diagnosis Group\" "
    "WHERE Diagnosis.\"Diagnosis Family\" = 'F0' OR Residence.Region = 'R0'",
};

TEST(CompiledDifferentialTest, ByteIdentityAcrossThreadCounts) {
  ClinicalMo clinical = BuildClinical(10000);
  Session compiled;
  ASSERT_TRUE(compiled.Register("clinical", clinical.mo).ok());
  Session interpreted;
  CompileOptions off;
  off.enable_compiler = false;
  interpreted.set_compile_options(off);
  ASSERT_TRUE(
      interpreted.Register("clinical", std::move(clinical.mo)).ok());

  for (const char* statement : kStatements) {
    ExecContext exec_interp(1, 4096);
    auto expected = interpreted.Execute(statement, &exec_interp);
    ASSERT_TRUE(expected.ok()) << statement << ": " << expected.status();
    const std::string want = expected->ToString();
    for (std::size_t threads : {1u, 2u, 8u}) {
      ExecContext exec(threads, /*min_facts=*/512);
      auto result = compiled.Execute(statement, &exec);
      ASSERT_TRUE(result.ok()) << statement << ": " << result.status();
      EXPECT_EQ(result->ToString(), want)
          << statement << " at " << threads << " threads";
    }
  }
}

TEST(CompiledDifferentialTest, RepeatedRunsAreStable) {
  ClinicalMo clinical = BuildClinical(2000);
  Session compiled;
  ASSERT_TRUE(compiled.Register("clinical", clinical.mo).ok());
  Session interpreted;
  CompileOptions off;
  off.enable_compiler = false;
  interpreted.set_compile_options(off);
  ASSERT_TRUE(
      interpreted.Register("clinical", std::move(clinical.mo)).ok());

  const std::string statement =
      "SELECT COUNT, COUNT(Diagnosis) FROM clinical "
      "BY Diagnosis.\"Diagnosis Family\" "
      "WHERE Diagnosis.\"Diagnosis Group\" = 'G0'";
  auto expected = interpreted.Execute(statement);
  ASSERT_TRUE(expected.ok()) << expected.status();
  const std::string want = expected->ToString();
  for (int rep = 0; rep < 50; ++rep) {
    ExecContext exec(8, /*min_facts=*/256);
    auto result = compiled.Execute(statement, &exec);
    ASSERT_TRUE(result.ok()) << result.status();
    ASSERT_EQ(result->ToString(), want) << "rep " << rep;
  }
}

TEST(CompiledDifferentialTest, FusedPipelinesActuallyRun) {
  ClinicalMo clinical = BuildClinical(1000);
  Session session;
  ASSERT_TRUE(session.Register("clinical", std::move(clinical.mo)).ok());
  ExecContext exec(2, 512);
  auto result = session.Execute(
      "SELECT COUNT FROM clinical BY Diagnosis.\"Diagnosis Group\"", &exec);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(exec.stats.fused_pipelines, 0u);
  EXPECT_GT(exec.stats.rewrites_applied, 0u);
  EXPECT_EQ(exec.stats.plan_fallbacks, 0u);
}

TEST(CompiledDifferentialTest, RuleAblationFallsBackAndStaysIdentical) {
  ClinicalMo clinical = BuildClinical(1000);
  Session interpreted;
  CompileOptions off;
  off.enable_compiler = false;
  interpreted.set_compile_options(off);
  ASSERT_TRUE(interpreted.Register("clinical", clinical.mo).ok());
  const std::string statement =
      "SELECT COUNT, COUNT(Diagnosis) FROM clinical "
      "BY Diagnosis.\"Diagnosis Group\"";
  auto expected = interpreted.Execute(statement);
  ASSERT_TRUE(expected.ok()) << expected.status();

  // Without hoist+merge the lowered per-aggregate branches never fuse
  // back together; without prune the dead Residence dimension blocks the
  // fused claim. Every ablation must fall back — and render identically.
  for (std::uint32_t mask :
       {kAllRules & ~(kRuleHoistTimeslice | kRuleMergeSiblingAggregates),
        kAllRules & ~kRulePruneDeadDimensions, std::uint32_t{0}}) {
    Session ablated;
    CompileOptions options;
    options.rewrites.rule_mask = mask;
    ablated.set_compile_options(options);
    ASSERT_TRUE(ablated.Register("clinical", clinical.mo).ok());
    ExecContext exec(1, 4096);
    auto result = ablated.Execute(statement, &exec);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->ToString(), expected->ToString()) << "mask " << mask;
    EXPECT_GT(exec.stats.plan_fallbacks, 0u) << "mask " << mask;
    EXPECT_EQ(exec.stats.fused_pipelines, 0u) << "mask " << mask;
  }

  // Fusion disabled: rewrites still run, execution falls back.
  Session unfused;
  CompileOptions options;
  options.enable_fusion = false;
  unfused.set_compile_options(options);
  ASSERT_TRUE(unfused.Register("clinical", std::move(clinical.mo)).ok());
  ExecContext exec(1, 4096);
  auto result = unfused.Execute(statement, &exec);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->ToString(), expected->ToString());
  EXPECT_GT(exec.stats.plan_fallbacks, 0u);
  EXPECT_GT(exec.stats.rewrites_applied, 0u);
}

TEST(CompiledDifferentialTest, ErrorMessageParity) {
  ClinicalMo clinical = BuildClinical(200);
  Session compiled;
  ASSERT_TRUE(compiled.Register("clinical", clinical.mo).ok());
  Session interpreted;
  CompileOptions off;
  off.enable_compiler = false;
  interpreted.set_compile_options(off);
  ASSERT_TRUE(
      interpreted.Register("clinical", std::move(clinical.mo)).ok());

  const char* bad[] = {
      "SELECT COUNT FROM clinical BY Nowhere.Level",
      "SELECT COUNT FROM clinical BY Diagnosis.\"No Such Category\"",
      "SELECT COUNT FROM clinical WHERE Nowhere.Level = 'x'",
      "SELECT SUM(Nowhere) FROM clinical",
      "SELECT COUNT FROM clinical ASOF '99/99/9999'",
      "SELECT COUNT FROM nowhere",
  };
  for (const char* statement : bad) {
    auto a = compiled.Execute(statement);
    auto b = interpreted.Execute(statement);
    ASSERT_FALSE(a.ok()) << statement;
    ASSERT_FALSE(b.ok()) << statement;
    EXPECT_EQ(a.status().message(), b.status().message()) << statement;
  }
}

// ---- EXPLAIN ----------------------------------------------------------

TEST(ExplainTest, RendersPlansRulesAndPhysicalChoice) {
  ClinicalMo clinical = BuildClinical(500);
  Session session;
  ASSERT_TRUE(session.Register("clinical", std::move(clinical.mo)).ok());
  auto result = session.Execute(
      "EXPLAIN SELECT COUNT, COUNT(Diagnosis) FROM clinical "
      "BY Diagnosis.\"Diagnosis Group\" "
      "WHERE Diagnosis.\"Diagnosis Family\" = 'F1' ASOF 'NOW'");
  ASSERT_TRUE(result.ok()) << result.status();
  const std::string text = result->ToString();
  EXPECT_NE(text.find("logical plan:"), std::string::npos) << text;
  EXPECT_NE(text.find("optimized plan:"), std::string::npos) << text;
  EXPECT_NE(text.find("rewrites:"), std::string::npos) << text;
  EXPECT_NE(text.find("hoist-timeslice"), std::string::npos) << text;
  EXPECT_NE(text.find("merge-sibling-aggregates"), std::string::npos)
      << text;
  EXPECT_NE(text.find("physical:"), std::string::npos) << text;
  EXPECT_NE(text.find("fused"), std::string::npos) << text;
}

TEST(ExplainTest, ExplainNeverExecutesOrMutates) {
  ClinicalMo clinical = BuildClinical(200);
  const std::size_t facts_before = clinical.mo.facts().size();
  Session session;
  ASSERT_TRUE(session.Register("clinical", clinical.mo).ok());

  auto insert = session.Execute(
      "EXPLAIN INSERT INTO clinical FACT 999999 "
      "(Diagnosis.\"Low-level Diagnosis\" = 'L0')");
  ASSERT_TRUE(insert.ok()) << insert.status();
  EXPECT_NE(insert->ToString().find("direct execution"), std::string::npos);
  auto mo = session.Get("clinical");
  ASSERT_TRUE(mo.ok());
  EXPECT_EQ((*mo)->facts().size(), facts_before);

  // EXPLAIN SELECT leaves the execution counters untouched.
  ExecContext exec(1, 4096);
  auto select = session.Execute(
      "EXPLAIN SELECT COUNT FROM clinical BY Diagnosis.\"Diagnosis Group\"",
      &exec);
  ASSERT_TRUE(select.ok()) << select.status();
  EXPECT_EQ(exec.stats.fused_pipelines, 0u);
  EXPECT_EQ(exec.stats.plan_fallbacks, 0u);
  EXPECT_EQ(exec.stats.rewrites_applied, 0u);
}

TEST(ExplainTest, FallbackShapeSaysWhy) {
  ClinicalMo clinical = BuildClinical(200);
  Session session;
  CompileOptions options;
  options.rewrites.rule_mask = 0;  // nothing fires; merge stays multi-child
  session.set_compile_options(options);
  ASSERT_TRUE(session.Register("clinical", std::move(clinical.mo)).ok());
  auto result = session.Execute(
      "EXPLAIN SELECT COUNT, COUNT(Diagnosis) FROM clinical "
      "BY Diagnosis.\"Diagnosis Group\"");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NE(result->ToString().find("tree-walk fallback"),
            std::string::npos)
      << result->ToString();
}

}  // namespace
}  // namespace mdql
}  // namespace mddc
