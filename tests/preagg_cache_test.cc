#include <gtest/gtest.h>

#include "engine/executor.h"
#include "engine/preagg_cache.h"
#include "io/serialize.h"
#include "workload/clinical_generator.h"
#include "workload/retail_generator.h"

namespace mddc {
namespace {

RetailMo BuildRetail(std::size_t purchases = 300) {
  RetailWorkloadParams params;
  params.num_purchases = purchases;
  auto workload =
      GenerateRetailWorkload(params, std::make_shared<FactRegistry>());
  return std::move(workload).ValueOrDie();
}

std::vector<CategoryTypeIndex> GroupingAt(const MdObject& mo,
                                          std::size_t dim,
                                          CategoryTypeIndex category) {
  std::vector<CategoryTypeIndex> grouping;
  for (std::size_t i = 0; i < mo.dimension_count(); ++i) {
    grouping.push_back(i == dim ? category : mo.dimension(i).type().top());
  }
  return grouping;
}

/// Sums the result dimension of an aggregate MO, keyed by grouping value
/// in `dim`.
std::map<ValueId, double> ResultsByValue(const MdObject& aggregated,
                                         std::size_t dim) {
  std::map<ValueId, double> results;
  const std::size_t result_dim = aggregated.dimension_count() - 1;
  for (FactId fact : aggregated.facts()) {
    auto group_pairs = aggregated.relation(dim).ForFact(fact);
    auto value_pairs = aggregated.relation(result_dim).ForFact(fact);
    if (group_pairs.empty() || value_pairs.empty()) continue;
    results[group_pairs.front()->value] =
        *aggregated.dimension(result_dim)
             .NumericValueOf(value_pairs.front()->value);
  }
  return results;
}

TEST(PreAggCacheTest, ExactHitServedFromCache) {
  RetailMo retail = BuildRetail();
  PreAggregateCache cache(retail.mo);
  auto grouping = GroupingAt(retail.mo, retail.product_dim, retail.category);
  ASSERT_TRUE(cache.Query(AggFunction::Sum(retail.amount_dim), grouping).ok());
  ASSERT_TRUE(cache.Query(AggFunction::Sum(retail.amount_dim), grouping).ok());
  EXPECT_EQ(cache.stats().base_scans, 1u);
  EXPECT_EQ(cache.stats().exact_hits, 1u);
}

TEST(PreAggCacheTest, RollUpReuseMatchesBaseScan) {
  RetailMo retail = BuildRetail();

  // Materialize SUM(amount) by Category, then ask by Department: the
  // category-level partials must merge into exactly what a base scan
  // yields.
  PreAggregateCache cache(retail.mo);
  auto by_category =
      GroupingAt(retail.mo, retail.product_dim, retail.category);
  auto by_department =
      GroupingAt(retail.mo, retail.product_dim, retail.department);
  ASSERT_TRUE(
      cache.Materialize(AggFunction::Sum(retail.amount_dim), by_category)
          .ok());
  auto reused = cache.Query(AggFunction::Sum(retail.amount_dim),
                            by_department);
  ASSERT_TRUE(reused.ok()) << reused.status();
  EXPECT_EQ(cache.stats().rollup_hits, 1u);
  EXPECT_EQ(cache.stats().base_scans, 1u);

  PreAggregateCache fresh(retail.mo);
  auto scanned = fresh.Query(AggFunction::Sum(retail.amount_dim),
                             by_department);
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ(ResultsByValue(*reused, retail.product_dim),
            ResultsByValue(*scanned, retail.product_dim));
}

TEST(PreAggCacheTest, MinMaxReuse) {
  RetailMo retail = BuildRetail();
  PreAggregateCache cache(retail.mo);
  auto by_city = GroupingAt(retail.mo, retail.store_dim, retail.city);
  auto by_region = GroupingAt(retail.mo, retail.store_dim, retail.region);
  ASSERT_TRUE(
      cache.Materialize(AggFunction::Max(retail.price_dim), by_city).ok());
  auto reused = cache.Query(AggFunction::Max(retail.price_dim), by_region);
  ASSERT_TRUE(reused.ok()) << reused.status();
  EXPECT_EQ(cache.stats().rollup_hits, 1u);

  PreAggregateCache fresh(retail.mo);
  auto scanned = fresh.Query(AggFunction::Max(retail.price_dim), by_region);
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ(ResultsByValue(*reused, retail.store_dim),
            ResultsByValue(*scanned, retail.store_dim));
}

TEST(PreAggCacheTest, AvgIsNeverReused) {
  // AVG is not distributive: its materialization is c-typed, so a
  // coarser AVG query must rescan the base.
  RetailMo retail = BuildRetail();
  PreAggregateCache cache(retail.mo);
  auto by_city = GroupingAt(retail.mo, retail.store_dim, retail.city);
  auto by_region = GroupingAt(retail.mo, retail.store_dim, retail.region);
  ASSERT_TRUE(
      cache.Materialize(AggFunction::Avg(retail.price_dim), by_city).ok());
  auto result = cache.Query(AggFunction::Avg(retail.price_dim), by_region);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(cache.stats().rollup_hits, 0u);
  EXPECT_EQ(cache.stats().base_scans, 2u);
  EXPECT_GE(cache.stats().reuse_refusals, 1u);
}

TEST(PreAggCacheTest, DifferentFunctionsDoNotCrossReuse) {
  RetailMo retail = BuildRetail();
  PreAggregateCache cache(retail.mo);
  auto by_city = GroupingAt(retail.mo, retail.store_dim, retail.city);
  auto by_region = GroupingAt(retail.mo, retail.store_dim, retail.region);
  ASSERT_TRUE(
      cache.Materialize(AggFunction::Sum(retail.amount_dim), by_city).ok());
  auto min_query = cache.Query(AggFunction::Min(retail.amount_dim),
                               by_region);
  ASSERT_TRUE(min_query.ok());
  EXPECT_EQ(cache.stats().rollup_hits, 0u);
}

TEST(PreAggCacheTest, SetCountReuseOnStrictHierarchy) {
  RetailMo retail = BuildRetail();
  PreAggregateCache cache(retail.mo);
  auto by_product =
      GroupingAt(retail.mo, retail.product_dim, retail.product);
  auto by_department =
      GroupingAt(retail.mo, retail.product_dim, retail.department);
  ASSERT_TRUE(cache.Materialize(AggFunction::SetCount(), by_product).ok());
  auto reused = cache.Query(AggFunction::SetCount(), by_department);
  ASSERT_TRUE(reused.ok()) << reused.status();
  EXPECT_EQ(cache.stats().rollup_hits, 1u);

  // Purchases partition over products (each purchase has one product), so
  // summed counts equal direct counts.
  PreAggregateCache fresh(retail.mo);
  auto scanned = fresh.Query(AggFunction::SetCount(), by_department);
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ(ResultsByValue(*reused, retail.product_dim),
            ResultsByValue(*scanned, retail.product_dim));
}

TEST(PreAggCacheTest, NonStrictHierarchyBlocksReuseEndToEnd) {
  // The paper's safety story end to end: a non-strict diagnosis
  // hierarchy makes group counts overlap, aggregate formation types the
  // materialization c, and the cache therefore refuses to derive the
  // grand total from the per-group partials (which would double count).
  ClinicalWorkloadParams params;
  params.num_patients = 120;
  params.num_groups = 3;
  params.non_strict_rate = 0.5;
  params.mean_extra_diagnoses = 0.0;
  params.reclassified_rate = 0.0;
  params.uncertain_rate = 0.0;
  params.coarse_granularity_rate = 0.0;
  auto workload =
      GenerateClinicalWorkload(params, std::make_shared<FactRegistry>());
  ASSERT_TRUE(workload.ok());
  PreAggregateCache cache(workload->mo);
  auto by_group =
      GroupingAt(workload->mo, workload->diagnosis_dim, workload->group);
  auto grand_total = GroupingAt(
      workload->mo, workload->diagnosis_dim,
      workload->mo.dimension(workload->diagnosis_dim).type().top());
  ASSERT_TRUE(cache.Materialize(AggFunction::SetCount(), by_group).ok());
  auto total = cache.Query(AggFunction::SetCount(), grand_total);
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(cache.stats().rollup_hits, 0u);
  EXPECT_GE(cache.stats().reuse_refusals, 1u);
  // And the base-scanned total is the true patient count, not the
  // inflated sum of overlapping group counts.
  const std::size_t result_dim = total->dimension_count() - 1;
  ASSERT_EQ(total->fact_count(), 1u);
  auto pairs = total->relation(result_dim).ForFact(total->facts()[0]);
  EXPECT_DOUBLE_EQ(*total->dimension(result_dim)
                        .NumericValueOf(pairs.front()->value),
                   120.0);
}

TEST(PreAggCacheTest, StatsIdenticalUnderParallelExecution) {
  // The executor only changes how base scans are computed, never what
  // the cache decides: an identical sequence of Materialize/Query calls
  // must produce identical hit/scan/refusal counters — and identical
  // results — with and without a parallel context.
  RetailMo retail = BuildRetail();
  auto by_category =
      GroupingAt(retail.mo, retail.product_dim, retail.category);
  auto by_department =
      GroupingAt(retail.mo, retail.product_dim, retail.department);
  auto by_city = GroupingAt(retail.mo, retail.store_dim, retail.city);
  auto by_region = GroupingAt(retail.mo, retail.store_dim, retail.region);

  PreAggregateCache sequential_cache(retail.mo);
  PreAggregateCache parallel_cache(retail.mo);
  ExecContext ctx(8, /*min_facts=*/1);

  // The same op sequence exercising every counter: a materialize, an
  // exact hit, a rollup, and an AVG refusal.
  auto drive = [&](PreAggregateCache& cache,
                   ExecContext* exec) -> std::vector<std::string> {
    std::vector<std::string> serialized;
    auto record = [&](Result<MdObject> result) {
      ASSERT_TRUE(result.ok()) << result.status();
      auto bytes = io::WriteMo(*result);
      ASSERT_TRUE(bytes.ok()) << bytes.status();
      serialized.push_back(*bytes);
    };
    EXPECT_TRUE(cache
                    .Materialize(AggFunction::Sum(retail.amount_dim),
                                 by_category, exec)
                    .ok());
    record(cache.Query(AggFunction::Sum(retail.amount_dim), by_category,
                       exec));
    record(cache.Query(AggFunction::Sum(retail.amount_dim), by_department,
                       exec));
    EXPECT_TRUE(
        cache.Materialize(AggFunction::Avg(retail.price_dim), by_city, exec)
            .ok());
    record(cache.Query(AggFunction::Avg(retail.price_dim), by_region, exec));
    return serialized;
  };

  std::vector<std::string> sequential_results =
      drive(sequential_cache, nullptr);
  std::vector<std::string> parallel_results = drive(parallel_cache, &ctx);

  EXPECT_EQ(parallel_cache.stats().exact_hits,
            sequential_cache.stats().exact_hits);
  EXPECT_EQ(parallel_cache.stats().rollup_hits,
            sequential_cache.stats().rollup_hits);
  EXPECT_EQ(parallel_cache.stats().base_scans,
            sequential_cache.stats().base_scans);
  EXPECT_EQ(parallel_cache.stats().reuse_refusals,
            sequential_cache.stats().reuse_refusals);
  EXPECT_EQ(parallel_cache.size(), sequential_cache.size());
  ASSERT_EQ(parallel_results.size(), sequential_results.size());
  for (std::size_t i = 0; i < parallel_results.size(); ++i) {
    EXPECT_EQ(parallel_results[i], sequential_results[i])
        << "query " << i << " serialized differently";
  }
  // And the parallel engine really did run for the strict SUM scans.
  EXPECT_GE(ctx.stats.parallel_runs, 1u);
}

TEST(PreAggCacheTest, FreshContextsAmortizeThreadStartupAcrossMisses) {
  // Each miss below runs under a brand-new ExecContext, the natural
  // shape of a query loop. Only the very first borrow may spawn the
  // shared pool; every later context must reuse it, so repeated misses
  // pay thread startup at most once per process.
  RetailMo retail = BuildRetail();
  PreAggregateCache cache(retail.mo);
  SharedThreadPool(8);  // make "the pool already exists" explicit

  // Pairwise-incomparable groupings (each lowers a different dimension),
  // so every query really is a base-scan miss rather than a rollup hit.
  const CategoryTypeIndex month =
      *retail.mo.dimension(retail.date_dim).type().Find("Month");
  const std::vector<std::vector<CategoryTypeIndex>> groupings = {
      GroupingAt(retail.mo, retail.product_dim, retail.category),
      GroupingAt(retail.mo, retail.store_dim, retail.city),
      GroupingAt(retail.mo, retail.date_dim, month),
  };
  std::size_t reuses = 0;
  for (const auto& grouping : groupings) {
    ExecContext ctx(8, /*min_facts=*/1);
    auto result =
        cache.Query(AggFunction::Sum(retail.amount_dim), grouping, &ctx);
    ASSERT_TRUE(result.ok()) << result.status();
    reuses += ctx.stats.pool_reuses;
  }
  EXPECT_EQ(cache.stats().base_scans, groupings.size());
  EXPECT_EQ(reuses, groupings.size());
}

TEST(PreAggCacheTest, StatsResetWorks) {
  RetailMo retail = BuildRetail(50);
  PreAggregateCache cache(retail.mo);
  auto grouping = GroupingAt(retail.mo, retail.product_dim, retail.category);
  ASSERT_TRUE(cache.Query(AggFunction::Sum(retail.amount_dim), grouping).ok());
  EXPECT_EQ(cache.stats().base_scans, 1u);
  cache.ResetStats();
  EXPECT_EQ(cache.stats().base_scans, 0u);
  EXPECT_EQ(cache.size(), 1u);
}

}  // namespace
}  // namespace mddc
