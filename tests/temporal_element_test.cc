#include <gtest/gtest.h>

#include <random>

#include "common/date.h"
#include "temporal/temporal_element.h"

namespace mddc {
namespace {

Chronon Day(const std::string& date) { return *ParseDate(date); }

TEST(IntervalTest, MakeRejectsReversed) {
  EXPECT_TRUE(Interval::Make(1, 5).ok());
  EXPECT_TRUE(Interval::Make(5, 5).ok());
  EXPECT_FALSE(Interval::Make(6, 5).ok());
}

TEST(IntervalTest, ContainsAndOverlap) {
  Interval i(10, 20);
  EXPECT_TRUE(i.Contains(10));
  EXPECT_TRUE(i.Contains(20));
  EXPECT_FALSE(i.Contains(9));
  EXPECT_TRUE(i.Overlaps(Interval(20, 30)));
  EXPECT_FALSE(i.Overlaps(Interval(21, 30)));
  EXPECT_TRUE(i.Meets(Interval(21, 30)));  // adjacent intervals meet
  EXPECT_FALSE(i.Meets(Interval(22, 30)));
}

TEST(IntervalTest, NowContainsAllConcreteChronons) {
  // [a, NOW] must cover every concrete chronon >= a because NOW is the
  // growing current time.
  Interval i(Day("01/01/89"), kNowChronon);
  EXPECT_TRUE(i.Contains(Day("01/01/99")));
  EXPECT_TRUE(i.Contains(Day("01/01/25")));
  EXPECT_FALSE(i.Contains(Day("31/12/88")));
}

TEST(IntervalTest, BindReplacesNow) {
  Interval i(Day("01/01/89"), kNowChronon);
  Interval bound = i.Bind(Day("15/06/95"));
  EXPECT_EQ(bound.end(), Day("15/06/95"));
  EXPECT_EQ(bound.begin(), Day("01/01/89"));
}

TEST(IntervalTest, ParsePaperNotation) {
  auto i = Interval::Parse("[23/03/75-24/12/75]");
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(i->begin(), Day("23/03/75"));
  EXPECT_EQ(i->end(), Day("24/12/75"));

  auto now_ending = Interval::Parse("01/01/80-NOW");
  ASSERT_TRUE(now_ending.ok());
  EXPECT_EQ(now_ending->end(), kNowChronon);

  auto single = Interval::Parse("01/01/80");
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(single->Length(), 1);

  EXPECT_FALSE(Interval::Parse("garbage").ok());
}

TEST(IntervalTest, ToStringRoundTrips) {
  auto i = Interval::Parse("[01/01/70-31/12/79]");
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(i->ToString(), "[01/01/1970-31/12/1979]");
  auto again = Interval::Parse(i->ToString());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *i);
}

TEST(TemporalElementTest, DefaultIsEmpty) {
  TemporalElement element;
  EXPECT_TRUE(element.Empty());
  EXPECT_EQ(element.Cardinality(), 0);
  EXPECT_EQ(element.ToString(), "{}");
}

TEST(TemporalElementTest, CoalescesAdjacentIntervals) {
  TemporalElement element{Interval(1, 5), Interval(6, 10)};
  ASSERT_EQ(element.intervals().size(), 1u);
  EXPECT_EQ(element.intervals()[0], Interval(1, 10));
}

TEST(TemporalElementTest, CoalescesOverlappingUnsorted) {
  TemporalElement element{Interval(20, 30), Interval(1, 25), Interval(40, 41)};
  ASSERT_EQ(element.intervals().size(), 2u);
  EXPECT_EQ(element.intervals()[0], Interval(1, 30));
  EXPECT_EQ(element.intervals()[1], Interval(40, 41));
}

TEST(TemporalElementTest, UnionIsCoalesced) {
  TemporalElement a(Interval(1, 5));
  TemporalElement b(Interval(6, 9));
  TemporalElement u = a.Union(b);
  ASSERT_EQ(u.intervals().size(), 1u);
  EXPECT_EQ(u.Cardinality(), 9);
}

TEST(TemporalElementTest, IntersectBasic) {
  TemporalElement a{Interval(1, 10), Interval(20, 30)};
  TemporalElement b{Interval(5, 25)};
  TemporalElement i = a.Intersect(b);
  ASSERT_EQ(i.intervals().size(), 2u);
  EXPECT_EQ(i.intervals()[0], Interval(5, 10));
  EXPECT_EQ(i.intervals()[1], Interval(20, 25));
}

TEST(TemporalElementTest, IntersectDisjointIsEmpty) {
  TemporalElement a(Interval(1, 5));
  TemporalElement b(Interval(6, 10));
  EXPECT_TRUE(a.Intersect(b).Empty());
  EXPECT_FALSE(a.Overlaps(b));
}

TEST(TemporalElementTest, SubtractSplitsIntervals) {
  TemporalElement a(Interval(1, 10));
  TemporalElement b(Interval(4, 6));
  TemporalElement d = a.Subtract(b);
  ASSERT_EQ(d.intervals().size(), 2u);
  EXPECT_EQ(d.intervals()[0], Interval(1, 3));
  EXPECT_EQ(d.intervals()[1], Interval(7, 10));
}

TEST(TemporalElementTest, SubtractEverything) {
  TemporalElement a(Interval(1, 10));
  EXPECT_TRUE(a.Subtract(TemporalElement::Always()).Empty());
  EXPECT_EQ(a.Subtract(TemporalElement()), a);
}

TEST(TemporalElementTest, ComplementRoundTrip) {
  TemporalElement a{Interval(1, 10), Interval(50, 60)};
  EXPECT_EQ(a.Complement().Complement(), a);
  EXPECT_TRUE(a.Intersect(a.Complement()).Empty());
  EXPECT_EQ(a.Union(a.Complement()), TemporalElement::Always());
}

TEST(TemporalElementTest, CoversReflexiveAndSubset) {
  TemporalElement a(Interval(1, 10));
  TemporalElement sub(Interval(3, 5));
  EXPECT_TRUE(a.Covers(a));
  EXPECT_TRUE(a.Covers(sub));
  EXPECT_FALSE(sub.Covers(a));
  EXPECT_TRUE(a.Covers(TemporalElement()));
}

TEST(TemporalElementTest, BindDropsEmptyIntervals) {
  // [01/01/82-NOW] bound at 1975 is empty; bound at 1990 ends 1990.
  TemporalElement element(Interval(Day("01/01/82"), kNowChronon));
  EXPECT_TRUE(element.Bind(Day("01/01/75")).Empty());
  TemporalElement bound = element.Bind(Day("01/01/90"));
  ASSERT_FALSE(bound.Empty());
  EXPECT_EQ(bound.intervals()[0].end(), Day("01/01/90"));
}

TEST(TemporalElementTest, ParseMultipleIntervals) {
  auto element = TemporalElement::Parse("[01/01/70-31/12/79],[01/01/85-NOW]");
  ASSERT_TRUE(element.ok());
  EXPECT_EQ(element->intervals().size(), 2u);
  EXPECT_TRUE(element->Contains(Day("15/06/75")));
  EXPECT_FALSE(element->Contains(Day("15/06/82")));
  EXPECT_TRUE(element->Contains(Day("15/06/99")));
}

TEST(TemporalElementTest, ContainsUsesBinarySearch) {
  TemporalElement element;
  for (int i = 0; i < 100; ++i) element.Add(Interval(i * 10, i * 10 + 4));
  EXPECT_TRUE(element.Contains(500));
  EXPECT_TRUE(element.Contains(504));
  EXPECT_FALSE(element.Contains(505));
  EXPECT_FALSE(element.Contains(-1));
}

// Property sweep: randomized set-algebra laws checked against a bitmap
// model over a small universe.
class TemporalElementPropertyTest : public ::testing::TestWithParam<int> {};

constexpr int kUniverse = 64;

TemporalElement RandomElement(std::mt19937& rng) {
  std::uniform_int_distribution<int> coin(0, 3);
  TemporalElement element;
  int pos = 0;
  while (pos < kUniverse) {
    int len = coin(rng) + 1;
    if (coin(rng) == 0) {
      element.Add(Interval(pos, std::min(pos + len, kUniverse - 1)));
    }
    pos += len + 1;
  }
  return element;
}

std::vector<bool> ToBitmap(const TemporalElement& element) {
  std::vector<bool> bits(kUniverse, false);
  for (int i = 0; i < kUniverse; ++i) bits[i] = element.Contains(i);
  return bits;
}

TEST_P(TemporalElementPropertyTest, SetAlgebraMatchesBitmapModel) {
  std::mt19937 rng(GetParam());
  TemporalElement a = RandomElement(rng);
  TemporalElement b = RandomElement(rng);
  std::vector<bool> ba = ToBitmap(a);
  std::vector<bool> bb = ToBitmap(b);

  std::vector<bool> u = ToBitmap(a.Union(b));
  std::vector<bool> i = ToBitmap(a.Intersect(b));
  std::vector<bool> d = ToBitmap(a.Subtract(b));
  for (int k = 0; k < kUniverse; ++k) {
    EXPECT_EQ(u[k], ba[k] || bb[k]) << "union differs at " << k;
    EXPECT_EQ(i[k], ba[k] && bb[k]) << "intersect differs at " << k;
    EXPECT_EQ(d[k], ba[k] && !bb[k]) << "subtract differs at " << k;
  }
}

TEST_P(TemporalElementPropertyTest, ResultsAreAlwaysCoalesced) {
  std::mt19937 rng(GetParam() + 1000);
  TemporalElement a = RandomElement(rng);
  TemporalElement b = RandomElement(rng);
  for (const TemporalElement& e :
       {a.Union(b), a.Intersect(b), a.Subtract(b)}) {
    const auto& intervals = e.intervals();
    for (std::size_t k = 0; k + 1 < intervals.size(); ++k) {
      // Sorted, disjoint and non-adjacent.
      EXPECT_LT(intervals[k].end() + 1, intervals[k + 1].begin());
    }
  }
}

TEST_P(TemporalElementPropertyTest, DeMorgan) {
  std::mt19937 rng(GetParam() + 2000);
  TemporalElement a = RandomElement(rng);
  TemporalElement b = RandomElement(rng);
  EXPECT_EQ(a.Union(b).Complement(),
            a.Complement().Intersect(b.Complement()));
  EXPECT_EQ(a.Intersect(b).Complement(),
            a.Complement().Union(b.Complement()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TemporalElementPropertyTest,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace mddc
