#include <gtest/gtest.h>

#include "algebra/derived.h"
#include "fixtures.h"

namespace mddc {
namespace {

using testing_fixtures::BuildDiagnosisDimension;
using testing_fixtures::Day;
using testing_fixtures::During;

MdObject BuildSnapshotPatientMo() {
  auto registry = std::make_shared<FactRegistry>();
  MdObject mo("Patient", {BuildDiagnosisDimension()}, registry);
  FactId p1 = registry->Atom(1);
  FactId p2 = registry->Atom(2);
  (void)mo.AddFact(p1);
  (void)mo.AddFact(p2);
  (void)mo.Relate(0, p1, ValueId(9));
  (void)mo.Relate(0, p2, ValueId(3));
  (void)mo.Relate(0, p2, ValueId(5));
  (void)mo.Relate(0, p2, ValueId(8));
  (void)mo.Relate(0, p2, ValueId(9));
  return mo;
}

TEST(RollUpTest, RollUpToGroupMatchesAggregateFormation) {
  MdObject mo = BuildSnapshotPatientMo();
  CategoryTypeIndex group = *mo.dimension(0).type().Find("Diagnosis Group");
  auto rolled = RollUp(mo, 0, group, AggFunction::SetCount());
  ASSERT_TRUE(rolled.ok()) << rolled.status();
  EXPECT_EQ(rolled->fact_count(), 2u);  // groups 11 and 12
}

TEST(RollUpTest, DrillDownToFamilyGivesFinerGroups) {
  MdObject mo = BuildSnapshotPatientMo();
  CategoryTypeIndex family = *mo.dimension(0).type().Find("Diagnosis Family");
  auto drilled = DrillDown(mo, 0, family, AggFunction::SetCount());
  ASSERT_TRUE(drilled.ok());
  // Families with patients: 9 ({1,2}), 8 ({2}), 7 ({2} via 3<=7),
  // 4 ({2} via 5<=4); family 10 has none. Fact sets are canonical, so F'
  // holds two distinct sets — {1,2} and {2} — while the fact-dimension
  // relation carries the four family links.
  EXPECT_EQ(drilled->fact_count(), 2u);
  EXPECT_EQ(drilled->relation(0).size(), 4u);
}

TEST(RollUpTest, RejectsBadDimension) {
  MdObject mo = BuildSnapshotPatientMo();
  EXPECT_FALSE(RollUp(mo, 5, 0, AggFunction::SetCount()).ok());
}

TEST(ValueJoinTest, JoinsFactsSharingACharacterizingValue) {
  auto registry = std::make_shared<FactRegistry>();
  // Patients characterized by diagnosis families; a second MO of
  // treatment protocols characterized by the families they apply to.
  MdObject patients("Patient", {BuildDiagnosisDimension()}, registry);
  FactId p1 = registry->Atom(1);
  FactId p2 = registry->Atom(2);
  (void)patients.AddFact(p1);
  (void)patients.AddFact(p2);
  (void)patients.Relate(0, p1, ValueId(9));
  (void)patients.Relate(0, p2, ValueId(3));  // low-level under family 7/8

  MdObject protocols("Protocol",
                     {BuildDiagnosisDimension().RenamedAs("AppliesTo")},
                     registry);
  FactId t1 = registry->Atom(100);
  FactId t2 = registry->Atom(101);
  (void)protocols.AddFact(t1);
  (void)protocols.AddFact(t2);
  (void)protocols.Relate(0, t1, ValueId(9));   // insulin protocol
  (void)protocols.Relate(0, t2, ValueId(10));  // non-insulin protocol

  CategoryTypeIndex family =
      *patients.dimension(0).type().Find("Diagnosis Family");
  auto joined = ValueJoin(patients, 0, protocols, 0, family);
  ASSERT_TRUE(joined.ok()) << joined.status();
  // p1 ~> family 9 matches protocol t1 only; p2 ~> families 7, 8 matches
  // nothing.
  ASSERT_EQ(joined->fact_count(), 1u);
  EXPECT_TRUE(joined->HasFact(registry->Pair(p1, t1)));
  EXPECT_EQ(joined->dimension_count(), 2u);
  EXPECT_EQ(joined->schema().fact_type(), "(Patient,Protocol)");
}

TEST(ValueJoinTest, ClashingDimensionNamesAreSuffixed) {
  auto registry = std::make_shared<FactRegistry>();
  MdObject a("A", {BuildDiagnosisDimension()}, registry);
  MdObject b("B", {BuildDiagnosisDimension()}, registry);
  FactId fa = registry->Atom(1);
  FactId fb = registry->Atom(2);
  (void)a.AddFact(fa);
  (void)a.Relate(0, fa, ValueId(9));
  (void)b.AddFact(fb);
  (void)b.Relate(0, fb, ValueId(9));
  CategoryTypeIndex family = *a.dimension(0).type().Find("Diagnosis Family");
  auto joined = ValueJoin(a, 0, b, 0, family);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->dimension(0).name(), "Diagnosis");
  EXPECT_EQ(joined->dimension(1).name(), "Diagnosis'");
  EXPECT_EQ(joined->fact_count(), 1u);
}

TEST(DuplicateRemovalTest, MergesValueEquivalentFacts) {
  auto registry = std::make_shared<FactRegistry>();
  MdObject mo("Patient", {BuildDiagnosisDimension()}, registry);
  FactId p1 = registry->Atom(1);
  FactId p2 = registry->Atom(2);
  FactId p3 = registry->Atom(3);
  (void)mo.AddFact(p1);
  (void)mo.AddFact(p2);
  (void)mo.AddFact(p3);
  (void)mo.Relate(0, p1, ValueId(9));
  (void)mo.Relate(0, p2, ValueId(9));  // same value combination as p1
  (void)mo.Relate(0, p3, ValueId(5));

  auto deduped = DuplicateRemoval(mo);
  ASSERT_TRUE(deduped.ok());
  ASSERT_EQ(deduped->fact_count(), 2u);
  EXPECT_TRUE(deduped->HasFact(registry->Set({p1, p2})));
  EXPECT_TRUE(deduped->HasFact(registry->Set({p3})));
  EXPECT_EQ(deduped->schema().fact_type(), "Set-of-Patient");
}

TEST(DuplicateRemovalTest, DifferentPairTimesStillMerge) {
  auto registry = std::make_shared<FactRegistry>();
  MdObject mo("Patient", {BuildDiagnosisDimension()}, registry,
              TemporalType::kValidTime);
  FactId p1 = registry->Atom(1);
  FactId p2 = registry->Atom(2);
  (void)mo.AddFact(p1);
  (void)mo.AddFact(p2);
  (void)mo.Relate(0, p1, ValueId(9), During("[01/01/82-31/12/89]"));
  (void)mo.Relate(0, p2, ValueId(9), During("[01/01/90-NOW]"));
  auto deduped = DuplicateRemoval(mo);
  ASSERT_TRUE(deduped.ok());
  ASSERT_EQ(deduped->fact_count(), 1u);
  auto pairs = deduped->relation(0).ForFact(registry->Set({p1, p2}));
  ASSERT_EQ(pairs.size(), 1u);
  // The merged pair time is the union of the duplicates' times.
  EXPECT_TRUE(pairs.front()->life.valid.Contains(Day("15/06/85")));
  EXPECT_TRUE(pairs.front()->life.valid.Contains(Day("15/06/95")));
}

TEST(StarJoinTest, RestrictsByValuesAcrossDimensions) {
  auto registry = std::make_shared<FactRegistry>();
  DimensionTypeBuilder residence_builder("Residence");
  residence_builder.AddCategory("Area");
  Dimension residence(std::move(residence_builder.Build()).ValueOrDie());
  CategoryTypeIndex area = *residence.type().Find("Area");
  (void)residence.AddValue(area, ValueId(700));
  (void)residence.AddValue(area, ValueId(701));

  MdObject mo("Patient", {BuildDiagnosisDimension(), residence}, registry);
  FactId p1 = registry->Atom(1);
  FactId p2 = registry->Atom(2);
  (void)mo.AddFact(p1);
  (void)mo.AddFact(p2);
  (void)mo.Relate(0, p1, ValueId(9));
  (void)mo.Relate(0, p2, ValueId(9));
  (void)mo.Relate(1, p1, ValueId(700));
  (void)mo.Relate(1, p2, ValueId(701));

  // Patients with diagnosis family 9 living in area 700: only p1.
  auto joined = StarJoin(mo, {ValueId(9), ValueId(700)});
  ASSERT_TRUE(joined.ok());
  ASSERT_EQ(joined->fact_count(), 1u);
  EXPECT_EQ(joined->facts()[0], p1);

  // No restriction at all keeps everything.
  auto all = StarJoin(mo, {std::nullopt, std::nullopt});
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->fact_count(), 2u);

  EXPECT_FALSE(StarJoin(mo, {std::nullopt}).ok());  // arity mismatch
}

TEST(DrillAcrossTest, JoinsMosThroughSharedSubdimension) {
  auto registry = std::make_shared<FactRegistry>();
  // Two MOs over the *same* diagnosis dimension: patients and treatment
  // protocols — the paper's MO-family "join" scenario.
  MdObject patients("Patient", {BuildDiagnosisDimension()}, registry);
  FactId p1 = registry->Atom(1);
  (void)patients.AddFact(p1);
  (void)patients.Relate(0, p1, ValueId(9));
  MdObject protocols("Protocol", {BuildDiagnosisDimension()}, registry);
  FactId t1 = registry->Atom(100);
  (void)protocols.AddFact(t1);
  (void)protocols.Relate(0, t1, ValueId(5));  // low-level under family 9

  MoFamily family;
  ASSERT_TRUE(family.Add("patients", patients).ok());
  ASSERT_TRUE(family.Add("protocols", protocols).ok());

  CategoryTypeIndex family_cat =
      *patients.dimension(0).type().Find("Diagnosis Family");
  auto joined =
      DrillAcross(family, "patients", 0, "protocols", 0, family_cat);
  ASSERT_TRUE(joined.ok()) << joined.status();
  // p1 ~> family 9; t1 ~> family 9 via 5 <= 9: one pair.
  ASSERT_EQ(joined->fact_count(), 1u);
  EXPECT_TRUE(joined->HasFact(registry->Pair(p1, t1)));
}

TEST(DrillAcrossTest, RejectsDivergedDimensions) {
  auto registry = std::make_shared<FactRegistry>();
  MdObject a("A", {BuildDiagnosisDimension()}, registry);
  Dimension diverged = BuildDiagnosisDimension();
  CategoryTypeIndex low = *diverged.type().Find("Low-level Diagnosis");
  ASSERT_TRUE(diverged.AddValue(low, ValueId(999)).ok());
  MdObject b("B", {std::move(diverged)}, registry);
  MoFamily family;
  ASSERT_TRUE(family.Add("a", std::move(a)).ok());
  ASSERT_TRUE(family.Add("b", std::move(b)).ok());
  CategoryTypeIndex family_cat = *BuildDiagnosisDimension()
                                      .type()
                                      .Find("Diagnosis Family");
  auto joined = DrillAcross(family, "a", 0, "b", 0, family_cat);
  ASSERT_FALSE(joined.ok());
  EXPECT_EQ(joined.status().code(), StatusCode::kSchemaMismatch);
}

TEST(SqlAggregateTest, GroupedCountWithLabels) {
  MdObject mo = BuildSnapshotPatientMo();
  CategoryTypeIndex group = *mo.dimension(0).type().Find("Diagnosis Group");
  // Give the groups Code representations for labeling.
  Representation& rep =
      mo.dimension_mutable(0).RepresentationFor(group, "Code");
  ASSERT_TRUE(rep.Set(ValueId(11), "E1").ok());
  ASSERT_TRUE(rep.Set(ValueId(12), "O2").ok());

  auto rows = SqlAggregate(mo, {SqlGroupBy{0, group, "Code"}},
                           AggFunction::SetCount());
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0].group[0], "E1");
  EXPECT_DOUBLE_EQ((*rows)[0].value, 2.0);
  EXPECT_EQ((*rows)[1].group[0], "O2");
  EXPECT_DOUBLE_EQ((*rows)[1].value, 1.0);
}

TEST(SqlAggregateTest, FallsBackToIdLabels) {
  MdObject mo = BuildSnapshotPatientMo();
  CategoryTypeIndex group = *mo.dimension(0).type().Find("Diagnosis Group");
  auto rows = SqlAggregate(mo, {SqlGroupBy{0, group, "Nope"}},
                           AggFunction::SetCount());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0].group[0].substr(0, 3), "id:");
}

}  // namespace
}  // namespace mddc
