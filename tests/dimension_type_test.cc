#include <gtest/gtest.h>

#include "core/dimension_type.h"

namespace mddc {
namespace {

Result<std::shared_ptr<const DimensionType>> DiagnosisType() {
  DimensionTypeBuilder builder("Diagnosis");
  builder.AddCategory("Low-level Diagnosis", AggregationType::kConstant)
      .AddCategory("Diagnosis Family", AggregationType::kConstant)
      .AddCategory("Diagnosis Group", AggregationType::kConstant)
      .AddOrder("Low-level Diagnosis", "Diagnosis Family")
      .AddOrder("Diagnosis Family", "Diagnosis Group");
  return builder.Build();
}

// The Date-of-Birth dimension type with two hierarchies (paper Figure 2):
// Day < Week and Day < Month < Quarter < Year < Decade.
Result<std::shared_ptr<const DimensionType>> DobType() {
  DimensionTypeBuilder builder("Date of Birth");
  builder.AddCategory("Day", AggregationType::kAverage)
      .AddCategory("Week")
      .AddCategory("Month")
      .AddCategory("Quarter")
      .AddCategory("Year")
      .AddCategory("Decade")
      .AddOrder("Day", "Week")
      .AddOrder("Day", "Month")
      .AddOrder("Month", "Quarter")
      .AddOrder("Quarter", "Year")
      .AddOrder("Year", "Decade");
  return builder.Build();
}

TEST(DimensionTypeTest, BuildsLinearHierarchy) {
  auto type = DiagnosisType();
  ASSERT_TRUE(type.ok());
  // 3 user categories + TOP.
  EXPECT_EQ((*type)->category_count(), 4u);
  EXPECT_EQ((*type)->category((*type)->bottom()).name, "Low-level Diagnosis");
  EXPECT_EQ((*type)->category((*type)->top()).name, kTopCategoryName);
}

TEST(DimensionTypeTest, PredGivesImmediateContainingCategory) {
  auto type = DiagnosisType();
  ASSERT_TRUE(type.ok());
  auto low = (*type)->Find("Low-level Diagnosis");
  auto family = (*type)->Find("Diagnosis Family");
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(family.ok());
  // Pred(Low-level Diagnosis) = {Diagnosis Family} (paper Example 2).
  const auto& pred = (*type)->Pred(*low);
  ASSERT_EQ(pred.size(), 1u);
  EXPECT_EQ(pred[0], *family);
}

TEST(DimensionTypeTest, LessEqIsReflexiveAndTransitive) {
  auto type = DiagnosisType();
  ASSERT_TRUE(type.ok());
  auto low = *(*type)->Find("Low-level Diagnosis");
  auto group = *(*type)->Find("Diagnosis Group");
  EXPECT_TRUE((*type)->LessEq(low, low));
  EXPECT_TRUE((*type)->LessEq(low, group));
  EXPECT_TRUE((*type)->LessEq(low, (*type)->top()));
  EXPECT_FALSE((*type)->LessEq(group, low));
}

TEST(DimensionTypeTest, MultipleHierarchiesFormLattice) {
  auto type = DobType();
  ASSERT_TRUE(type.ok());
  auto day = *(*type)->Find("Day");
  auto week = *(*type)->Find("Week");
  auto decade = *(*type)->Find("Decade");
  EXPECT_TRUE((*type)->LessEq(day, week));
  EXPECT_TRUE((*type)->LessEq(day, decade));
  // Week and Decade are incomparable: different aggregation paths.
  EXPECT_FALSE((*type)->LessEq(week, decade));
  EXPECT_FALSE((*type)->LessEq(decade, week));
  // Day has two immediate predecessors (requirement 3).
  EXPECT_EQ((*type)->Pred(day).size(), 2u);
}

TEST(DimensionTypeTest, AtOrAboveIsBottomUpTopologicalOrder) {
  auto type = DobType();
  ASSERT_TRUE(type.ok());
  auto day = *(*type)->Find("Day");
  std::vector<CategoryTypeIndex> order = (*type)->AtOrAbove(day);
  // All 6 user categories + TOP are above Day.
  EXPECT_EQ(order.size(), 7u);
  EXPECT_EQ(order.front(), day);
  EXPECT_EQ(order.back(), (*type)->top());
  // Every category appears after all its children in the order.
  for (std::size_t i = 0; i < order.size(); ++i) {
    for (CategoryTypeIndex child : (*type)->Children(order[i])) {
      auto child_pos = std::find(order.begin(), order.end(), child);
      if (child_pos != order.end()) {
        EXPECT_LT(static_cast<std::size_t>(child_pos - order.begin()), i);
      }
    }
  }
}

TEST(DimensionTypeTest, AggregationPathsEnumerateHierarchies) {
  auto dob = DobType();
  ASSERT_TRUE(dob.ok());
  auto day = *(*dob)->Find("Day");
  auto paths = (*dob)->AggregationPaths(day);
  // Figure 2: exactly two roll-up routes from Day.
  ASSERT_EQ(paths.size(), 2u);
  auto names = [&](const std::vector<CategoryTypeIndex>& path) {
    std::vector<std::string> result;
    for (CategoryTypeIndex c : path) {
      result.push_back((*dob)->category(c).name);
    }
    return result;
  };
  std::vector<std::vector<std::string>> rendered = {names(paths[0]),
                                                    names(paths[1])};
  std::sort(rendered.begin(), rendered.end());
  EXPECT_EQ(rendered[0],
            (std::vector<std::string>{"Day", "Month", "Quarter", "Year",
                                      "Decade", kTopCategoryName}));
  EXPECT_EQ(rendered[1],
            (std::vector<std::string>{"Day", "Week", kTopCategoryName}));

  // A chain has exactly one path; starting at TOP yields the trivial one.
  auto diagnosis = DiagnosisType();
  ASSERT_TRUE(diagnosis.ok());
  EXPECT_EQ((*diagnosis)->AggregationPaths((*diagnosis)->bottom()).size(),
            1u);
  auto top_paths = (*diagnosis)->AggregationPaths((*diagnosis)->top());
  ASSERT_EQ(top_paths.size(), 1u);
  EXPECT_EQ(top_paths[0].size(), 1u);
}

TEST(DimensionTypeTest, RejectsTwoBottoms) {
  DimensionTypeBuilder builder("Broken");
  builder.AddCategory("A").AddCategory("B").AddCategory("C");
  builder.AddOrder("A", "C").AddOrder("B", "C");
  auto type = builder.Build();
  ASSERT_FALSE(type.ok());
  EXPECT_EQ(type.status().code(), StatusCode::kInvariantViolation);
}

TEST(DimensionTypeTest, RejectsCycle) {
  DimensionTypeBuilder builder("Cyclic");
  builder.AddCategory("A").AddCategory("B");
  builder.AddOrder("A", "B").AddOrder("B", "A");
  EXPECT_FALSE(builder.Build().ok());
}

TEST(DimensionTypeTest, RejectsDuplicateCategory) {
  DimensionTypeBuilder builder("Dup");
  builder.AddCategory("A").AddCategory("A");
  EXPECT_FALSE(builder.Build().ok());
}

TEST(DimensionTypeTest, RejectsUnknownCategoryInOrder) {
  DimensionTypeBuilder builder("Missing");
  builder.AddCategory("A");
  builder.AddOrder("A", "Nope");
  EXPECT_FALSE(builder.Build().ok());
}

TEST(DimensionTypeTest, SimpleDimensionHasBottomAndTopOnly) {
  // The Name and SSN dimensions of the case study are "simple": a bottom
  // category plus TOP.
  DimensionTypeBuilder builder("Name");
  builder.AddCategory("Name");
  auto type = builder.Build();
  ASSERT_TRUE(type.ok());
  EXPECT_EQ((*type)->category_count(), 2u);
  EXPECT_TRUE((*type)->LessEq((*type)->bottom(), (*type)->top()));
}

TEST(DimensionTypeTest, EquivalenceDetectsAggTypeChange) {
  auto a = DiagnosisType();
  ASSERT_TRUE(a.ok());
  auto b = (*a)->WithAggType((*a)->bottom(), AggregationType::kSum);
  EXPECT_FALSE((*a)->EquivalentTo(*b));
  EXPECT_TRUE((*a)->IsomorphicTo(*b));
  EXPECT_TRUE((*a)->EquivalentTo(**DiagnosisType()));
}

TEST(DimensionTypeTest, WithNamePreservesStructure) {
  auto a = DiagnosisType();
  ASSERT_TRUE(a.ok());
  auto renamed = (*a)->WithName("Diagnosis2");
  EXPECT_EQ(renamed->name(), "Diagnosis2");
  EXPECT_FALSE((*a)->EquivalentTo(*renamed));  // names differ
  EXPECT_TRUE((*a)->IsomorphicTo(*renamed));
}

TEST(DimensionTypeTest, RestrictAboveKeepsUpperLattice) {
  auto type = DobType();
  ASSERT_TRUE(type.ok());
  auto month = *(*type)->Find("Month");
  auto restricted = (*type)->RestrictAbove(month);
  // Month, Quarter, Year, Decade, TOP.
  EXPECT_EQ(restricted->category_count(), 5u);
  EXPECT_EQ(restricted->category(restricted->bottom()).name, "Month");
  EXPECT_FALSE(restricted->Find("Week").ok());
  EXPECT_FALSE(restricted->Find("Day").ok());
}

TEST(DimensionTypeTest, RestrictDropsIntermediateCategory) {
  auto type = DiagnosisType();
  ASSERT_TRUE(type.ok());
  auto low = *(*type)->Find("Low-level Diagnosis");
  auto group = *(*type)->Find("Diagnosis Group");
  auto restricted = (*type)->Restrict({low, group, (*type)->top()});
  ASSERT_TRUE(restricted.ok());
  auto new_low = *(*restricted)->Find("Low-level Diagnosis");
  auto new_group = *(*restricted)->Find("Diagnosis Group");
  // The transitive order survives the dropped Family category.
  EXPECT_TRUE((*restricted)->LessEq(new_low, new_group));
  const auto& pred = (*restricted)->Pred(new_low);
  ASSERT_EQ(pred.size(), 1u);
  EXPECT_EQ(pred[0], new_group);
}

TEST(DimensionTypeTest, RestrictRequiresTop) {
  auto type = DiagnosisType();
  ASSERT_TRUE(type.ok());
  auto low = *(*type)->Find("Low-level Diagnosis");
  EXPECT_FALSE((*type)->Restrict({low}).ok());
}

TEST(DimensionTypeTest, ToStringListsCategories) {
  auto type = DiagnosisType();
  ASSERT_TRUE(type.ok());
  std::string out = (*type)->ToString();
  EXPECT_NE(out.find("Low-level Diagnosis"), std::string::npos);
  EXPECT_NE(out.find("Diagnosis Group"), std::string::npos);
}

}  // namespace
}  // namespace mddc
