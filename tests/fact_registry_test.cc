#include <gtest/gtest.h>

#include "core/fact.h"

namespace mddc {
namespace {

TEST(FactRegistryTest, AtomsAreInterned) {
  FactRegistry registry;
  FactId a = registry.Atom(1);
  FactId b = registry.Atom(1);
  FactId c = registry.Atom(2);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(FactRegistryTest, PairsAreOrderSensitive) {
  FactRegistry registry;
  FactId a = registry.Atom(1);
  FactId b = registry.Atom(2);
  FactId ab = registry.Pair(a, b);
  FactId ba = registry.Pair(b, a);
  EXPECT_NE(ab, ba);
  EXPECT_EQ(registry.Pair(a, b), ab);
}

TEST(FactRegistryTest, SetsAreCanonical) {
  FactRegistry registry;
  FactId a = registry.Atom(1);
  FactId b = registry.Atom(2);
  // Order and duplicates do not matter: {a,b} == {b,a,b}.
  FactId s1 = registry.Set({a, b});
  FactId s2 = registry.Set({b, a, b});
  EXPECT_EQ(s1, s2);
  FactId s3 = registry.Set({a});
  EXPECT_NE(s1, s3);
}

TEST(FactRegistryTest, EmptySetIsValid) {
  FactRegistry registry;
  FactId empty = registry.Set({});
  EXPECT_TRUE(empty.valid());
  auto term = registry.Get(empty);
  ASSERT_TRUE(term.ok());
  EXPECT_EQ(term->kind, FactTerm::Kind::kSet);
  EXPECT_TRUE(term->members.empty());
}

TEST(FactRegistryTest, GetReturnsStructure) {
  FactRegistry registry;
  FactId a = registry.Atom(7);
  auto term = registry.Get(a);
  ASSERT_TRUE(term.ok());
  EXPECT_EQ(term->kind, FactTerm::Kind::kAtom);
  EXPECT_EQ(term->atom, 7u);
  EXPECT_FALSE(registry.Get(FactId(999)).ok());
  EXPECT_FALSE(registry.Get(FactId()).ok());
}

TEST(FactRegistryTest, ToStringRendersNestedStructure) {
  FactRegistry registry;
  FactId one = registry.Atom(1);
  FactId two = registry.Atom(2);
  EXPECT_EQ(registry.ToString(one), "1");
  EXPECT_EQ(registry.ToString(registry.Pair(one, two)), "(1,2)");
  EXPECT_EQ(registry.ToString(registry.Set({two, one})), "{1,2}");
  // Sets of sets (double aggregate formation).
  FactId inner = registry.Set({one, two});
  EXPECT_EQ(registry.ToString(registry.Set({inner})), "{{1,2}}");
}

TEST(FactRegistryTest, NestedTermsCompose) {
  FactRegistry registry;
  FactId a = registry.Atom(1);
  FactId b = registry.Atom(2);
  FactId pair = registry.Pair(a, b);
  FactId set_of_pair = registry.Set({pair});
  auto term = registry.Get(set_of_pair);
  ASSERT_TRUE(term.ok());
  ASSERT_EQ(term->members.size(), 1u);
  EXPECT_EQ(term->members[0], pair);
}

}  // namespace
}  // namespace mddc
