#include <gtest/gtest.h>

#include "fixtures.h"

namespace mddc {
namespace {

using testing_fixtures::BuildDiagnosisDimension;
using testing_fixtures::BuildPatientDiagnosisMo;
using testing_fixtures::Day;
using testing_fixtures::During;

TEST(MdObjectTest, SchemaDerivedFromDimensions) {
  MdObject mo = BuildPatientDiagnosisMo();
  EXPECT_EQ(mo.schema().fact_type(), "Patient");
  EXPECT_EQ(mo.dimension_count(), 1u);
  EXPECT_EQ(mo.dimension(0).name(), "Diagnosis");
  auto index = mo.FindDimension("Diagnosis");
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(*index, 0u);
  EXPECT_FALSE(mo.FindDimension("Nope").ok());
}

TEST(MdObjectTest, FactSetIsSortedAndDeduplicated) {
  auto registry = std::make_shared<FactRegistry>();
  MdObject mo("Patient", {BuildDiagnosisDimension()}, registry);
  FactId p2 = registry->Atom(2);
  FactId p1 = registry->Atom(1);
  ASSERT_TRUE(mo.AddFact(p2).ok());
  ASSERT_TRUE(mo.AddFact(p1).ok());
  ASSERT_TRUE(mo.AddFact(p2).ok());  // idempotent
  ASSERT_EQ(mo.fact_count(), 2u);
  EXPECT_LT(mo.facts()[0], mo.facts()[1]);
  EXPECT_TRUE(mo.HasFact(p1));
}

TEST(MdObjectTest, RelateValidatesFactAndValue) {
  auto registry = std::make_shared<FactRegistry>();
  MdObject mo("Patient", {BuildDiagnosisDimension()}, registry);
  FactId p1 = registry->Atom(1);
  // Fact not yet added.
  EXPECT_EQ(mo.Relate(0, p1, ValueId(9)).code(), StatusCode::kNotFound);
  ASSERT_TRUE(mo.AddFact(p1).ok());
  // Unknown value.
  EXPECT_EQ(mo.Relate(0, p1, ValueId(999)).code(), StatusCode::kNotFound);
  // Unknown dimension.
  EXPECT_EQ(mo.Relate(7, p1, ValueId(9)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(mo.Relate(0, p1, ValueId(9)).ok());
}

TEST(MdObjectTest, MixedGranularityFactsAreAllowed) {
  // Fact 1 is related to value 9, a Diagnosis *Family* — not a bottom
  // value. This is requirement 9 (different levels of granularity),
  // which the surveyed models cannot express.
  MdObject mo = BuildPatientDiagnosisMo();
  FactId p1 = mo.registry()->Atom(1);
  auto pairs = mo.relation(0).ForFact(p1);
  ASSERT_EQ(pairs.size(), 1u);
  auto category = mo.dimension(0).CategoryOf(pairs[0]->value);
  ASSERT_TRUE(category.ok());
  EXPECT_EQ(mo.dimension(0).type().category(*category).name,
            "Diagnosis Family");
}

TEST(MdObjectTest, CharacterizationFollowsContainment) {
  MdObject mo = BuildPatientDiagnosisMo();
  FactId p1 = mo.registry()->Atom(1);
  // Patient 1 has diagnosis 9 (family), so it is characterized by 9,
  // group 11 and top — at times when both the Has pair and the grouping
  // edge hold.
  std::vector<std::uint64_t> values;
  for (const auto& c : mo.CharacterizedBy(p1, 0)) {
    if (c.value != mo.dimension(0).top_value()) {
      values.push_back(c.value.raw());
    }
  }
  std::sort(values.begin(), values.end());
  EXPECT_EQ(values, (std::vector<std::uint64_t>{9, 11}));
}

TEST(MdObjectTest, CharacterizationSpanIntersectsRelationAndOrder) {
  MdObject mo = BuildPatientDiagnosisMo();
  FactId p2 = mo.registry()->Atom(2);
  // (2,8) holds [01/01/70-31/12/81]; 8 <= 11 holds [01/01/80-NOW]. So
  // patient 2 is characterized by group 11 via 8 during [80-81] — and via
  // 9 during [82-NOW].
  Lifespan span = mo.CharacterizationSpan(p2, 0, ValueId(11));
  EXPECT_TRUE(span.valid.Contains(Day("15/06/80")));
  EXPECT_TRUE(span.valid.Contains(Day("15/06/85")));
  EXPECT_FALSE(span.valid.Contains(Day("15/06/75")));
}

TEST(MdObjectTest, FactsCharacterizedByGroup) {
  MdObject mo = BuildPatientDiagnosisMo();
  // Both patients fall in group 11 (Example 12's {1,2}).
  auto facts11 = mo.FactsWith(0, ValueId(11));
  EXPECT_EQ(facts11.size(), 2u);
  // Only patient 2 falls in group 12 (via 3 <= 7 <= ... no; via
  // 5 <= 4 <= 12).
  auto facts12 = mo.FactsWith(0, ValueId(12));
  ASSERT_EQ(facts12.size(), 1u);
  EXPECT_EQ(facts12[0].first, mo.registry()->Atom(2));
}

TEST(MdObjectTest, MultipleWitnessesUnionLifespans) {
  MdObject mo = BuildPatientDiagnosisMo();
  FactId p2 = mo.registry()->Atom(2);
  // Patient 2 reaches family 9 directly ([82-NOW]) and via 5 <= 9 during
  // [82-30/09/82]; the union is [82-NOW].
  Lifespan span = mo.CharacterizationSpan(p2, 0, ValueId(9));
  EXPECT_TRUE(span.valid.Contains(Day("01/02/82")));
  EXPECT_TRUE(span.valid.Contains(Day("01/01/99")));
}

TEST(MdObjectTest, ValidateDetectsUncoveredFact) {
  auto registry = std::make_shared<FactRegistry>();
  MdObject mo("Patient", {BuildDiagnosisDimension()}, registry);
  FactId p1 = registry->Atom(1);
  ASSERT_TRUE(mo.AddFact(p1).ok());
  // No pair in the Diagnosis relation: the paper forbids missing values.
  EXPECT_EQ(mo.Validate().code(), StatusCode::kInvariantViolation);
  ASSERT_TRUE(mo.CoverWithTop().ok());
  EXPECT_TRUE(mo.Validate().ok());
  // The cover uses the top value.
  auto pairs = mo.relation(0).ForFact(p1);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0]->value, mo.dimension(0).top_value());
}

TEST(MdObjectTest, ValidateAcceptsCaseStudyMo) {
  MdObject mo = BuildPatientDiagnosisMo();
  EXPECT_TRUE(mo.Validate().ok());
}

TEST(MdObjectTest, ProbabilisticCharacterization) {
  auto registry = std::make_shared<FactRegistry>();
  MdObject mo("Patient", {BuildDiagnosisDimension()}, registry);
  FactId p1 = registry->Atom(1);
  ASSERT_TRUE(mo.AddFact(p1).ok());
  // The physician is only 90% certain of diagnosis 5 (requirement 8).
  ASSERT_TRUE(mo.Relate(0, p1, ValueId(5), During("[01/01/85-NOW]"), 0.9).ok());
  for (const auto& c : mo.CharacterizedBy(p1, 0)) {
    if (c.value == ValueId(5)) {
      EXPECT_DOUBLE_EQ(c.prob, 0.9);
    }
    // Containment 5 <= 9 is certain, so the derived characterization by 9
    // carries probability 0.9 as well.
    if (c.value == ValueId(9)) {
      EXPECT_DOUBLE_EQ(c.prob, 0.9);
    }
    if (c.value == mo.dimension(0).top_value()) {
      EXPECT_DOUBLE_EQ(c.prob, 1.0);
    }
  }
}

TEST(MdObjectTest, ToStringMentionsFactsAndRelations) {
  MdObject mo = BuildPatientDiagnosisMo();
  std::string out = mo.ToString();
  EXPECT_NE(out.find("Patient"), std::string::npos);
  EXPECT_NE(out.find("R[Diagnosis]"), std::string::npos);
}

TEST(MoFamilyTest, AddAndLookup) {
  MoFamily family;
  ASSERT_TRUE(family.Add("patients", BuildPatientDiagnosisMo()).ok());
  EXPECT_FALSE(family.Add("patients", BuildPatientDiagnosisMo()).ok());
  EXPECT_TRUE(family.Get("patients").ok());
  EXPECT_FALSE(family.Get("other").ok());
  EXPECT_EQ(family.names().size(), 1u);
}

TEST(MoFamilyTest, DetectsSharedSubdimension) {
  MoFamily family;
  ASSERT_TRUE(family.Add("a", BuildPatientDiagnosisMo()).ok());
  ASSERT_TRUE(family.Add("b", BuildPatientDiagnosisMo()).ok());
  auto shared = family.SharesSubdimension("a", 0, "b", 0);
  ASSERT_TRUE(shared.ok());
  EXPECT_TRUE(*shared);
}

TEST(MoFamilyTest, DetectsDivergedDimension) {
  MoFamily family;
  ASSERT_TRUE(family.Add("a", BuildPatientDiagnosisMo()).ok());
  MdObject b = BuildPatientDiagnosisMo();
  CategoryTypeIndex low = *b.dimension(0).type().Find("Low-level Diagnosis");
  ASSERT_TRUE(b.dimension_mutable(0).AddValue(low, ValueId(100)).ok());
  ASSERT_TRUE(family.Add("b", std::move(b)).ok());
  auto shared = family.SharesSubdimension("a", 0, "b", 0);
  ASSERT_TRUE(shared.ok());
  EXPECT_FALSE(*shared);
}

}  // namespace
}  // namespace mddc
