#include <gtest/gtest.h>

#include "engine/advisor.h"
#include "workload/clinical_generator.h"
#include "workload/retail_generator.h"

namespace mddc {
namespace {

RetailMo BuildRetail() {
  RetailWorkloadParams params;
  params.num_purchases = 1000;
  return std::move(
             GenerateRetailWorkload(params, std::make_shared<FactRegistry>()))
      .ValueOrDie();
}

std::vector<CategoryTypeIndex> GroupingAt(const MdObject& mo,
                                          std::size_t dim,
                                          CategoryTypeIndex category) {
  std::vector<CategoryTypeIndex> grouping;
  for (std::size_t i = 0; i < mo.dimension_count(); ++i) {
    grouping.push_back(i == dim ? category : mo.dimension(i).type().top());
  }
  return grouping;
}

TEST(AdvisorTest, SizeEstimates) {
  RetailMo retail = BuildRetail();
  MaterializationAdvisor advisor(retail.mo,
                                 AggFunction::Sum(retail.amount_dim));
  // Grand total: one group.
  auto all_top = GroupingAt(retail.mo, retail.product_dim,
                            retail.mo.dimension(retail.product_dim)
                                .type()
                                .top());
  EXPECT_DOUBLE_EQ(advisor.EstimateSize(all_top), 1.0);
  // By department: 3 groups.
  EXPECT_DOUBLE_EQ(advisor.EstimateSize(GroupingAt(
                       retail.mo, retail.product_dim, retail.department)),
                   3.0);
  // By product x store: 50 x 12 = 600 (< 1000 facts, uncapped).
  auto cross = GroupingAt(retail.mo, retail.product_dim, retail.product);
  cross[retail.store_dim] = retail.store;
  EXPECT_DOUBLE_EQ(advisor.EstimateSize(cross), 600.0);
}

TEST(AdvisorTest, CanAnswerFromRespectsLatticeAndSafety) {
  RetailMo retail = BuildRetail();
  MaterializationAdvisor sum_advisor(retail.mo,
                                     AggFunction::Sum(retail.amount_dim));
  auto by_category =
      GroupingAt(retail.mo, retail.product_dim, retail.category);
  auto by_department =
      GroupingAt(retail.mo, retail.product_dim, retail.department);
  EXPECT_TRUE(sum_advisor.CanAnswerFrom(by_category, by_department));
  EXPECT_FALSE(sum_advisor.CanAnswerFrom(by_department, by_category));
  EXPECT_TRUE(sum_advisor.CanAnswerFrom(by_category, by_category));

  // AVG is not distributive: only exact matches answer.
  MaterializationAdvisor avg_advisor(retail.mo,
                                     AggFunction::Avg(retail.price_dim));
  EXPECT_FALSE(avg_advisor.CanAnswerFrom(by_category, by_department));
  EXPECT_TRUE(avg_advisor.CanAnswerFrom(by_category, by_category));
}

TEST(AdvisorTest, GreedyPicksFinestUsefulGrouping) {
  RetailMo retail = BuildRetail();
  MaterializationAdvisor advisor(retail.mo,
                                 AggFunction::Sum(retail.amount_dim));
  std::vector<AdvisorQuery> queries = {
      {GroupingAt(retail.mo, retail.product_dim, retail.category), 5.0},
      {GroupingAt(retail.mo, retail.product_dim, retail.department), 3.0},
      {GroupingAt(retail.mo, retail.product_dim,
                  retail.mo.dimension(retail.product_dim).type().top()),
       1.0},
  };
  auto plan = advisor.Advise(queries, 1);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->materialize.size(), 1u);
  // Category level answers all three queries (10 groups) and dominates.
  EXPECT_EQ(plan->materialize[0].grouping[retail.product_dim],
            retail.category);
  EXPECT_LT(plan->cost_with, plan->cost_without);
}

TEST(AdvisorTest, BudgetLimitsChoices) {
  RetailMo retail = BuildRetail();
  MaterializationAdvisor advisor(retail.mo,
                                 AggFunction::Sum(retail.amount_dim));
  std::vector<AdvisorQuery> queries = {
      {GroupingAt(retail.mo, retail.product_dim, retail.product), 1.0},
      {GroupingAt(retail.mo, retail.store_dim, retail.store), 1.0},
      {GroupingAt(retail.mo, retail.store_dim, retail.region), 1.0},
  };
  auto one = advisor.Advise(queries, 1);
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->materialize.size(), 1u);
  auto three = advisor.Advise(queries, 3);
  ASSERT_TRUE(three.ok());
  EXPECT_GE(three->materialize.size(), 2u);
  EXPECT_LE(three->cost_with, one->cost_with);
}

TEST(AdvisorTest, ApplyWarmsTheCache) {
  RetailMo retail = BuildRetail();
  MaterializationAdvisor advisor(retail.mo,
                                 AggFunction::Sum(retail.amount_dim));
  std::vector<AdvisorQuery> queries = {
      {GroupingAt(retail.mo, retail.product_dim, retail.category), 2.0},
      {GroupingAt(retail.mo, retail.product_dim, retail.department), 1.0},
  };
  auto plan = advisor.Advise(queries, 1);
  ASSERT_TRUE(plan.ok());
  PreAggregateCache cache(retail.mo);
  ASSERT_TRUE(advisor.Apply(*plan, &cache).ok());
  cache.ResetStats();
  // Both workload queries are now served without touching the base.
  for (const AdvisorQuery& query : queries) {
    ASSERT_TRUE(
        cache.Query(AggFunction::Sum(retail.amount_dim), query.grouping)
            .ok());
  }
  EXPECT_EQ(cache.stats().base_scans, 0u);
  EXPECT_EQ(cache.stats().exact_hits + cache.stats().rollup_hits, 2u);
}

TEST(AdvisorTest, NonStrictHierarchyLimitsReuseInPlan) {
  // With a non-strict diagnosis hierarchy, a group-level materialization
  // is c-typed and cannot serve the grand total; the advisor must not
  // claim that benefit.
  ClinicalWorkloadParams params;
  params.num_patients = 150;
  params.num_groups = 3;
  params.non_strict_rate = 0.5;
  params.mean_extra_diagnoses = 0.0;
  params.reclassified_rate = 0.0;
  params.uncertain_rate = 0.0;
  params.coarse_granularity_rate = 0.0;
  auto workload =
      GenerateClinicalWorkload(params, std::make_shared<FactRegistry>());
  ASSERT_TRUE(workload.ok());
  MaterializationAdvisor advisor(workload->mo, AggFunction::SetCount());
  auto by_group = GroupingAt(workload->mo, workload->diagnosis_dim,
                             workload->group);
  auto total = GroupingAt(
      workload->mo, workload->diagnosis_dim,
      workload->mo.dimension(workload->diagnosis_dim).type().top());
  EXPECT_FALSE(advisor.CanAnswerFrom(by_group, total));
  auto plan = advisor.Advise({{by_group, 1.0}, {total, 1.0}}, 2);
  ASSERT_TRUE(plan.ok());
  // Both groupings must be materialized separately to cover the workload.
  EXPECT_EQ(plan->materialize.size(), 2u);
}

TEST(AdvisorTest, PlanRendering) {
  RetailMo retail = BuildRetail();
  MaterializationAdvisor advisor(retail.mo,
                                 AggFunction::Sum(retail.amount_dim));
  auto plan = advisor.Advise(
      {{GroupingAt(retail.mo, retail.product_dim, retail.category), 1.0}},
      1);
  ASSERT_TRUE(plan.ok());
  std::string rendered = plan->ToString(retail.mo);
  EXPECT_NE(rendered.find("Product.Category"), std::string::npos);
  EXPECT_NE(rendered.find("->"), std::string::npos);
}

TEST(AdvisorTest, ArityValidated) {
  RetailMo retail = BuildRetail();
  MaterializationAdvisor advisor(retail.mo,
                                 AggFunction::Sum(retail.amount_dim));
  EXPECT_FALSE(advisor.Advise({{{0, 1}, 1.0}}, 1).ok());
}

}  // namespace
}  // namespace mddc
