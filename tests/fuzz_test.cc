#include <gtest/gtest.h>

#include <random>

#include "io/serialize.h"
#include "mdql/mdql.h"
#include "mdql/parser.h"
#include "workload/case_study.h"

// Robustness fuzzing of the two untrusted-input surfaces: the MDQL
// parser/planner and the .mddc reader. Every input must produce either a
// result or an error Status — never a crash, hang or invalid MO.

namespace mddc {
namespace {

class FuzzTest : public ::testing::TestWithParam<int> {};

std::string RandomGarbage(std::mt19937& rng, std::size_t length) {
  static constexpr char kAlphabet[] =
      "abcXYZ_0159 .,()'\"<>=;\n\t\\-PROBSELECTFROMWHEREANDORcount";
  std::uniform_int_distribution<std::size_t> pick(0, sizeof(kAlphabet) - 2);
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) out += kAlphabet[pick(rng)];
  return out;
}

std::string RandomQueryFromFragments(std::mt19937& rng) {
  static const char* kFragments[] = {
      "SELECT",      "COUNT",      "SUM(Amount)", "FROM",
      "patients",    "sales",      "BY",          "Diagnosis.Family",
      "WHERE",       "AND",        "OR",          "NOT",
      "Age >= 40",   "ASOF",       "'01/01/1999'", "(",
      ")",           ",",          "Name.Name = 'Jane Doe'",
      "PROB(Diagnosis.Family = 'E10') >= 0.8",    "SHOW",
      "DIMENSIONS",  "HIERARCHY",  "PATHS",       "\"Date of Birth\"",
      "INSERT",      "INTO",       "FACT",        "99",
      "PROB",        "0.8",        "1.5",         "'NOW'",
      "Name.Name = 'Jane Doe' PROB 0.7",
      // EXPLAIN drives the whole compiler (lower, rewrite, shape check,
      // stream probe) without executing, so fragment storms now exercise
      // the plan layer on every statement class too.
      "EXPLAIN",     "EXPLAIN SELECT COUNT FROM patients",
      "EXPLAIN SELECT COUNT FROM patients BY Diagnosis.Family",
      // Bulk INSERT and DELETE fragments: the comma-separated FACT
      // groups and the delete path must survive arbitrary recombination.
      "DELETE",      "DELETE FROM patients FACT 99",
      "FACT 7 (Name.Name = 'Jane Doe')",
      "INSERT INTO patients FACT 90 (Name.Name = 'Jane Doe'), FACT 91"
      " (Name.Name = 'John Doe' PROB 0.5)",
  };
  std::uniform_int_distribution<std::size_t> pick(
      0, std::size(kFragments) - 1);
  std::uniform_int_distribution<int> count(1, 14);
  std::string query;
  int n = count(rng);
  for (int i = 0; i < n; ++i) {
    if (i > 0) query += ' ';
    query += kFragments[pick(rng)];
  }
  return query;
}

TEST_P(FuzzTest, ParserSurvivesGarbage) {
  std::mt19937 rng(GetParam() * 1009 + 1);
  for (int i = 0; i < 200; ++i) {
    std::uniform_int_distribution<std::size_t> length(0, 120);
    std::string input = RandomGarbage(rng, length(rng));
    auto statement = mdql::Parse(input);
    // ok or error — both fine; the point is no crash/UB.
    (void)statement;
  }
}

TEST_P(FuzzTest, SessionSurvivesFragmentQueries) {
  auto cs = BuildCaseStudy();
  ASSERT_TRUE(cs.ok());
  mdql::Session session;
  ASSERT_TRUE(session.Register("patients", cs->mo).ok());
  std::mt19937 rng(GetParam() * 7717 + 3);
  for (int i = 0; i < 120; ++i) {
    std::string query = RandomQueryFromFragments(rng);
    auto result = session.Execute(query);
    (void)result;
  }
}

TEST_P(FuzzTest, InsertMutationsNeverBreakAtomicity) {
  // Mutate valid INSERT statements and throw them at a session. The
  // parser/planner must never crash, and — the resolve-before-mutate
  // contract of ApplyInsert — a failing statement must leave the MO
  // byte-identical to its pre-statement serialization.
  auto cs = BuildCaseStudy();
  ASSERT_TRUE(cs.ok());
  mdql::Session session;
  ASSERT_TRUE(session.Register("patients", cs->mo).ok());

  static const char* kValidInserts[] = {
      "INSERT INTO patients FACT 500 (Name.Name = 'Jane Doe')",
      "INSERT INTO patients FACT 501 (Name.Name = 'Jane Doe' PROB 0.8)",
      "INSERT INTO patients FACT 502 "
      "(Name.Name = 'Jane Doe' PROB 0.6, Name.Name = 'John Doe')",
      // Bulk INSERT: the resolve-before-mutate contract spans the whole
      // batch — a bad name in the LAST fact must leave the first
      // untouched too.
      "INSERT INTO patients FACT 503 (Name.Name = 'Jane Doe'), "
      "FACT 504 (Name.Name = 'John Doe' PROB 0.9)",
      "DELETE FROM patients FACT 500",
      "DELETE FROM patients FACT 987654",
  };
  std::mt19937 rng(GetParam() * 2179 + 7);
  std::uniform_int_distribution<std::size_t> which(
      0, std::size(kValidInserts) - 1);
  std::uniform_int_distribution<int> mutation(0, 2);
  std::uniform_int_distribution<int> byte(32, 126);
  for (int i = 0; i < 60; ++i) {
    std::string statement = kValidInserts[which(rng)];
    std::uniform_int_distribution<std::size_t> position(
        0, statement.size() - 1);
    switch (mutation(rng)) {
      case 0:  // flip a character
        statement[position(rng)] = static_cast<char>(byte(rng));
        break;
      case 1:  // truncate
        statement.resize(position(rng));
        break;
      case 2:  // duplicate a chunk
        statement.insert(position(rng), statement.substr(0, 20));
        break;
    }
    auto before = io::WriteMo(**session.Get("patients"));
    ASSERT_TRUE(before.ok());
    auto result = session.Execute(statement);
    if (!result.ok()) {
      auto after = io::WriteMo(**session.Get("patients"));
      ASSERT_TRUE(after.ok());
      EXPECT_EQ(*after, *before)
          << "failed statement mutated the MO: " << statement;
    }
  }
}

TEST_P(FuzzTest, ReaderSurvivesMutations) {
  auto cs = BuildCaseStudy();
  ASSERT_TRUE(cs.ok());
  auto text = io::WriteMo(cs->mo);
  ASSERT_TRUE(text.ok());
  std::mt19937 rng(GetParam() * 523 + 11);
  std::uniform_int_distribution<std::size_t> position(0, text->size() - 1);
  std::uniform_int_distribution<int> mutation(0, 2);
  std::uniform_int_distribution<int> byte(32, 126);
  for (int i = 0; i < 60; ++i) {
    std::string mutated = *text;
    switch (mutation(rng)) {
      case 0:  // flip a character
        mutated[position(rng)] = static_cast<char>(byte(rng));
        break;
      case 1:  // truncate
        mutated.resize(position(rng));
        break;
      case 2:  // duplicate a chunk
        mutated.insert(position(rng), mutated.substr(0, 40));
        break;
    }
    auto loaded = io::ReadMo(mutated, std::make_shared<FactRegistry>());
    if (loaded.ok()) {
      // If a mutation still parses, the result must be a valid MO.
      EXPECT_TRUE(loaded->Validate().ok());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace mddc
