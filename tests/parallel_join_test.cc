#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "algebra/operators.h"
#include "engine/executor.h"
#include "io/serialize.h"
#include "workload/retail_generator.h"

// Differential, determinism, fallback and concurrency coverage for the
// parallel identity-based join. The sequential operator is ground truth:
// the parallel join must serialize to exactly the same bytes at any
// thread count (the PR-1 contract, extended to Join).

namespace mddc {
namespace {

RetailMo BuildRetail(std::uint32_t seed = 7, std::size_t purchases = 300) {
  RetailWorkloadParams params;
  params.seed = seed;
  params.num_purchases = purchases;
  auto workload =
      GenerateRetailWorkload(params, std::make_shared<FactRegistry>());
  return std::move(workload).ValueOrDie();
}

/// A structurally identical copy of `mo` under disjoint dimension names,
/// as the paper prescribes before a self-join.
MdObject RenamedCopy(const MdObject& mo) {
  RenameSpec spec;
  spec.fact_type = mo.schema().fact_type() + "'";
  for (std::size_t i = 0; i < mo.dimension_count(); ++i) {
    spec.dimension_names.push_back(mo.dimension(i).name() + "'");
  }
  return std::move(Rename(mo, spec)).ValueOrDie();
}

void ExpectParallelJoinMatchesSequential(const MdObject& m1,
                                         const MdObject& m2,
                                         JoinPredicate predicate) {
  auto sequential = Join(m1, m2, predicate);
  ASSERT_TRUE(sequential.ok()) << sequential.status();
  auto sequential_bytes = io::WriteMo(*sequential);
  ASSERT_TRUE(sequential_bytes.ok()) << sequential_bytes.status();

  for (std::size_t threads : {1u, 2u, 8u}) {
    ExecContext ctx(threads, /*min_facts=*/1);
    auto parallel = Join(m1, m2, predicate, &ctx);
    ASSERT_TRUE(parallel.ok())
        << "threads=" << threads << ": " << parallel.status();
    auto parallel_bytes = io::WriteMo(*parallel);
    ASSERT_TRUE(parallel_bytes.ok()) << parallel_bytes.status();
    EXPECT_EQ(*parallel_bytes, *sequential_bytes)
        << "serialized join differs at threads=" << threads;
    EXPECT_EQ(parallel->fact_count(), sequential->fact_count());
  }
}

TEST(ParallelJoinDifferentialTest, EquiJoinMatchesAcrossThreads) {
  RetailMo retail = BuildRetail();
  MdObject renamed = RenamedCopy(retail.mo);
  ExpectParallelJoinMatchesSequential(retail.mo, renamed,
                                      JoinPredicate::kEqual);
}

TEST(ParallelJoinDifferentialTest, CartesianProductMatchesAcrossThreads) {
  RetailMo retail = BuildRetail(7, /*purchases=*/60);
  MdObject renamed = RenamedCopy(retail.mo);
  ExpectParallelJoinMatchesSequential(retail.mo, renamed, JoinPredicate::kTrue);
}

TEST(ParallelJoinDifferentialTest, NonEquiJoinMatchesAcrossThreads) {
  RetailMo retail = BuildRetail(7, /*purchases=*/60);
  MdObject renamed = RenamedCopy(retail.mo);
  ExpectParallelJoinMatchesSequential(retail.mo, renamed,
                                      JoinPredicate::kNotEqual);
}

TEST(ParallelJoinDifferentialTest, AsymmetricOperandsMatchAcrossThreads) {
  // m1 and m2 drawn from different seeds but one registry: the equi-join
  // intersects the fact sets.
  RetailWorkloadParams params1;
  params1.seed = 3;
  params1.num_purchases = 200;
  RetailWorkloadParams params2;
  params2.seed = 3;
  params2.num_purchases = 120;  // a strict subset of m1's purchase facts
  auto registry = std::make_shared<FactRegistry>();
  auto m1 = GenerateRetailWorkload(params1, registry);
  ASSERT_TRUE(m1.ok()) << m1.status();
  auto m2 = GenerateRetailWorkload(params2, registry);
  ASSERT_TRUE(m2.ok()) << m2.status();
  MdObject renamed = RenamedCopy(m2->mo);
  ExpectParallelJoinMatchesSequential(m1->mo, renamed, JoinPredicate::kEqual);
}

TEST(ParallelJoinDeterminismTest, FiftyParallelRunsAreByteIdentical) {
  RetailMo retail = BuildRetail();
  MdObject renamed = RenamedCopy(retail.mo);
  std::string reference;
  for (int run = 0; run < 50; ++run) {
    ExecContext ctx(8, /*min_facts=*/1);
    auto result = Join(retail.mo, renamed, JoinPredicate::kEqual, &ctx);
    ASSERT_TRUE(result.ok()) << "run " << run << ": " << result.status();
    ASSERT_EQ(ctx.stats.join_parallel_runs, 1u) << "run " << run;
    auto bytes = io::WriteMo(*result);
    ASSERT_TRUE(bytes.ok()) << bytes.status();
    if (run == 0) {
      reference = *bytes;
    } else {
      ASSERT_EQ(*bytes, reference) << "run " << run << " diverged";
    }
  }
}

// ---- Fallback paths -------------------------------------------------------

TEST(ParallelJoinFallbackTest, NonDisjointSchemasReturnTheSequentialError) {
  RetailMo retail = BuildRetail(7, /*purchases=*/50);
  auto sequential = Join(retail.mo, retail.mo, JoinPredicate::kEqual);
  ASSERT_FALSE(sequential.ok());

  ExecContext ctx(8, /*min_facts=*/1);
  auto parallel = Join(retail.mo, retail.mo, JoinPredicate::kEqual, &ctx);
  ASSERT_FALSE(parallel.ok());
  EXPECT_EQ(parallel.status().ToString(), sequential.status().ToString());
  EXPECT_EQ(ctx.stats.join_parallel_runs, 0u);
  EXPECT_EQ(ctx.stats.parallel_runs, 0u);
}

TEST(ParallelJoinFallbackTest, SmallInputCountsSequentialFallback) {
  RetailMo retail = BuildRetail(7, /*purchases=*/50);
  MdObject renamed = RenamedCopy(retail.mo);
  ExecContext ctx(8, /*min_facts=*/4096);
  auto result = Join(retail.mo, renamed, JoinPredicate::kEqual, &ctx);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(ctx.stats.sequential_fallbacks, 1u);
  EXPECT_EQ(ctx.stats.join_parallel_runs, 0u);
  EXPECT_EQ(ctx.stats.parallel_runs, 0u);
  EXPECT_EQ(ctx.stats.partitions, 0u);
}

TEST(ParallelJoinFallbackTest, SequentialContextNeverCountsFallback) {
  RetailMo retail = BuildRetail(7, /*purchases=*/50);
  MdObject renamed = RenamedCopy(retail.mo);
  ExecContext ctx;  // num_threads == 1: plain sequential, not a fallback
  auto result = Join(retail.mo, renamed, JoinPredicate::kEqual, &ctx);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(ctx.stats.sequential_fallbacks, 0u);
}

// ---- Counters -------------------------------------------------------------

TEST(ParallelJoinCountersTest, ParallelRunAdvancesJoinCounters) {
  RetailMo retail = BuildRetail();
  MdObject renamed = RenamedCopy(retail.mo);
  ExecContext ctx(4, /*min_facts=*/1);
  auto result = Join(retail.mo, renamed, JoinPredicate::kEqual, &ctx);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(ctx.stats.join_parallel_runs, 1u);
  EXPECT_EQ(ctx.stats.parallel_runs, 1u);
  EXPECT_EQ(ctx.stats.partitions, 4u);
  EXPECT_GT(ctx.stats.tasks, 0u);
}

// ---- Concurrent closure reads (TSan coverage) -----------------------------

TEST(ParallelJoinConcurrencyTest, ClosureReadsRaceFreeDuringParallelJoin) {
  // The join warms every operand dimension's closure memo before fanning
  // out, so characterization queries against the operands — from the
  // join's own workers and from unrelated reader threads — are pure
  // reads. Run under the `tsan` ctest label, this is the proof.
  RetailMo retail = BuildRetail();
  MdObject renamed = RenamedCopy(retail.mo);

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> reads{0};
  auto reader = [&](const MdObject& mo) {
    while (!stop.load()) {
      for (FactId fact : mo.facts()) {
        reads.fetch_add(mo.CharacterizedBy(fact, 0).size());
        if (stop.load()) break;
      }
    }
  };
  {
    // Warm before the readers start so the lazily written memo is never
    // written concurrently.
    for (std::size_t i = 0; i < retail.mo.dimension_count(); ++i) {
      retail.mo.dimension(i).WarmClosureMemo();
      renamed.dimension(i).WarmClosureMemo();
    }
    std::jthread r1(reader, std::cref(retail.mo));
    std::jthread r2(reader, std::cref(renamed));
    for (int round = 0; round < 3; ++round) {
      ExecContext ctx(8, /*min_facts=*/1);
      auto result = Join(retail.mo, renamed, JoinPredicate::kEqual, &ctx);
      ASSERT_TRUE(result.ok()) << result.status();
      EXPECT_EQ(ctx.stats.join_parallel_runs, 1u);
    }
    stop.store(true);
  }
  EXPECT_GT(reads.load(), 0u);
}

// ---- Shared pool ----------------------------------------------------------

TEST(ParallelJoinSharedPoolTest, RepeatedQueriesReuseTheProcessPool) {
  RetailMo retail = BuildRetail();
  MdObject renamed = RenamedCopy(retail.mo);
  // Ensure the pool exists (some earlier test may have created it; make
  // the precondition explicit rather than order-dependent).
  SharedThreadPool(8);
  for (int query = 0; query < 3; ++query) {
    ExecContext ctx(8, /*min_facts=*/1);
    auto result = Join(retail.mo, renamed, JoinPredicate::kEqual, &ctx);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(ctx.stats.pool_reuses, 1u)
        << "query " << query << " should borrow, not spawn";
  }
}

}  // namespace
}  // namespace mddc
