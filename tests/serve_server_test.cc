#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "algebra/agg_function.h"
#include "mdql/mdql.h"
#include "serve/mdql_server.h"
#include "serve/mo_store.h"
#include "serve/tcp_server.h"
#include "workload/case_study.h"
#include "workload/retail_generator.h"

// Coverage for the serving tier's session layer (serve/mdql_server.h)
// and its line-oriented TCP front-end (serve/tcp_server.h): read/write
// routing, epoch-driven view rebuilds, per-session stats, warm
// pre-aggregate probing, and the wire protocol end to end.

namespace mddc {
namespace serve {
namespace {

RetailMo BuildSales(std::size_t purchases = 200) {
  RetailWorkloadParams params;
  params.seed = 7;
  params.num_purchases = purchases;
  auto workload =
      GenerateRetailWorkload(params, std::make_shared<FactRegistry>());
  return std::move(workload).ValueOrDie();
}

class MdqlServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto cs = BuildCaseStudy();
    ASSERT_TRUE(cs.ok()) << cs.status();
    patients_ = cs->mo;
    ASSERT_TRUE(store_.Publish("patients", cs->mo).ok());
    retail_ = BuildSales();
    ASSERT_TRUE(store_.Publish("sales", retail_->mo).ok());
  }

  MoStore store_;
  MdqlServer server_{&store_};
  std::optional<MdObject> patients_;
  std::optional<RetailMo> retail_;
};

TEST_F(MdqlServerTest, ReadsMatchAPlainSession) {
  mdql::Session plain;
  ASSERT_TRUE(plain.Register("patients", *patients_).ok());
  ServerSession session = server_.Connect();

  const std::vector<std::string> queries = {
      "SELECT COUNT FROM patients BY Diagnosis.\"Diagnosis Group\" AS Code",
      "SELECT COUNT FROM patients WHERE Name.Name = 'Jane Doe'",
      "SHOW DIMENSIONS FROM patients",
  };
  for (const std::string& query : queries) {
    auto expected = plain.Execute(query);
    ASSERT_TRUE(expected.ok()) << query << ": " << expected.status();
    auto served = session.Execute(query);
    ASSERT_TRUE(served.ok()) << query << ": " << served.status();
    EXPECT_EQ(served->ToString(), expected->ToString()) << query;
  }
  EXPECT_EQ(session.stats().queries, queries.size());
  EXPECT_EQ(session.stats().reads, queries.size());
  EXPECT_EQ(session.stats().writes, 0u);
  // One view built for the first patients read, reused afterwards.
  EXPECT_EQ(session.stats().view_rebuilds, 1u);
  EXPECT_EQ(session.pinned_epoch(), store_.epoch());
}

TEST_F(MdqlServerTest, ReadsNeverGrowThePublishedRegistry) {
  const std::shared_ptr<const MoSnapshot> pinned = store_.Pin();
  const PublishedMo* entry = pinned->Find("sales");
  ASSERT_NE(entry, nullptr);
  const std::size_t size_before = entry->mo().registry()->size();
  ServerSession session = server_.Connect();
  // A BY aggregate derives set facts; they must intern into the
  // session's fork, never into the published sealed registry.
  auto result = session.Execute(
      "SELECT SUM(Amount) FROM sales BY Product.Category");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->rows.size(), 0u);
  EXPECT_EQ(entry->mo().registry()->size(), size_before);
}

TEST_F(MdqlServerTest, InsertPublishesANewEpochAndRebuildsViews) {
  ServerSession session = server_.Connect();
  auto before = session.Execute(
      "SELECT COUNT FROM patients WHERE Name.Name = 'Jane Doe'");
  ASSERT_TRUE(before.ok()) << before.status();
  ASSERT_EQ(before->rows[0][0], "1");
  const std::uint64_t epoch_before = store_.epoch();

  auto ack = session.Execute(
      "INSERT INTO patients FACT 99 (Name.Name = 'Jane Doe')");
  ASSERT_TRUE(ack.ok()) << ack.status();
  ASSERT_EQ(ack->rows.size(), 1u);
  EXPECT_EQ(ack->rows[0][0], "1");
  EXPECT_EQ(store_.epoch(), epoch_before + 1);

  auto after = session.Execute(
      "SELECT COUNT FROM patients WHERE Name.Name = 'Jane Doe'");
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(after->rows[0][0], "2");

  EXPECT_EQ(session.stats().writes, 1u);
  EXPECT_EQ(session.stats().reads, 2u);
  // The view was rebuilt when the epoch moved under the second read.
  EXPECT_EQ(session.stats().view_rebuilds, 2u);

  // Another session sees the insert too (same store, fresh view).
  ServerSession other = server_.Connect();
  auto cross = other.Execute(
      "SELECT COUNT FROM patients WHERE Name.Name = 'Jane Doe'");
  ASSERT_TRUE(cross.ok()) << cross.status();
  EXPECT_EQ(cross->rows[0][0], "2");
}

TEST_F(MdqlServerTest, InsertWithProbability) {
  ServerSession session = server_.Connect();
  auto ack = session.Execute(
      "INSERT INTO patients FACT 120 "
      "(Diagnosis.\"Low-level Diagnosis\" = 'Diabetes during pregnancy' "
      "PROB 0.6, Name.Name = 'Jane Doe')");
  if (!ack.ok()) {
    // The low-level diagnosis name differs across representations; the
    // statement must still fail atomically (no epoch published).
    EXPECT_EQ(session.stats().errors, 1u);
  } else {
    EXPECT_EQ(ack->rows[0][0], "1");
  }
}

TEST_F(MdqlServerTest, ErrorsSurfaceAndPublishNothing) {
  ServerSession session = server_.Connect();
  const std::uint64_t epoch = store_.epoch();

  EXPECT_FALSE(session.Execute("SELECT COUNT FROM nowhere").ok());
  EXPECT_FALSE(
      session.Execute("INSERT INTO nowhere FACT 1 (A.B = 'x')").ok());
  EXPECT_FALSE(session
                   .Execute("INSERT INTO patients FACT 1 "
                            "(Name.Name = 'No Such Person')")
                   .ok());
  EXPECT_FALSE(session.Execute("INSERT INTO patients FACT 1 "
                               "(Name.Name = 'Jane Doe' PROB 1.5)")
                   .ok());
  EXPECT_FALSE(session.Execute("garbage statement").ok());

  EXPECT_EQ(store_.epoch(), epoch);
  EXPECT_EQ(session.stats().errors, 5u);
  EXPECT_EQ(session.stats().queries, 5u);
}

TEST_F(MdqlServerTest, StatsJsonCarriesSessionAndExecCounters) {
  ServerSession session = server_.Connect(/*threads_per_query=*/2);
  ASSERT_TRUE(session
                  .Execute("SELECT SUM(Amount) FROM sales "
                           "BY Product.Category")
                  .ok());
  const std::string json = session.StatsJson();
  EXPECT_NE(json.find("\"queries\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"reads\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"last_epoch\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"exec\": {"), std::string::npos) << json;
  EXPECT_NE(json.find("\"parallel_runs\""), std::string::npos) << json;
}

TEST_F(MdqlServerTest, WarmAggregatesArePeekableAcrossEpochs) {
  const AggFunction sum = AggFunction::Sum(retail_->amount_dim);
  std::vector<CategoryTypeIndex> grouping;
  for (std::size_t i = 0; i < retail_->mo.dimension_count(); ++i) {
    grouping.push_back(i == retail_->product_dim
                           ? retail_->category
                           : retail_->mo.dimension(i).type().top());
  }
  ASSERT_TRUE(store_.WarmAggregate("sales", sum, grouping).ok());

  // Hold the pin: `entry` must outlive the Mutate below, which retires
  // this epoch.
  const std::shared_ptr<const MoSnapshot> pinned = store_.Pin();
  const PublishedMo* entry = pinned->Find("sales");
  ASSERT_NE(entry, nullptr);
  ASSERT_NE(entry->preagg, nullptr);
  const MdObject* warmed = entry->preagg->Peek(sum, grouping);
  ASSERT_NE(warmed, nullptr);
  EXPECT_GT(warmed->fact_count(), 0u);
  // Cold groupings are a miss, not a computation.
  std::vector<CategoryTypeIndex> cold = grouping;
  cold[retail_->product_dim] = retail_->department;
  EXPECT_EQ(entry->preagg->Peek(sum, cold), nullptr);

  // The spec stays warm in every later epoch.
  ASSERT_TRUE(store_
                  .Mutate("sales",
                          [](MdObject& draft) {
                            const FactId fact =
                                draft.registry()->Atom(5000000);
                            MDDC_RETURN_NOT_OK(draft.AddFact(fact));
                            return draft.CoverWithTop();
                          })
                  .ok());
  const std::shared_ptr<const MoSnapshot> after = store_.Pin();
  const PublishedMo* next = after->Find("sales");
  ASSERT_NE(next, nullptr);
  ASSERT_NE(next->preagg, nullptr);
  EXPECT_NE(next->preagg->Peek(sum, grouping), nullptr);
  EXPECT_NE(next->preagg.get(), entry->preagg.get());
}

// ---- TCP front-end ---------------------------------------------------------

int ConnectTo(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendLine(int fd, const std::string& line) {
  const std::string framed = line + "\n";
  return ::send(fd, framed.data(), framed.size(), MSG_NOSIGNAL) ==
         static_cast<ssize_t>(framed.size());
}

/// Reads one full reply (through the '.' terminator line); returns the
/// reply's lines without the terminator.
std::vector<std::string> ReadReply(int fd, std::string* buffer) {
  std::vector<std::string> lines;
  char chunk[4096];
  while (true) {
    std::size_t newline;
    while ((newline = buffer->find('\n')) != std::string::npos) {
      std::string line = buffer->substr(0, newline);
      buffer->erase(0, newline + 1);
      if (line == ".") return lines;
      lines.push_back(std::move(line));
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return lines;  // connection dropped mid-reply
    buffer->append(chunk, static_cast<std::size_t>(n));
  }
}

TEST_F(MdqlServerTest, TcpEndToEnd) {
  TcpServer tcp(&server_);
  ASSERT_TRUE(tcp.Start().ok());
  ASSERT_NE(tcp.port(), 0);

  const int fd = ConnectTo(tcp.port());
  ASSERT_GE(fd, 0);
  std::string buffer;

  ASSERT_TRUE(SendLine(
      fd, "SELECT COUNT FROM patients BY Diagnosis.\"Diagnosis Group\""));
  std::vector<std::string> reply = ReadReply(fd, &buffer);
  ASSERT_FALSE(reply.empty());
  EXPECT_EQ(reply[0], "OK 2");  // two diagnosis groups
  EXPECT_GT(reply.size(), 1u);  // the rendered table follows

  ASSERT_TRUE(SendLine(fd, ".epoch"));
  reply = ReadReply(fd, &buffer);
  ASSERT_FALSE(reply.empty());
  EXPECT_EQ(reply[0], "OK 2");  // two publishes since construction

  ASSERT_TRUE(
      SendLine(fd, "INSERT INTO patients FACT 77 (Name.Name = 'John Doe')"));
  reply = ReadReply(fd, &buffer);
  ASSERT_FALSE(reply.empty());
  EXPECT_EQ(reply[0], "OK 1");

  ASSERT_TRUE(SendLine(fd, ".epoch"));
  reply = ReadReply(fd, &buffer);
  ASSERT_FALSE(reply.empty());
  EXPECT_EQ(reply[0], "OK 3");

  ASSERT_TRUE(SendLine(fd, "SELECT garbage"));
  reply = ReadReply(fd, &buffer);
  ASSERT_FALSE(reply.empty());
  EXPECT_EQ(reply[0].rfind("ERR ", 0), 0u) << reply[0];

  ASSERT_TRUE(SendLine(fd, ".stats"));
  reply = ReadReply(fd, &buffer);
  ASSERT_GE(reply.size(), 2u);
  EXPECT_EQ(reply[0], "OK");
  EXPECT_NE(reply[1].find("\"writes\": 1"), std::string::npos) << reply[1];

  ASSERT_TRUE(SendLine(fd, ".quit"));
  char drain[64];
  EXPECT_LE(::recv(fd, drain, sizeof(drain), 0), 0);  // server closed
  ::close(fd);

  // Two concurrent connections get independent sessions.
  const int fd1 = ConnectTo(tcp.port());
  const int fd2 = ConnectTo(tcp.port());
  ASSERT_GE(fd1, 0);
  ASSERT_GE(fd2, 0);
  std::string buffer1;
  std::string buffer2;
  ASSERT_TRUE(SendLine(fd1, "SELECT COUNT FROM patients"));
  ASSERT_TRUE(SendLine(fd2, "SELECT COUNT FROM sales"));
  EXPECT_EQ(ReadReply(fd1, &buffer1)[0], "OK 1");
  EXPECT_EQ(ReadReply(fd2, &buffer2)[0], "OK 1");
  ::close(fd1);
  ::close(fd2);

  tcp.Stop();
  // Stop is idempotent and Start can bind again afterwards.
  tcp.Stop();
  ASSERT_TRUE(tcp.Start().ok());
  tcp.Stop();
}

}  // namespace
}  // namespace serve
}  // namespace mddc
