#include <gtest/gtest.h>

#include "relational/algebra.h"

namespace mddc {
namespace relational {
namespace {

Value I(std::int64_t v) { return Value(v); }
Value D(double v) { return Value(v); }
Value S(std::string v) { return Value(std::move(v)); }

Relation Patients() {
  Relation r({"id", "name", "age", "area"});
  (void)r.Insert({I(1), S("John Doe"), I(30), S("North")});
  (void)r.Insert({I(2), S("Jane Doe"), I(49), S("North")});
  (void)r.Insert({I(3), S("Jim Roe"), I(65), S("South")});
  (void)r.Insert({I(4), S("Ann Poe"), Value::Null(), S("South")});
  return r;
}

TEST(ValueTest, TypedAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(*I(42).AsInt(), 42);
  EXPECT_DOUBLE_EQ(*I(42).AsDouble(), 42.0);
  EXPECT_DOUBLE_EQ(*D(2.5).AsDouble(), 2.5);
  EXPECT_EQ(*S("x").AsString(), "x");
  EXPECT_FALSE(S("x").AsDouble().ok());
  EXPECT_FALSE(Value::Null().AsInt().ok());
}

TEST(ValueTest, OrderingAndEquality) {
  EXPECT_EQ(I(2), D(2.0));  // numeric unification
  EXPECT_LT(Value::Null(), I(0));
  EXPECT_LT(I(5), S("a"));  // numbers before strings
  EXPECT_LT(I(1), I(2));
  EXPECT_LT(S("a"), S("b"));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(I(7).ToString(), "7");
  EXPECT_EQ(D(2.0).ToString(), "2");
  EXPECT_EQ(S("abc").ToString(), "abc");
}

TEST(RelationTest, SetSemantics) {
  Relation r({"a"});
  ASSERT_TRUE(r.Insert({I(1)}).ok());
  ASSERT_TRUE(r.Insert({I(1)}).ok());
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.Contains({I(1)}));
  EXPECT_FALSE(r.Contains({I(2)}));
  EXPECT_FALSE(r.Insert({I(1), I(2)}).ok());  // arity mismatch
}

TEST(RelationTest, AttributeLookup) {
  Relation r = Patients();
  EXPECT_EQ(*r.AttributeIndex("age"), 2u);
  EXPECT_FALSE(r.AttributeIndex("nope").ok());
}

TEST(RelationalAlgebraTest, SelectConditions) {
  Relation r = Patients();
  auto north = Select(r, {"area", Condition::Op::kEq, S("North")});
  ASSERT_TRUE(north.ok());
  EXPECT_EQ(north->size(), 2u);

  auto old_patients = Select(r, {"age", Condition::Op::kGe, I(49)});
  ASSERT_TRUE(old_patients.ok());
  EXPECT_EQ(old_patients->size(), 2u);

  auto not_north = Select(r, {"area", Condition::Op::kNe, S("North")});
  ASSERT_TRUE(not_north.ok());
  EXPECT_EQ(not_north->size(), 2u);

  EXPECT_FALSE(Select(r, {"nope", Condition::Op::kEq, I(1)}).ok());
}

TEST(RelationalAlgebraTest, SelectWhereArbitraryPredicate) {
  Relation r = Patients();
  auto result = SelectWhere(r, [](const Relation& rel, const Tuple& t)
                                   -> Result<bool> {
    MDDC_ASSIGN_OR_RETURN(std::size_t name, rel.AttributeIndex("name"));
    MDDC_ASSIGN_OR_RETURN(std::string text, t[name].AsString());
    return text.find("Doe") != std::string::npos;
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 2u);
}

TEST(RelationalAlgebraTest, ProjectCollapsesDuplicates) {
  Relation r = Patients();
  auto areas = Project(r, {"area"});
  ASSERT_TRUE(areas.ok());
  EXPECT_EQ(areas->size(), 2u);  // North, South
  auto reordered = Project(r, {"age", "id"});
  ASSERT_TRUE(reordered.ok());
  EXPECT_EQ(reordered->attributes(),
            (std::vector<std::string>{"age", "id"}));
}

TEST(RelationalAlgebraTest, UnionAndDifference) {
  Relation r({"a"});
  Relation s({"a"});
  (void)r.Insert({I(1)});
  (void)r.Insert({I(2)});
  (void)s.Insert({I(2)});
  (void)s.Insert({I(3)});
  auto u = Union(r, s);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->size(), 3u);
  auto d = Difference(r, s);
  ASSERT_TRUE(d.ok());
  ASSERT_EQ(d->size(), 1u);
  EXPECT_TRUE(d->Contains({I(1)}));

  Relation bad({"b"});
  EXPECT_EQ(Union(r, bad).status().code(), StatusCode::kSchemaMismatch);
  EXPECT_EQ(Difference(r, bad).status().code(), StatusCode::kSchemaMismatch);
}

TEST(RelationalAlgebraTest, ProductAndJoins) {
  Relation r({"id", "area"});
  (void)r.Insert({I(1), S("North")});
  (void)r.Insert({I(2), S("South")});
  Relation s({"region", "pop"});
  (void)s.Insert({S("North"), I(100)});
  (void)s.Insert({S("South"), I(200)});

  auto product = Product(r, s);
  ASSERT_TRUE(product.ok());
  EXPECT_EQ(product->size(), 4u);
  EXPECT_EQ(product->arity(), 4u);

  auto joined = EquiJoin(r, s, {{"area", "region"}});
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->size(), 2u);

  // Natural join on a shared attribute name.
  Relation s2({"area", "pop"});
  (void)s2.Insert({S("North"), I(100)});
  auto natural = NaturalJoin(r, s2);
  ASSERT_TRUE(natural.ok());
  ASSERT_EQ(natural->size(), 1u);
  EXPECT_EQ(natural->arity(), 3u);  // id, area, pop

  // Disjoint attributes: natural join degenerates to product.
  auto degenerate = NaturalJoin(r, s);
  ASSERT_TRUE(degenerate.ok());
  EXPECT_EQ(degenerate->size(), 4u);

  EXPECT_FALSE(Product(r, r).ok());  // shared names
}

TEST(RelationalAlgebraTest, AggregateFunctions) {
  Relation r = Patients();
  auto counts = Aggregate(r, {"area"},
                          {{AggregateTerm::Func::kCountStar, "", "n"}});
  ASSERT_TRUE(counts.ok());
  ASSERT_EQ(counts->size(), 2u);
  EXPECT_TRUE(counts->Contains({S("North"), I(2)}));
  EXPECT_TRUE(counts->Contains({S("South"), I(2)}));

  // COUNT(age) skips the null.
  auto known_ages = Aggregate(r, {"area"},
                              {{AggregateTerm::Func::kCount, "age", "n"}});
  ASSERT_TRUE(known_ages.ok());
  EXPECT_TRUE(known_ages->Contains({S("South"), I(1)}));

  auto sums = Aggregate(r, {}, {{AggregateTerm::Func::kSum, "age", "total"}});
  ASSERT_TRUE(sums.ok());
  ASSERT_EQ(sums->size(), 1u);
  EXPECT_TRUE(sums->Contains({D(144.0)}));

  auto stats = Aggregate(r, {},
                         {{AggregateTerm::Func::kMin, "age", "lo"},
                          {AggregateTerm::Func::kMax, "age", "hi"},
                          {AggregateTerm::Func::kAvg, "age", "mean"}});
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->size(), 1u);
  EXPECT_TRUE(stats->Contains({I(30), I(65), D(48.0)}));
}

TEST(RelationalAlgebraTest, AggregateDistinct) {
  Relation r = Patients();
  auto distinct = Aggregate(
      r, {}, {{AggregateTerm::Func::kCountDistinct, "area", "areas"}});
  ASSERT_TRUE(distinct.ok());
  EXPECT_TRUE(distinct->Contains({I(2)}));
}

TEST(RelationalAlgebraTest, AggregateOverEmptyGroupIsNull) {
  Relation r({"x"});
  auto result = Aggregate(r, {}, {{AggregateTerm::Func::kMin, "x", "m"}});
  ASSERT_TRUE(result.ok());
  // Set semantics: no input tuples means no groups at all.
  EXPECT_TRUE(result->empty());
}

}  // namespace
}  // namespace relational
}  // namespace mddc
