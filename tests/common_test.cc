#include <gtest/gtest.h>

#include "common/date.h"
#include "common/id.h"
#include "common/result.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/table_printer.h"

namespace mddc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad input");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad input");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::InvariantViolation("x").code(),
            StatusCode::kInvariantViolation);
  EXPECT_EQ(Status::IllegalAggregation("x").code(),
            StatusCode::kIllegalAggregation);
  EXPECT_EQ(Status::SchemaMismatch("x").code(), StatusCode::kSchemaMismatch);
  EXPECT_EQ(Status::TemporalTypeMismatch("x").code(),
            StatusCode::kTemporalTypeMismatch);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::InvalidArgument("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result = Status::NotFound("missing");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

Result<int> Doubled(Result<int> input) {
  MDDC_ASSIGN_OR_RETURN(int value, input);
  return value * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubled(21), 42);
  EXPECT_EQ(Doubled(Status::NotFound("x")).status().code(),
            StatusCode::kNotFound);
}

TEST(IdTest, DefaultIsInvalid) {
  ValueId id;
  EXPECT_FALSE(id.valid());
}

TEST(IdTest, ComparesByRawValue) {
  EXPECT_EQ(ValueId(3), ValueId(3));
  EXPECT_NE(ValueId(3), ValueId(4));
  EXPECT_LT(ValueId(3), ValueId(4));
}

TEST(IdTest, DistinctTagTypesAreDistinctTypes) {
  static_assert(!std::is_same_v<ValueId, FactId>);
}

TEST(DateTest, RoundTripsKnownDates) {
  CalendarDate date{1980, 1, 1};
  auto day = DateToDayNumber(date);
  ASSERT_TRUE(day.ok());
  EXPECT_EQ(DayNumberToDate(*day), date);
}

TEST(DateTest, EpochIsZero) {
  auto day = DateToDayNumber(CalendarDate{1900, 1, 1});
  ASSERT_TRUE(day.ok());
  EXPECT_EQ(*day, 0);
}

TEST(DateTest, LeapYearHandling) {
  EXPECT_TRUE(IsValidDate(CalendarDate{2000, 2, 29}));
  EXPECT_FALSE(IsValidDate(CalendarDate{1900, 2, 29}));  // not a leap year
  EXPECT_FALSE(IsValidDate(CalendarDate{1981, 2, 29}));
  EXPECT_FALSE(IsValidDate(CalendarDate{1981, 13, 1}));
  EXPECT_FALSE(IsValidDate(CalendarDate{1981, 4, 31}));
}

TEST(DateTest, ConsecutiveDaysDifferByOne) {
  auto a = DateToDayNumber(CalendarDate{1979, 12, 31});
  auto b = DateToDayNumber(CalendarDate{1980, 1, 1});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b - *a, 1);
}

TEST(DateTest, ParsesPaperFormat) {
  // The paper writes dates as dd/mm/yy; 25/05/69 is 1969.
  auto parsed = ParseDate("25/05/69");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(DayNumberToDate(*parsed), (CalendarDate{1969, 5, 25}));
}

TEST(DateTest, TwoDigitYearWindow) {
  EXPECT_EQ(DayNumberToDate(*ParseDate("01/01/30")).year, 1930);
  EXPECT_EQ(DayNumberToDate(*ParseDate("01/01/29")).year, 2029);
  EXPECT_EQ(DayNumberToDate(*ParseDate("01/01/1985")).year, 1985);
}

TEST(DateTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDate("not a date").ok());
  EXPECT_FALSE(ParseDate("31/02/80").ok());
  EXPECT_FALSE(ParseDate("1/2").ok());
}

TEST(DateTest, FormatsWithFourDigitYear) {
  EXPECT_EQ(FormatDate(*ParseDate("01/01/80")), "01/01/1980");
}

TEST(DateTest, RoundTripSweep) {
  // Property: DayNumberToDate inverts DateToDayNumber over a broad sweep.
  auto start = DateToDayNumber(CalendarDate{1969, 1, 1});
  ASSERT_TRUE(start.ok());
  for (std::int64_t day = *start; day < *start + 20000; day += 37) {
    CalendarDate date = DayNumberToDate(day);
    auto back = DateToDayNumber(date);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, day);
  }
}

TEST(StringsTest, JoinAndSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, StrCatMixesTypes) {
  EXPECT_EQ(StrCat("x=", 42, " y=", 1.5), "x=42 y=1.5");
}

TEST(StringsTest, FormatDoubleTrimsIntegers) {
  EXPECT_EQ(FormatDouble(2.0), "2");
  EXPECT_EQ(FormatDouble(2.5), "2.5");
  EXPECT_EQ(FormatDouble(-3.0), "-3");
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter printer({"ID", "Name"});
  printer.AddRow({"1", "John Doe"});
  printer.AddRow({"2", "Jane"});
  std::string out = printer.ToString();
  EXPECT_NE(out.find("ID | Name"), std::string::npos);
  EXPECT_NE(out.find("1  | John Doe"), std::string::npos);
  EXPECT_EQ(printer.row_count(), 2u);
}

TEST(TablePrinterTest, PadsShortRows) {
  TablePrinter printer({"A", "B", "C"});
  printer.AddRow({"only"});
  std::string out = printer.ToString();
  EXPECT_NE(out.find("only"), std::string::npos);
}

}  // namespace
}  // namespace mddc
