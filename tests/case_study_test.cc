#include <gtest/gtest.h>

#include "algebra/derived.h"
#include "algebra/timeslice.h"
#include "common/date.h"
#include "workload/case_study.h"

namespace mddc {
namespace {

Chronon Day(const std::string& text) { return *ParseDate(text); }

TEST(CaseStudyTest, BuildsValidSixDimensionalMo) {
  auto cs = BuildCaseStudy();
  ASSERT_TRUE(cs.ok()) << cs.status();
  EXPECT_EQ(cs->mo.dimension_count(), 6u);
  EXPECT_EQ(cs->mo.fact_count(), 2u);
  EXPECT_EQ(cs->mo.schema().fact_type(), "Patient");
  EXPECT_TRUE(cs->mo.Validate().ok());
  EXPECT_EQ(cs->mo.dimension(cs->diagnosis).name(), "Diagnosis");
  EXPECT_EQ(cs->mo.dimension(cs->dob).name(), "Date of Birth");
  EXPECT_EQ(cs->mo.dimension(cs->age).name(), "Age");
}

TEST(CaseStudyTest, PatientTableRoundTrip) {
  auto cs = BuildCaseStudy();
  ASSERT_TRUE(cs.ok());
  auto table = RenderPatientTable(*cs);
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_NE(table->find("John Doe"), std::string::npos);
  EXPECT_NE(table->find("Jane Doe"), std::string::npos);
  EXPECT_NE(table->find("12345678"), std::string::npos);
  EXPECT_NE(table->find("25/05/1969"), std::string::npos);
  EXPECT_NE(table->find("20/03/1950"), std::string::npos);
}

TEST(CaseStudyTest, HasTableRoundTrip) {
  auto cs = BuildCaseStudy();
  ASSERT_TRUE(cs.ok());
  auto table = RenderHasTable(*cs);
  ASSERT_TRUE(table.ok()) << table.status();
  // The five Has rows of Table 1.
  EXPECT_NE(table->find("23/03/1975"), std::string::npos);
  EXPECT_NE(table->find("NOW"), std::string::npos);
  EXPECT_NE(table->find("Primary"), std::string::npos);
  EXPECT_NE(table->find("Secondary"), std::string::npos);
}

TEST(CaseStudyTest, DiagnosisTableRoundTrip) {
  auto cs = BuildCaseStudy();
  ASSERT_TRUE(cs.ok());
  auto table = RenderDiagnosisTable(*cs);
  ASSERT_TRUE(table.ok()) << table.status();
  for (const char* code :
       {"P11", "O24", "O24.0", "O24.1", "P1", "D1", "E10", "E11", "E1",
        "O2"}) {
    EXPECT_NE(table->find(code), std::string::npos) << code;
  }
  EXPECT_NE(table->find("Insulin dep. diabetes"), std::string::npos);
}

TEST(CaseStudyTest, GroupingTableRoundTrip) {
  auto cs = BuildCaseStudy();
  ASSERT_TRUE(cs.ok());
  auto table = RenderGroupingTable(*cs);
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_NE(table->find("WHO"), std::string::npos);
  EXPECT_NE(table->find("User-defined"), std::string::npos);
}

TEST(CaseStudyTest, SchemaLatticesMatchFigure2) {
  auto cs = BuildCaseStudy();
  ASSERT_TRUE(cs.ok());
  std::string schema = RenderSchemaLattices(*cs);
  for (const char* category :
       {"Low-level Diagnosis", "Diagnosis Family", "Diagnosis Group", "Day",
        "Week", "Month", "Quarter", "Year", "Decade", "Area", "County",
        "Region", "Name", "SSN", "Age", "Five-year Group",
        "Ten-year Group"}) {
    EXPECT_NE(schema.find(category), std::string::npos) << category;
  }
}

TEST(CaseStudyTest, DobHasTwoHierarchies) {
  auto cs = BuildCaseStudy();
  ASSERT_TRUE(cs.ok());
  const DimensionType& dob = cs->mo.dimension(cs->dob).type();
  CategoryTypeIndex day = *dob.Find("Day");
  EXPECT_EQ(dob.Pred(day).size(), 2u);  // Week and Month
  // Each patient's birth day rolls up through both paths.
  FactId p1 = cs->registry->Atom(1);
  auto pairs = cs->mo.relation(cs->dob).ForFact(p1);
  ASSERT_EQ(pairs.size(), 1u);
  const Dimension& dimension = cs->mo.dimension(cs->dob);
  EXPECT_FALSE(
      dimension.AncestorsIn(pairs.front()->value, *dob.Find("Week")).empty());
  EXPECT_FALSE(
      dimension.AncestorsIn(pairs.front()->value, *dob.Find("Decade"))
          .empty());
}

TEST(CaseStudyTest, AgesAreNumericAndGrouped) {
  auto cs = BuildCaseStudy();
  ASSERT_TRUE(cs.ok());
  FactId p2 = cs->registry->Atom(2);
  auto pairs = cs->mo.relation(cs->age).ForFact(p2);
  ASSERT_EQ(pairs.size(), 1u);
  auto age = cs->mo.dimension(cs->age).NumericValueOf(pairs.front()->value);
  ASSERT_TRUE(age.ok());
  EXPECT_EQ(*age, 48.0);  // Jane Doe, born 20/03/50, as of 01/01/99
  // Age 48 is in five-year group 45-49 and ten-year group 40-49.
  CategoryTypeIndex ten =
      *cs->mo.dimension(cs->age).type().Find("Ten-year Group");
  auto groups =
      cs->mo.dimension(cs->age).AncestorsIn(pairs.front()->value, ten);
  ASSERT_EQ(groups.size(), 1u);
}

TEST(CaseStudyTest, Example12CountsReproduce) {
  // The headline result (Figure 3): set-count per diagnosis group gives
  // {1,2} -> 2 for group 11 and {2} -> 1 for group 12.
  auto cs = BuildCaseStudy();
  ASSERT_TRUE(cs.ok());
  CategoryTypeIndex group =
      *cs->mo.dimension(cs->diagnosis).type().Find("Diagnosis Group");
  auto result = RollUp(cs->mo, cs->diagnosis, group, AggFunction::SetCount());
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->fact_count(), 2u);
  FactId both = cs->registry->Set({cs->registry->Atom(1),
                                   cs->registry->Atom(2)});
  FactId only2 = cs->registry->Set({cs->registry->Atom(2)});
  EXPECT_TRUE(result->HasFact(both));
  EXPECT_TRUE(result->HasFact(only2));
}

TEST(CaseStudyTest, TimesliceIn1975HidesNewClassification) {
  auto cs = BuildCaseStudy();
  ASSERT_TRUE(cs.ok());
  auto sliced = ValidTimeslice(cs->mo, Day("15/06/75"));
  ASSERT_TRUE(sliced.ok()) << sliced.status();
  EXPECT_FALSE(sliced->dimension(cs->diagnosis).HasValue(ValueId(11)));
  EXPECT_TRUE(sliced->dimension(cs->diagnosis).HasValue(ValueId(3)));
  // Only patient 2 existed in the Has table then.
  EXPECT_EQ(sliced->fact_count(), 1u);
}

TEST(CaseStudyTest, DiagnosesByResidenceArea) {
  // The case study's motivating analysis: diagnoses per area.
  auto cs = BuildCaseStudy();
  ASSERT_TRUE(cs.ok());
  auto rows = SqlAggregate(
      cs->mo,
      {SqlGroupBy{cs->residence,
                  *cs->mo.dimension(cs->residence).type().Find("Area"),
                  "Name"}},
      AggFunction::SetCount());
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0].group[0], "Centrum");
  EXPECT_DOUBLE_EQ((*rows)[0].value, 1.0);
}

}  // namespace
}  // namespace mddc
