#include <gtest/gtest.h>

#include <set>

#include "algebra/derived.h"
#include "algebra/operators.h"
#include "algebra/timeslice.h"
#include "common/date.h"
#include "workload/clinical_generator.h"

// Randomized algebraic-law checks over generated MOs: the paper's
// operators must satisfy the standard set-algebra identities on fact
// sets, and aggregate formation must satisfy its coverage invariants.
// Each TEST_P seed generates a differently shaped workload (varying
// non-strictness, churn, granularity, uncertainty).

namespace mddc {
namespace {

class AlgebraLawsTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    ClinicalWorkloadParams params;
    int seed = GetParam();
    params.seed = static_cast<std::uint32_t>(seed * 7919 + 13);
    params.num_patients = 60 + 10 * (seed % 5);
    params.num_groups = 2 + seed % 3;
    params.non_strict_rate = 0.1 * (seed % 4);
    params.reclassified_rate = 0.1 * (seed % 3);
    params.coarse_granularity_rate = 0.15 * (seed % 2);
    params.uncertain_rate = 0.1 * (seed % 2);
    registry_ = std::make_shared<FactRegistry>();
    auto workload = GenerateClinicalWorkload(params, registry_);
    ASSERT_TRUE(workload.ok()) << workload.status();
    workload_ = std::make_unique<ClinicalMo>(*std::move(workload));
  }

  const MdObject& mo() const { return workload_->mo; }

  /// Splits the MO's facts by a region predicate.
  Predicate RegionPredicate() const {
    ValueId region = mo().dimension(workload_->residence_dim)
                         .ValuesIn(workload_->region)
                         .front();
    return Predicate::CharacterizedBy(workload_->residence_dim, region);
  }

  Predicate GroupPredicate() const {
    ValueId group = mo().dimension(workload_->diagnosis_dim)
                        .ValuesIn(workload_->group)
                        .front();
    return Predicate::CharacterizedBy(workload_->diagnosis_dim, group);
  }

  std::shared_ptr<FactRegistry> registry_;
  std::unique_ptr<ClinicalMo> workload_;
};

TEST_P(AlgebraLawsTest, SelectionConjunctionEqualsComposition) {
  Predicate p = RegionPredicate();
  Predicate q = GroupPredicate();
  auto conjunct = Select(mo(), p.And(q));
  auto composed = Select(*Select(mo(), p), q);
  ASSERT_TRUE(conjunct.ok());
  ASSERT_TRUE(composed.ok());
  EXPECT_EQ(conjunct->facts(), composed->facts());
}

TEST_P(AlgebraLawsTest, SelectionCommutes) {
  Predicate p = RegionPredicate();
  Predicate q = GroupPredicate();
  auto pq = Select(*Select(mo(), p), q);
  auto qp = Select(*Select(mo(), q), p);
  EXPECT_EQ(pq->facts(), qp->facts());
}

TEST_P(AlgebraLawsTest, SelectionPartitionsWithNegation) {
  Predicate p = GroupPredicate();
  auto yes = Select(mo(), p);
  auto no = Select(mo(), p.Not());
  ASSERT_TRUE(yes.ok());
  ASSERT_TRUE(no.ok());
  EXPECT_EQ(yes->fact_count() + no->fact_count(), mo().fact_count());
  auto both = Union(*yes, *no);
  ASSERT_TRUE(both.ok());
  EXPECT_EQ(both->facts(), mo().facts());
}

TEST_P(AlgebraLawsTest, UnionLaws) {
  Predicate p = GroupPredicate();
  MdObject a = *Select(mo(), p);
  MdObject b = *Select(mo(), RegionPredicate());
  auto ab = Union(a, b);
  auto ba = Union(b, a);
  ASSERT_TRUE(ab.ok());
  ASSERT_TRUE(ba.ok());
  EXPECT_EQ(ab->facts(), ba->facts());            // commutative
  auto aa = Union(a, a);
  EXPECT_EQ(aa->facts(), a.facts());              // idempotent
  auto assoc1 = Union(*Union(a, b), a);
  auto assoc2 = Union(a, *Union(b, a));
  EXPECT_EQ(assoc1->facts(), assoc2->facts());    // associative
}

TEST_P(AlgebraLawsTest, DifferenceLaws) {
  MdObject a = *Select(mo(), GroupPredicate());
  MdObject b = *Select(mo(), RegionPredicate());
  // Snapshot-style identity checks need snapshot semantics; run them on
  // snapshot copies.
  a.set_temporal_type(TemporalType::kSnapshot);
  b.set_temporal_type(TemporalType::kSnapshot);
  auto self = Difference(a, a);
  ASSERT_TRUE(self.ok());
  EXPECT_EQ(self->fact_count(), 0u);
  auto diff = Difference(a, b);
  ASSERT_TRUE(diff.ok());
  for (FactId fact : diff->facts()) {
    EXPECT_TRUE(a.HasFact(fact));
    EXPECT_FALSE(b.HasFact(fact));
  }
  // (a \ b) u (a n b-ish): (a\b) facts + facts of a in b == a.
  std::size_t in_both = 0;
  for (FactId fact : a.facts()) {
    if (b.HasFact(fact)) ++in_both;
  }
  EXPECT_EQ(diff->fact_count() + in_both, a.fact_count());
}

TEST_P(AlgebraLawsTest, ProjectionPreservesFacts) {
  auto projected = Project(mo(), {workload_->diagnosis_dim});
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected->facts(), mo().facts());
  EXPECT_EQ(projected->dimension_count(), 1u);
  // Projection then projection == single projection.
  auto twice = Project(*Project(mo(), {0, 1}), {0});
  auto once = Project(mo(), {0});
  EXPECT_EQ(twice->facts(), once->facts());
  EXPECT_TRUE(twice->schema().EquivalentTo(once->schema()));
}

TEST_P(AlgebraLawsTest, RenameRoundTripIsIdentity) {
  auto renamed = Rename(mo(), RenameSpec{"X", {"A", "B"}});
  ASSERT_TRUE(renamed.ok());
  auto back = Rename(*renamed, RenameSpec{"Patient",
                                          {"Diagnosis", "Residence"}});
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->schema().EquivalentTo(mo().schema()));
  EXPECT_EQ(back->facts(), mo().facts());
}

TEST_P(AlgebraLawsTest, CartesianJoinCardinality) {
  MdObject small = *Select(mo(), GroupPredicate());
  if (small.fact_count() == 0 || small.fact_count() > 40) return;
  MdObject renamed =
      *Rename(small, RenameSpec{"Patient2", {"Diagnosis2", "Residence2"}});
  auto joined = Join(small, renamed, JoinPredicate::kTrue);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->fact_count(), small.fact_count() * small.fact_count());
  auto equi = Join(small, renamed, JoinPredicate::kEqual);
  ASSERT_TRUE(equi.ok());
  EXPECT_EQ(equi->fact_count(), small.fact_count());
  auto anti = Join(small, renamed, JoinPredicate::kNotEqual);
  ASSERT_TRUE(anti.ok());
  EXPECT_EQ(anti->fact_count() + equi->fact_count(), joined->fact_count());
}

TEST_P(AlgebraLawsTest, TimesliceDistributesOverUnion) {
  MdObject a = *Select(mo(), GroupPredicate());
  MdObject b = *Select(mo(), RegionPredicate());
  Chronon at = *ParseDate("15/06/85");
  auto slice_of_union = ValidTimeslice(*Union(a, b), at);
  auto union_of_slices =
      Union(*ValidTimeslice(a, at), *ValidTimeslice(b, at));
  ASSERT_TRUE(slice_of_union.ok());
  ASSERT_TRUE(union_of_slices.ok());
  EXPECT_EQ(slice_of_union->facts(), union_of_slices->facts());
}

TEST_P(AlgebraLawsTest, TimesliceIsMonotoneOnSelection) {
  // Slicing a selection == selecting... not in general (characterization
  // windows differ), but slice(mo) facts must be a subset of mo facts.
  Chronon at = *ParseDate("15/06/85");
  auto sliced = ValidTimeslice(mo(), at);
  ASSERT_TRUE(sliced.ok());
  for (FactId fact : sliced->facts()) {
    EXPECT_TRUE(mo().HasFact(fact));
  }
}

TEST_P(AlgebraLawsTest, AggregateGroupInvariants) {
  AggregateSpec spec{AggFunction::SetCount(),
                     {workload_->group,
                      mo().dimension(workload_->residence_dim).type().top()},
                     ResultDimensionSpec::Auto(),
                     kNowChronon,
                     true};
  auto result = AggregateFormation(mo(), spec);
  ASSERT_TRUE(result.ok()) << result.status();
  const std::size_t result_dim = result->dimension_count() - 1;
  for (FactId group : result->facts()) {
    auto term = registry_->Get(group);
    ASSERT_TRUE(term.ok());
    ASSERT_EQ(term->kind, FactTerm::Kind::kSet);
    // Non-empty, within the base population, duplicate-free (canonical).
    EXPECT_FALSE(term->members.empty());
    EXPECT_LE(term->members.size(), mo().fact_count());
    for (std::size_t m = 1; m < term->members.size(); ++m) {
      EXPECT_LT(term->members[m - 1], term->members[m]);
    }
    for (FactId member : term->members) {
      EXPECT_TRUE(mo().HasFact(member));
    }
    // The recorded count equals the set size.
    auto pairs = result->relation(result_dim).ForFact(group);
    ASSERT_EQ(pairs.size(), 1u);
    EXPECT_DOUBLE_EQ(*result->dimension(result_dim)
                          .NumericValueOf(pairs.front()->value),
                     static_cast<double>(term->members.size()));
  }
}

TEST_P(AlgebraLawsTest, AggregateCoverageMatchesCharacterization) {
  // Every fact characterized by some group value appears in at least one
  // group, and vice versa.
  AggregateSpec spec{AggFunction::SetCount(),
                     {workload_->group,
                      mo().dimension(workload_->residence_dim).type().top()},
                     ResultDimensionSpec::Auto(),
                     kNowChronon,
                     true};
  auto result = AggregateFormation(mo(), spec);
  ASSERT_TRUE(result.ok());
  std::set<FactId> grouped;
  for (FactId group : result->facts()) {
    auto term = registry_->Get(group);
    grouped.insert(term->members.begin(), term->members.end());
  }
  std::set<FactId> characterized;
  for (FactId fact : mo().facts()) {
    for (const auto& c :
         mo().CharacterizedBy(fact, workload_->diagnosis_dim)) {
      auto category =
          mo().dimension(workload_->diagnosis_dim).CategoryOf(c.value);
      if (category.ok() && *category == workload_->group) {
        characterized.insert(fact);
        break;
      }
    }
  }
  EXPECT_EQ(grouped, characterized);
}

TEST_P(AlgebraLawsTest, TimesliceFactsAreExactlyThoseCharacterizedAtT) {
  // rho_v(M, t) keeps a fact iff, in every dimension, some pair was
  // current at t with a value that was a member at t.
  Chronon at = *ParseDate("15/06/88");
  auto sliced = ValidTimeslice(mo(), at);
  ASSERT_TRUE(sliced.ok());
  std::set<FactId> expected;
  for (FactId fact : mo().facts()) {
    bool in_all = true;
    for (std::size_t i = 0; i < mo().dimension_count() && in_all; ++i) {
      bool covered = false;
      for (const auto* entry : mo().relation(i).ForFact(fact)) {
        auto membership = mo().dimension(i).MembershipOf(entry->value);
        if (entry->life.valid.Contains(at) && membership.ok() &&
            membership->valid.Contains(at)) {
          covered = true;
          break;
        }
      }
      in_all = covered;
    }
    if (in_all) expected.insert(fact);
  }
  std::set<FactId> actual(sliced->facts().begin(), sliced->facts().end());
  EXPECT_EQ(actual, expected);
}

TEST_P(AlgebraLawsTest, DuplicateRemovalIsIdempotentOnFactCount) {
  auto once = DuplicateRemoval(mo());
  ASSERT_TRUE(once.ok());
  auto twice = DuplicateRemoval(*once);
  ASSERT_TRUE(twice.ok());
  EXPECT_EQ(twice->fact_count(), once->fact_count());
  EXPECT_LE(once->fact_count(), mo().fact_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgebraLawsTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace mddc
