#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>

#include "algebra/operators.h"
#include "engine/executor.h"
#include "workload/retail_generator.h"

// Operator-new counting harness (docs/memory_layout.md): global
// replacement operators that count every heap allocation in this test
// binary, proving the arena claim — after warm-up, the hot aggregate
// path performs O(1) allocations per query, independent of fact count,
// because per-fact scratch lives in the query-lifetime arenas.
//
// Disabled under sanitizers (they interpose their own allocator and the
// counts become meaningless). Set MDDC_COUNT_ALLOCS=0 to skip the
// assertions in a plain build too.

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define MDDC_ALLOC_COUNTING_AVAILABLE 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define MDDC_ALLOC_COUNTING_AVAILABLE 0
#else
#define MDDC_ALLOC_COUNTING_AVAILABLE 1
#endif
#else
#define MDDC_ALLOC_COUNTING_AVAILABLE 1
#endif

#if MDDC_ALLOC_COUNTING_AVAILABLE

namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(align);
  const std::size_t rounded = ((size ? size : 1) + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#endif  // MDDC_ALLOC_COUNTING_AVAILABLE

namespace mddc {
namespace {

bool CountingEnabled() {
#if !MDDC_ALLOC_COUNTING_AVAILABLE
  return false;
#else
  const char* env = std::getenv("MDDC_COUNT_ALLOCS");
  return env == nullptr || std::string(env) != "0";
#endif
}

std::size_t CurrentAllocCount() {
#if MDDC_ALLOC_COUNTING_AVAILABLE
  return g_alloc_count.load(std::memory_order_relaxed);
#else
  return 0;
#endif
}

RetailMo BuildRetail(std::size_t purchases) {
  RetailWorkloadParams params;
  params.seed = 7;
  params.num_purchases = purchases;
  auto workload =
      GenerateRetailWorkload(params, std::make_shared<FactRegistry>());
  return std::move(workload).ValueOrDie();
}

AggregateSpec CountByCategory(const RetailMo& retail) {
  std::vector<CategoryTypeIndex> grouping;
  for (std::size_t i = 0; i < retail.mo.dimension_count(); ++i) {
    grouping.push_back(i == retail.product_dim
                           ? retail.category
                           : retail.mo.dimension(i).type().top());
  }
  return AggregateSpec{AggFunction::SetCount(), std::move(grouping),
                       ResultDimensionSpec::Auto()};
}

/// Runs the aggregate once and returns the number of heap allocations it
/// performed.
std::size_t AllocationsForOneQuery(const MdObject& mo,
                                   const AggregateSpec& spec,
                                   ExecContext* exec) {
  const std::size_t before = CurrentAllocCount();
  auto result = AggregateFormation(mo, spec, exec);
  EXPECT_TRUE(result.ok()) << result.status();
  return CurrentAllocCount() - before;
}

TEST(AllocCountTest, SteadyStateQueriesDoNotGrowTheArena) {
  if (!CountingEnabled()) GTEST_SKIP() << "alloc counting disabled";
  RetailMo retail = BuildRetail(/*purchases=*/2000);
  AggregateSpec spec = CountByCategory(retail);
  ExecContext exec(/*threads=*/4, /*min_facts=*/1);
  (void)AllocationsForOneQuery(retail.mo, spec, &exec);  // warm-up
  const std::uint64_t resets_before = exec.stats.arena_resets;
  const std::size_t run2 = AllocationsForOneQuery(retail.mo, spec, &exec);
  const std::size_t run3 = AllocationsForOneQuery(retail.mo, spec, &exec);
  // The arena absorbed per-fact scratch and was rewound between queries.
  EXPECT_GT(exec.stats.arena_bytes, 0u);
  EXPECT_GT(exec.stats.arena_resets, resets_before);
  // Steady state: repeat queries have a stable allocation footprint (the
  // arena retains its chunks across resets — no re-warming).
  EXPECT_LE(run3, run2 + run2 / 8 + 16)
      << "repeat query allocated more than its predecessor";
}

TEST(AllocCountTest, PerQueryAllocationsDoNotScaleWithFactCount) {
  if (!CountingEnabled()) GTEST_SKIP() << "alloc counting disabled";
  // Same schema (10 categories), 4x the facts: the per-fact work lives in
  // the arenas, so the *count* of heap allocations per steady-state query
  // must stay roughly flat instead of growing 4x.
  RetailMo small = BuildRetail(/*purchases=*/2000);
  RetailMo large = BuildRetail(/*purchases=*/8000);
  ASSERT_GE(large.mo.fact_count(), small.mo.fact_count() * 3);
  AggregateSpec small_spec = CountByCategory(small);
  AggregateSpec large_spec = CountByCategory(large);

  ExecContext small_exec(/*threads=*/4, /*min_facts=*/1);
  (void)AllocationsForOneQuery(small.mo, small_spec, &small_exec);
  const std::size_t small_steady =
      AllocationsForOneQuery(small.mo, small_spec, &small_exec);

  ExecContext large_exec(/*threads=*/4, /*min_facts=*/1);
  (void)AllocationsForOneQuery(large.mo, large_spec, &large_exec);
  const std::size_t large_steady =
      AllocationsForOneQuery(large.mo, large_spec, &large_exec);

  EXPECT_LT(large_steady, small_steady * 2 + 64)
      << "4x facts must not mean 4x allocations: small=" << small_steady
      << " large=" << large_steady;
}

}  // namespace
}  // namespace mddc
