#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/mdql_server.h"
#include "serve/mo_store.h"
#include "serve/tcp_server.h"
#include "workload/case_study.h"

// Robustness of the TCP front-end (serve/tcp_server.h) against hostile
// or broken clients: malformed statements, oversized request lines,
// mid-statement disconnects, and meta commands racing active writers.
// The invariant throughout: the server replies ERR (never crashes or
// stalls) and the connection — or at least the server — stays
// serviceable for the next well-formed request.

namespace mddc {
namespace serve {
namespace {

int ConnectTo(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendRaw(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool SendLine(int fd, const std::string& line) {
  return SendRaw(fd, line + "\n");
}

/// Reads one full reply (through the '.' terminator line); returns the
/// reply's lines without the terminator.
std::vector<std::string> ReadReply(int fd, std::string* buffer) {
  std::vector<std::string> lines;
  char chunk[4096];
  while (true) {
    std::size_t newline;
    while ((newline = buffer->find('\n')) != std::string::npos) {
      std::string line = buffer->substr(0, newline);
      buffer->erase(0, newline + 1);
      if (line == ".") return lines;
      lines.push_back(std::move(line));
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return lines;  // connection dropped mid-reply
    buffer->append(chunk, static_cast<std::size_t>(n));
  }
}

class TcpRobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto cs = BuildCaseStudy();
    ASSERT_TRUE(cs.ok()) << cs.status();
    ASSERT_TRUE(store_.Publish("patients", cs->mo).ok());
    ASSERT_TRUE(tcp_.Start().ok());
    ASSERT_NE(tcp_.port(), 0);
  }

  void TearDown() override { tcp_.Stop(); }

  /// One well-formed query must round-trip OK on `fd` — the
  /// serviceability probe used after every abuse.
  void ExpectServiceable(int fd, std::string* buffer) {
    ASSERT_TRUE(SendLine(fd, "SELECT COUNT FROM patients"));
    const std::vector<std::string> reply = ReadReply(fd, buffer);
    ASSERT_FALSE(reply.empty());
    EXPECT_EQ(reply[0], "OK 1") << reply[0];
  }

  MoStore store_;
  MdqlServer server_{&store_};
  TcpServer tcp_{&server_};
};

TEST_F(TcpRobustnessTest, MalformedLinesGetErrAndConnectionSurvives) {
  const int fd = ConnectTo(tcp_.port());
  ASSERT_GE(fd, 0);
  std::string buffer;

  const std::vector<std::string> garbage = {
      "garbage statement",
      "SELECT",
      "SELECT COUNT FROM",
      "INSERT INTO patients FACT",
      "INSERT INTO patients FACT 1 (Name.Name = 'No Such Person')",
      "SELECT COUNT FROM patients WHERE",
      "\x01\x02\x03 binary noise",
      "..",
  };
  for (const std::string& line : garbage) {
    ASSERT_TRUE(SendLine(fd, line)) << line;
    const std::vector<std::string> reply = ReadReply(fd, &buffer);
    ASSERT_FALSE(reply.empty()) << line;
    EXPECT_EQ(reply[0].rfind("ERR ", 0), 0u) << line << " -> " << reply[0];
  }
  ExpectServiceable(fd, &buffer);
  ::close(fd);
}

TEST_F(TcpRobustnessTest, OversizedCompleteLineIsRejected) {
  const int fd = ConnectTo(tcp_.port());
  ASSERT_GE(fd, 0);
  std::string buffer;

  // A complete statement line just past the cap: exactly one ERR, and
  // the connection keeps serving.
  std::string huge = "SELECT COUNT FROM patients WHERE Name.Name = '";
  huge.append(TcpServer::kMaxLineBytes, 'x');
  huge += "'";
  ASSERT_TRUE(SendLine(fd, huge));
  const std::vector<std::string> reply = ReadReply(fd, &buffer);
  ASSERT_FALSE(reply.empty());
  EXPECT_EQ(reply[0].rfind("ERR ", 0), 0u) << reply[0];
  EXPECT_NE(reply[0].find("exceeds"), std::string::npos) << reply[0];

  ExpectServiceable(fd, &buffer);
  ::close(fd);
}

TEST_F(TcpRobustnessTest, OversizedLineWithoutNewlineIsRejectedEarly) {
  const int fd = ConnectTo(tcp_.port());
  ASSERT_GE(fd, 0);
  std::string buffer;

  // Flood past the cap without ever sending a newline: the server must
  // reject (one ERR) instead of buffering without bound...
  const std::string flood(TcpServer::kMaxLineBytes + 4096, 'y');
  ASSERT_TRUE(SendRaw(fd, flood));
  const std::vector<std::string> reply = ReadReply(fd, &buffer);
  ASSERT_FALSE(reply.empty());
  EXPECT_EQ(reply[0].rfind("ERR ", 0), 0u) << reply[0];

  // ...and once the offending line finally ends, the next statement is
  // served normally.
  ASSERT_TRUE(SendRaw(fd, "more of the same line\n"));
  ExpectServiceable(fd, &buffer);
  ::close(fd);
}

TEST_F(TcpRobustnessTest, MidStatementDisconnectLeavesServerServiceable) {
  // Drop the connection halfway through a statement (no newline sent).
  const int fd = ConnectTo(tcp_.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(SendRaw(fd, "INSERT INTO patients FACT 912 (Name.Na"));
  ::close(fd);

  // And once more mid-flood of an oversized line.
  const int fd2 = ConnectTo(tcp_.port());
  ASSERT_GE(fd2, 0);
  const std::string flood(TcpServer::kMaxLineBytes * 2, 'z');
  ASSERT_TRUE(SendRaw(fd2, flood));
  ::close(fd2);

  // The server keeps serving fresh connections; the half-sent INSERT
  // was never executed.
  const int fd3 = ConnectTo(tcp_.port());
  ASSERT_GE(fd3, 0);
  std::string buffer;
  ExpectServiceable(fd3, &buffer);
  ASSERT_TRUE(SendLine(fd3, ".epoch"));
  const std::vector<std::string> reply = ReadReply(fd3, &buffer);
  ASSERT_FALSE(reply.empty());
  EXPECT_EQ(reply[0], "OK 1");  // only the Publish; no partial INSERT
  ::close(fd3);
}

TEST_F(TcpRobustnessTest, StatsAndReadsDuringActiveWrites) {
  // One connection hammers INSERTs while another interleaves .stats,
  // .epoch and SELECTs; every reply on both connections must be OK.
  const int writer_fd = ConnectTo(tcp_.port());
  ASSERT_GE(writer_fd, 0);
  std::thread writer([writer_fd] {
    std::string buffer;
    for (int i = 0; i < 20; ++i) {
      const std::string statement =
          "INSERT INTO patients FACT " + std::to_string(7000 + i) +
          " (Name.Name = 'Jane Doe')";
      if (!SendLine(writer_fd, statement)) break;
      const std::vector<std::string> reply = ReadReply(writer_fd, &buffer);
      ASSERT_FALSE(reply.empty());
      EXPECT_EQ(reply[0], "OK 1") << reply[0];
    }
  });

  const int fd = ConnectTo(tcp_.port());
  ASSERT_GE(fd, 0);
  std::string buffer;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(SendLine(fd, ".stats"));
    std::vector<std::string> reply = ReadReply(fd, &buffer);
    ASSERT_GE(reply.size(), 2u);
    EXPECT_EQ(reply[0], "OK");
    EXPECT_NE(reply[1].find("\"queries\""), std::string::npos);

    ASSERT_TRUE(SendLine(fd, ".epoch"));
    reply = ReadReply(fd, &buffer);
    ASSERT_FALSE(reply.empty());
    EXPECT_EQ(reply[0].rfind("OK ", 0), 0u) << reply[0];

    ExpectServiceable(fd, &buffer);
  }
  writer.join();
  ::close(writer_fd);
  ::close(fd);
}

}  // namespace
}  // namespace serve
}  // namespace mddc
