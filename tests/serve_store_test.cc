#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "io/serialize.h"
#include "serve/mo_store.h"
#include "workload/retail_generator.h"

// Coverage for the MVCC publication point (serve/mo_store.h): epoch
// publication and pinning, snapshot immutability, registry forking,
// reclamation, and — under ThreadSanitizer — the N-readers/1-writer
// hammer whose every observation must be byte-identical to a sequential
// replay of the same mutation batches.

namespace mddc {
namespace serve {
namespace {

MdObject BuildSales(std::size_t purchases = 300) {
  RetailWorkloadParams params;
  params.seed = 7;
  params.num_purchases = purchases;
  auto workload =
      GenerateRetailWorkload(params, std::make_shared<FactRegistry>());
  return std::move(workload).ValueOrDie().mo;
}

std::string Bytes(const MdObject& mo) {
  auto text = io::WriteMo(mo);
  EXPECT_TRUE(text.ok()) << text.status();
  return text.ok() ? *text : std::string();
}

/// One deterministic mutation batch: three new atomic facts related to
/// the first bottom value of dimension 0. Applied identically to writer
/// drafts and to the sequential-replay MO.
Status ApplyBatch(MdObject& mo, int batch) {
  const CategoryTypeIndex bottom = mo.dimension(0).type().bottom();
  const ValueId value = mo.dimension(0).ValuesIn(bottom).front();
  for (int j = 0; j < 3; ++j) {
    // Key space disjoint from the retail generator's purchase keys
    // (1000000 + i), so every batch really adds new facts.
    const FactId fact =
        mo.registry()->Atom(9000000 + static_cast<std::uint64_t>(batch) * 3 +
                            static_cast<std::uint64_t>(j));
    MDDC_RETURN_NOT_OK(mo.AddFact(fact));
    MDDC_RETURN_NOT_OK(mo.Relate(0, fact, value));
  }
  return mo.CoverWithTop();
}

TEST(MoStoreTest, PublishPinRoundTrip) {
  MoStore store;
  EXPECT_EQ(store.epoch(), 0u);
  EXPECT_EQ(store.Pin()->size(), 0u);

  ASSERT_TRUE(store.Publish("sales", BuildSales()).ok());
  EXPECT_EQ(store.epoch(), 1u);
  auto snapshot = store.Pin();
  EXPECT_EQ(snapshot->epoch(), 1u);
  ASSERT_NE(snapshot->Find("sales"), nullptr);
  EXPECT_EQ(snapshot->Find("nope"), nullptr);
  EXPECT_EQ(snapshot->names(), std::vector<std::string>{"sales"});

  // Names are unique; replacement goes through Mutate.
  EXPECT_FALSE(store.Publish("sales", BuildSales()).ok());

  ASSERT_TRUE(store.Drop("sales").ok());
  EXPECT_EQ(store.epoch(), 2u);
  EXPECT_EQ(store.Pin()->Find("sales"), nullptr);
  // The pinned older epoch still sees it.
  EXPECT_NE(snapshot->Find("sales"), nullptr);
  EXPECT_FALSE(store.Drop("sales").ok());
}

TEST(MoStoreTest, PublicationSealsTheCallerRegistry) {
  MdObject sales = BuildSales();
  const std::shared_ptr<FactRegistry> caller_registry = sales.registry();
  MoStore store;
  ASSERT_TRUE(store.Publish("sales", sales).ok());
  const PublishedMo* entry = store.Pin()->Find("sales");
  ASSERT_NE(entry, nullptr);
  // The published registry is a private flat copy: the caller may keep
  // interning without becoming visible to (or racing) readers.
  EXPECT_NE(entry->mo().registry().get(), caller_registry.get());
  const std::size_t published_size = entry->mo().registry()->size();
  caller_registry->Atom(99999999);
  EXPECT_EQ(entry->mo().registry()->size(), published_size);
}

TEST(MoStoreTest, PublishedDimensionsAreFrozenAndCompiled) {
  MoStore store;
  ASSERT_TRUE(store.Publish("sales", BuildSales()).ok());
  const PublishedMo* entry = store.Pin()->Find("sales");
  ASSERT_NE(entry, nullptr);
  ASSERT_EQ(entry->rollups.size(), entry->mo().dimension_count());
  for (std::size_t i = 0; i < entry->mo().dimension_count(); ++i) {
    const Dimension& dimension = entry->mo().dimension(i);
    EXPECT_TRUE(dimension.publish_frozen()) << dimension.name();
    ASSERT_NE(entry->rollups[i], nullptr);
    EXPECT_FALSE(entry->rollups[i]->StaleFor(dimension));
    // The frozen fast path must serve the bundled snapshot, not build.
    ExecStats stats;
    EXPECT_EQ(RollupIndex::For(dimension, &stats).get(),
              entry->rollups[i].get());
    EXPECT_EQ(stats.index_builds, 0u);
  }
}

TEST(MoStoreTest, PinnedEpochIsImmutableUnderMutation) {
  MoStore store;
  ASSERT_TRUE(store.Publish("sales", BuildSales()).ok());
  auto pinned = store.Pin();
  const std::string before = Bytes(pinned->Find("sales")->mo());
  const std::size_t facts_before = pinned->Find("sales")->mo().fact_count();

  ASSERT_TRUE(
      store.Mutate("sales", [](MdObject& draft) { return ApplyBatch(draft, 0); })
          .ok());
  EXPECT_EQ(store.epoch(), 2u);

  // The new epoch has the facts; the pinned epoch is bit-for-bit what it
  // was.
  EXPECT_EQ(store.Pin()->Find("sales")->mo().fact_count(), facts_before + 3);
  EXPECT_EQ(pinned->Find("sales")->mo().fact_count(), facts_before);
  EXPECT_EQ(Bytes(pinned->Find("sales")->mo()), before);
}

TEST(MoStoreTest, FailedMutationPublishesNothing) {
  MoStore store;
  ASSERT_TRUE(store.Publish("sales", BuildSales()).ok());
  const std::uint64_t epoch = store.epoch();
  Status status = store.Mutate("sales", [](MdObject&) {
    return Status::InvalidArgument("boom");
  });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(store.epoch(), epoch);
  EXPECT_FALSE(store.Mutate("nope", [](MdObject&) { return Status::OK(); })
                   .ok());
}

TEST(MoStoreTest, MutationForksAndPeriodicallyFlattensTheRegistry) {
  MoStore store;
  ASSERT_TRUE(store.Publish("sales", BuildSales()).ok());
  for (int batch = 0; batch < 12; ++batch) {
    ASSERT_TRUE(store
                    .Mutate("sales",
                            [batch](MdObject& draft) {
                              return ApplyBatch(draft, batch);
                            })
                    .ok());
    // Fork chains never exceed the collapse threshold.
    EXPECT_LE(store.Pin()->Find("sales")->mo().registry()->fork_depth(), 8u);
  }
  const MoStore::Stats stats = store.CollectStats();
  EXPECT_EQ(stats.epochs_published, 13u);  // publish + 12 batches
  EXPECT_GE(stats.registry_flattens, 1u);
}

TEST(MoStoreTest, RetiredEpochsAreReclaimedWhenUnpinned) {
  MoStore store;
  ASSERT_TRUE(store.Publish("sales", BuildSales(60)).ok());
  {
    auto pinned = store.Pin();
    for (int batch = 0; batch < 3; ++batch) {
      ASSERT_TRUE(store
                      .Mutate("sales",
                              [batch](MdObject& draft) {
                                return ApplyBatch(draft, batch);
                              })
                      .ok());
    }
    // The pinned epoch (and the current one) are alive; the epochs
    // published between them may or may not be pinned by nobody yet.
    const MoStore::Stats held = store.CollectStats();
    EXPECT_GE(held.live_snapshots, 2u);
  }
  const MoStore::Stats released = store.CollectStats();
  EXPECT_EQ(released.live_snapshots, 1u);  // only the current epoch
  // publish + 3 mutations retired 4 snapshots (incl. the empty epoch 0),
  // all now reclaimed.
  EXPECT_EQ(released.reclaimed_snapshots, 4u);
}

TEST(MoStoreTest, WarmAggregateFailureIsWithdrawn) {
  MoStore store;
  ASSERT_TRUE(store.Publish("sales", BuildSales(60)).ok());
  const std::uint64_t epoch = store.epoch();
  // SUM over dimension 0 (Product) is an illegal aggregation; the spec
  // must not poison later mutations.
  std::vector<CategoryTypeIndex> grouping;
  const MdObject& mo = store.Pin()->Find("sales")->mo();
  for (std::size_t i = 0; i < mo.dimension_count(); ++i) {
    grouping.push_back(mo.dimension(i).type().top());
  }
  EXPECT_FALSE(
      store.WarmAggregate("sales", AggFunction::Sum(0), grouping).ok());
  EXPECT_EQ(store.epoch(), epoch);
  EXPECT_TRUE(store
                  .Mutate("sales",
                          [](MdObject& draft) { return ApplyBatch(draft, 0); })
                  .ok());
}

// The differential hammer (TSan target): one writer publishing B
// mutation batches while reader threads continuously pin and serialize.
// Every reader observation must be byte-identical to the sequential
// replay of the same batches at the observed epoch — i.e. each read sees
// exactly one consistent epoch, never a mix.
TEST(MoStoreConcurrencyTest, ReadersSeeSingleConsistentEpochs) {
  constexpr int kBatches = 6;
  constexpr int kReaders = 4;
  constexpr int kReadsPerReader = 25;

  // Two deterministic replicas of the same workload: one is published,
  // the other replayed sequentially to produce the expected bytes per
  // epoch.
  MoStore store;
  ASSERT_TRUE(store.Publish("sales", BuildSales(120)).ok());
  MdObject replay = BuildSales(120);

  const std::uint64_t base_epoch = store.epoch();
  std::vector<std::string> expected;  // expected[k] = bytes at epoch base+k
  expected.push_back(Bytes(replay));
  for (int batch = 0; batch < kBatches; ++batch) {
    ASSERT_TRUE(ApplyBatch(replay, batch).ok());
    expected.push_back(Bytes(replay));
  }
  // Sanity: the published baseline (sealed, flattened registry) renders
  // the same bytes as the plain replica.
  ASSERT_EQ(Bytes(store.Pin()->Find("sales")->mo()), expected[0]);

  std::vector<std::thread> readers;
  std::vector<int> failures(kReaders, 0);
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&store, &expected, &failures, base_epoch, r] {
      for (int i = 0; i < kReadsPerReader; ++i) {
        const std::shared_ptr<const MoSnapshot> snapshot = store.Pin();
        const std::uint64_t k = snapshot->epoch() - base_epoch;
        if (k >= expected.size()) {
          ++failures[r];
          continue;
        }
        const PublishedMo* entry = snapshot->Find("sales");
        if (entry == nullptr) {
          ++failures[r];
          continue;
        }
        auto bytes = io::WriteMo(entry->mo());
        if (!bytes.ok() || *bytes != expected[k]) ++failures[r];
      }
    });
  }

  for (int batch = 0; batch < kBatches; ++batch) {
    ASSERT_TRUE(store
                    .Mutate("sales",
                            [batch](MdObject& draft) {
                              return ApplyBatch(draft, batch);
                            })
                    .ok());
  }
  for (std::thread& t : readers) t.join();
  for (int r = 0; r < kReaders; ++r) {
    EXPECT_EQ(failures[r], 0) << "reader " << r
                              << " observed bytes not matching its epoch";
  }
  EXPECT_EQ(store.epoch(), base_epoch + kBatches);
}

}  // namespace
}  // namespace serve
}  // namespace mddc
