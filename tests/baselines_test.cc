#include <gtest/gtest.h>

#include "baselines/conformance.h"
#include "baselines/data_cube.h"
#include "baselines/star_schema.h"

namespace mddc {
namespace {

using relational::AggregateTerm;
using relational::Relation;
using relational::Value;

Value I(std::int64_t v) { return Value(v); }
Value S(std::string v) { return Value(std::move(v)); }

StarSchemaEngine BuildClinicalStar() {
  StarSchemaEngine engine;
  Relation diagnosis({"diag_key", "low", "family", "grp"});
  (void)diagnosis.Insert({I(1), S("5"), S("4"), S("12")});
  (void)diagnosis.Insert({I(2), S("5"), S("9"), S("11")});
  (void)diagnosis.Insert({I(3), S("6"), S("10"), S("11")});
  (void)engine.AddDimensionTable("Diagnosis", std::move(diagnosis),
                                 "diag_key");
  Relation fact({"patient", "diag_fk"});
  (void)fact.Insert({I(2), I(2)});
  (void)fact.Insert({I(2), I(3)});
  (void)fact.Insert({I(1), I(2)});
  (void)engine.SetFactTable(std::move(fact), {{"Diagnosis", "diag_fk"}});
  return engine;
}

TEST(StarSchemaTest, JoinedViewDenormalizes) {
  StarSchemaEngine engine = BuildClinicalStar();
  auto view = engine.JoinedView({"Diagnosis"});
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->size(), 3u);
  EXPECT_TRUE(view->AttributeIndex("grp").ok());
}

TEST(StarSchemaTest, DoubleCountsManyToManyPatients) {
  // The defining failure mode: group 11 has two *patients* but three
  // fact rows, so COUNT(*) reports 3.
  StarSchemaEngine engine = BuildClinicalStar();
  auto counts = engine.AggregateByLevel(
      "Diagnosis", "grp", {AggregateTerm::Func::kCountStar, "", "n"});
  ASSERT_TRUE(counts.ok());
  EXPECT_TRUE(counts->Contains({S("11"), I(3)}));  // wrong answer, by design
  // COUNT(DISTINCT patient) repairs counting but not additive measures.
  auto distinct = engine.AggregateByLevel(
      "Diagnosis", "grp",
      {AggregateTerm::Func::kCountDistinct, "patient", "n"});
  ASSERT_TRUE(distinct.ok());
  EXPECT_TRUE(distinct->Contains({S("11"), I(2)}));
}

TEST(StarSchemaTest, RegistrationValidation) {
  StarSchemaEngine engine;
  Relation dim({"key"});
  EXPECT_FALSE(engine.AddDimensionTable("D", dim, "nope").ok());
  ASSERT_TRUE(engine.AddDimensionTable("D", dim, "key").ok());
  EXPECT_FALSE(engine.AddDimensionTable("D", dim, "key").ok());
  Relation fact({"fk"});
  EXPECT_FALSE(engine.SetFactTable(fact, {{"Missing", "fk"}}).ok());
  EXPECT_FALSE(engine.SetFactTable(fact, {{"D", "nope"}}).ok());
  EXPECT_TRUE(engine.SetFactTable(fact, {{"D", "fk"}}).ok());
  EXPECT_FALSE(engine.dimension_table("X").ok());
  EXPECT_TRUE(engine.dimension_table("D").ok());
}

TEST(StarSchemaTest, ScdType2AsOf) {
  StarSchemaEngine engine;
  Relation diagnosis({"diag_key", "code", "ValidFrom", "ValidTo"});
  (void)diagnosis.Insert({I(8), S("D1"), I(100), I(200)});
  (void)diagnosis.Insert({I(11), S("E1"), I(201), I(999)});
  (void)engine.AddDimensionTable("Diagnosis", std::move(diagnosis),
                                 "diag_key");
  auto old_version = engine.DimensionAsOf("Diagnosis", 150);
  ASSERT_TRUE(old_version.ok());
  ASSERT_EQ(old_version->size(), 1u);
  EXPECT_TRUE(old_version->tuples()[0][1] == S("D1"));
  auto new_version = engine.DimensionAsOf("Diagnosis", 300);
  ASSERT_TRUE(new_version.ok());
  EXPECT_TRUE(new_version->tuples()[0][1] == S("E1"));
  // A dimension without validity columns returns everything.
  Relation plain({"k", "v"});
  (void)plain.Insert({I(1), S("x")});
  (void)engine.AddDimensionTable("Plain", std::move(plain), "k");
  auto all = engine.DimensionAsOf("Plain", 0);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 1u);
}

TEST(DataCubeTest, CubeProducesAllCombinations) {
  Relation r({"product", "region", "amount"});
  (void)r.Insert({S("apples"), S("North"), I(10)});
  (void)r.Insert({S("apples"), S("South"), I(20)});
  (void)r.Insert({S("pears"), S("North"), I(5)});
  auto cube =
      Cube(r, {"product", "region"},
           {AggregateTerm::Func::kSum, "amount", "total"});
  ASSERT_TRUE(cube.ok());
  // (product,region): 3 rows; (product,ALL): 2; (ALL,region): 2;
  // (ALL,ALL): 1.
  EXPECT_EQ(cube->size(), 8u);
  EXPECT_TRUE(cube->Contains({S("apples"), AllValue(), Value(30.0)}));
  EXPECT_TRUE(cube->Contains({AllValue(), S("North"), Value(15.0)}));
  EXPECT_TRUE(cube->Contains({AllValue(), AllValue(), Value(35.0)}));
}

TEST(DataCubeTest, RollUpIsOneNestingOrder) {
  Relation r({"a", "b", "v"});
  (void)r.Insert({S("x"), S("p"), I(1)});
  (void)r.Insert({S("x"), S("q"), I(2)});
  (void)r.Insert({S("y"), S("p"), I(4)});
  auto rolled =
      RollUpCube(r, {"a", "b"}, {AggregateTerm::Func::kSum, "v", "total"});
  ASSERT_TRUE(rolled.ok());
  // (a,b): 3 rows, (a,ALL): 2, (ALL,ALL): 1 — but NOT (ALL,b).
  EXPECT_EQ(rolled->size(), 6u);
  EXPECT_TRUE(rolled->Contains({S("x"), AllValue(), Value(3.0)}));
  EXPECT_FALSE(rolled->Contains({AllValue(), S("p"), Value(5.0)}));
  EXPECT_TRUE(rolled->Contains({AllValue(), AllValue(), Value(7.0)}));
}

TEST(DataCubeTest, AllValueMarker) {
  EXPECT_TRUE(IsAllValue(AllValue()));
  EXPECT_FALSE(IsAllValue(S("all")));
  EXPECT_FALSE(IsAllValue(I(1)));
}

TEST(ConformanceTest, PublishedTableHasEightModels) {
  auto rows = PublishedTable2();
  ASSERT_EQ(rows.size(), 8u);
  // Prose cross-checks from the paper: requirement 5 is partially
  // supported by exactly three models; requirement 7 only partially by
  // Kimball; requirements 6, 8, 9 by none.
  int req5_partial = 0;
  for (const ModelRow& row : rows) {
    if (row.support[4] == Support::kPartial) ++req5_partial;
    EXPECT_EQ(row.support[5], Support::kNone) << row.name;
    EXPECT_EQ(row.support[7], Support::kNone) << row.name;
    EXPECT_EQ(row.support[8], Support::kNone) << row.name;
    if (row.name != "Kimball [3]") {
      EXPECT_NE(row.support[6], Support::kPartial) << row.name;
    }
  }
  EXPECT_EQ(req5_partial, 3);
}

TEST(ConformanceTest, ExtendedModelSatisfiesAllNine) {
  ModelRow row = ProbeExtendedModel();
  for (std::size_t i = 0; i < kRequirementCount; ++i) {
    EXPECT_EQ(row.support[i], Support::kFull)
        << "requirement " << i + 1 << " ("
        << RequirementName(static_cast<Requirement>(i))
        << "): " << row.evidence[i];
  }
}

TEST(ConformanceTest, StarSchemaProbeMatchesKimballRow) {
  ModelRow probed = ProbeStarSchemaBaseline();
  EXPECT_TRUE(MatchesPublishedRow(probed, "Kimball [3]"))
      << RenderTable2({probed});
}

TEST(ConformanceTest, DataCubeProbeMatchesGrayRow) {
  ModelRow probed = ProbeDataCubeBaseline();
  EXPECT_TRUE(MatchesPublishedRow(probed, "Gray [2]"))
      << RenderTable2({probed});
}

TEST(ConformanceTest, RenderedTableShowsSymbols) {
  std::vector<ModelRow> rows = PublishedTable2();
  rows.push_back(ProbeExtendedModel());
  std::string table = RenderTable2(rows);
  EXPECT_NE(table.find("Rafanelli"), std::string::npos);
  EXPECT_NE(table.find("This paper"), std::string::npos);
  EXPECT_NE(table.find('V'), std::string::npos);
  EXPECT_NE(table.find('p'), std::string::npos);
  EXPECT_NE(table.find('-'), std::string::npos);
}

TEST(ConformanceTest, RequirementNamesAndSymbols) {
  EXPECT_EQ(RequirementName(Requirement::kNonStrictHierarchies),
            "non-strict hierarchies");
  EXPECT_EQ(SupportSymbol(Support::kFull), 'V');
  EXPECT_EQ(SupportSymbol(Support::kPartial), 'p');
  EXPECT_EQ(SupportSymbol(Support::kNone), '-');
}

}  // namespace
}  // namespace mddc
