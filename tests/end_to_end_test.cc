#include <gtest/gtest.h>

#include "algebra/timeslice.h"
#include "common/date.h"
#include "engine/advisor.h"
#include "engine/preagg_cache.h"
#include "io/serialize.h"
#include "mdql/mdql.h"
#include "workload/clinical_generator.h"

// One full pipeline, the way a downstream study would use the library:
// generate a registry, persist it, reload it elsewhere, query it through
// MDQL (including a timesliced epidemiological question), and set up a
// materialization plan for the recurring queries.

namespace mddc {
namespace {

TEST(EndToEndTest, ClinicalStudyPipeline) {
  // 1. Generate a 300-patient registry with every modeled phenomenon.
  ClinicalWorkloadParams params;
  params.seed = 2026;
  params.num_patients = 300;
  params.num_groups = 4;
  params.non_strict_rate = 0.15;
  params.reclassified_rate = 0.2;
  params.uncertain_rate = 0.1;
  params.coarse_granularity_rate = 0.2;
  auto generated =
      GenerateClinicalWorkload(params, std::make_shared<FactRegistry>());
  ASSERT_TRUE(generated.ok()) << generated.status();

  // 2. Persist and reload (a second site receives the export).
  auto exported = io::WriteMo(generated->mo);
  ASSERT_TRUE(exported.ok()) << exported.status();
  auto registry = std::make_shared<FactRegistry>();
  auto imported = io::ReadMo(*exported, registry);
  ASSERT_TRUE(imported.ok()) << imported.status();
  ASSERT_TRUE(imported->Validate().ok());

  // 3. Query through MDQL: counts per region, and the same question as
  //    of 1975 (before the classification change).
  mdql::Session session;
  ASSERT_TRUE(session.Register("registry", *imported).ok());
  auto by_region = session.Execute(
      "SELECT COUNT FROM registry BY Residence.Region");
  ASSERT_TRUE(by_region.ok()) << by_region.status();
  ASSERT_EQ(by_region->rows.size(), 2u);  // two generated regions
  double total = 0.0;
  for (const auto& row : by_region->rows) {
    total += std::strtod(row[1].c_str(), nullptr);
  }
  // Every patient lives somewhere; a patient never lives in two regions
  // simultaneously here but may have relocated within one.
  EXPECT_GE(total, 300.0);

  auto in_1975 = session.Execute(
      "SELECT COUNT FROM registry BY Residence.Region ASOF '15/06/1975'");
  ASSERT_TRUE(in_1975.ok()) << in_1975.status();

  // 4. The recurring study queries get a materialization plan; replaying
  //    them against the advised cache never rescans the base.
  MaterializationAdvisor advisor(*imported, AggFunction::SetCount());
  auto grouping_at = [&](std::size_t dim, CategoryTypeIndex category) {
    std::vector<CategoryTypeIndex> grouping;
    for (std::size_t i = 0; i < imported->dimension_count(); ++i) {
      grouping.push_back(i == dim ? category
                                  : imported->dimension(i).type().top());
    }
    return grouping;
  };
  std::size_t residence_dim = *imported->FindDimension("Residence");
  std::size_t diagnosis_dim = *imported->FindDimension("Diagnosis");
  CategoryTypeIndex county =
      *imported->dimension(residence_dim).type().Find("County");
  CategoryTypeIndex region =
      *imported->dimension(residence_dim).type().Find("Region");
  CategoryTypeIndex group =
      *imported->dimension(diagnosis_dim).type().Find("Diagnosis Group");
  std::vector<AdvisorQuery> study_queries = {
      {grouping_at(residence_dim, county), 6.0},
      {grouping_at(residence_dim, region), 3.0},
      {grouping_at(diagnosis_dim, group), 4.0},
  };
  auto plan = advisor.Advise(study_queries, 2);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_LT(plan->cost_with, plan->cost_without);

  PreAggregateCache cache(*imported);
  ASSERT_TRUE(advisor.Apply(*plan, &cache).ok());
  cache.ResetStats();
  for (const AdvisorQuery& query : study_queries) {
    ASSERT_TRUE(cache.Query(AggFunction::SetCount(), query.grouping).ok());
  }
  // Relocated patients lived in two counties over time, so the
  // county-level patient counts overlap (c-typed) and must NOT be merged
  // into region counts — the region query rescans the base while the
  // materialized queries hit. This is the safety system doing its job on
  // real temporal data.
  EXPECT_EQ(cache.stats().exact_hits, 2u);
  EXPECT_EQ(cache.stats().base_scans, 1u);
  EXPECT_GE(cache.stats().reuse_refusals, 1u);
  // And the safe plan really is what the advisor predicted: it never
  // claimed the county -> region rollup.
  EXPECT_FALSE(advisor.CanAnswerFrom(grouping_at(residence_dim, county),
                                     grouping_at(residence_dim, region)));

  // 5. The timeslice view of the registry is itself a valid MO a site
  //    could re-export.
  auto sliced = ValidTimeslice(*imported, *ParseDate("15/06/85"));
  ASSERT_TRUE(sliced.ok()) << sliced.status();
  auto re_exported = io::WriteMo(*sliced);
  ASSERT_TRUE(re_exported.ok());
  auto re_imported = io::ReadMo(*re_exported,
                                std::make_shared<FactRegistry>());
  ASSERT_TRUE(re_imported.ok()) << re_imported.status();
  EXPECT_EQ(re_imported->fact_count(), sliced->fact_count());
}

}  // namespace
}  // namespace mddc
