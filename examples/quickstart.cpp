// Quickstart: build a small multidimensional object, query it, aggregate
// it. Walks the core API end to end in ~100 lines.
//
//   $ ./examples/quickstart

#include <cstdlib>
#include <iostream>

#include "algebra/derived.h"
#include "algebra/operators.h"
#include "core/md_object.h"

namespace {

using namespace mddc;  // example code; library code never does this

void CheckOk(const Status& status) {
  if (!status.ok()) {
    std::cerr << "error: " << status << "\n";
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result) {
  if (!result.ok()) {
    std::cerr << "error: " << result.status() << "\n";
    std::exit(1);
  }
  return std::move(result).ValueOrDie();
}

}  // namespace

int main() {
  // 1. Declare a dimension type: a lattice of category types. A TOP
  //    category (the ALL level) is added automatically.
  DimensionTypeBuilder product_builder("Product");
  product_builder.AddCategory("Product")
      .AddCategory("Category")
      .AddOrder("Product", "Category");
  auto product_type = Unwrap(product_builder.Build());

  DimensionTypeBuilder amount_builder("Amount");
  // Sigma: amounts can be summed (and averaged, counted, min/maxed).
  amount_builder.AddCategory("Amount", AggregationType::kSum);
  auto amount_type = Unwrap(amount_builder.Build());

  // 2. Populate dimensions: values are surrogates; names and numbers
  //    attach through representations.
  Dimension product(product_type);
  CategoryTypeIndex product_cat = *product_type->Find("Product");
  CategoryTypeIndex category_cat = *product_type->Find("Category");
  Representation& product_names =
      product.RepresentationFor(product_cat, "Name");
  Representation& category_names =
      product.RepresentationFor(category_cat, "Name");
  CheckOk(product.AddValue(category_cat, ValueId(100)));
  CheckOk(category_names.Set(ValueId(100), "fruit"));
  for (std::uint64_t i = 0; i < 3; ++i) {
    CheckOk(product.AddValue(product_cat, ValueId(i)));
    CheckOk(product_names.Set(
        ValueId(i), i == 0 ? "apple" : (i == 1 ? "pear" : "plum")));
    CheckOk(product.AddOrder(ValueId(i), ValueId(100)));
  }

  Dimension amount(amount_type);
  CategoryTypeIndex amount_cat = amount_type->bottom();
  Representation& amount_values =
      amount.RepresentationFor(amount_cat, "Value");
  for (std::uint64_t v = 1; v <= 10; ++v) {
    CheckOk(amount.AddValue(amount_cat, ValueId(1000 + v)));
    CheckOk(amount_values.Set(ValueId(1000 + v), std::to_string(v)));
  }

  // 3. Build the MO: facts are purchases, characterized in both
  //    dimensions (fact-dimension relations are many-to-many in general).
  auto registry = std::make_shared<FactRegistry>();
  MdObject purchases("Purchase", {product, amount}, registry);
  struct Row {
    std::uint64_t purchase, product, amount;
  };
  for (const Row& row : {Row{1, 0, 3}, Row{2, 0, 5}, Row{3, 1, 2},
                         Row{4, 2, 7}, Row{5, 1, 4}}) {
    FactId fact = registry->Atom(row.purchase);
    CheckOk(purchases.AddFact(fact));
    CheckOk(purchases.Relate(0, fact, ValueId(row.product)));
    CheckOk(purchases.Relate(1, fact, ValueId(1000 + row.amount)));
  }
  CheckOk(purchases.Validate());
  std::cout << purchases.ToString() << "\n";

  // 4. Select: purchases of apples (value 0), via the algebra.
  MdObject apples =
      Unwrap(Select(purchases, Predicate::CharacterizedBy(0, ValueId(0))));
  std::cout << "Purchases of apples: " << apples.fact_count() << "\n";

  // 5. Aggregate: SUM(amount) per product category (SQL-like view).
  auto rows = Unwrap(SqlAggregate(
      purchases, {SqlGroupBy{0, category_cat, "Name"}}, AggFunction::Sum(1)));
  for (const SqlRow& row : rows) {
    std::cout << "category " << row.group[0] << ": total amount "
              << row.value << "\n";
  }

  // 6. The aggregation-type guard: averaging product ids is meaningless
  //    and rejected.
  AggregateSpec bad{AggFunction::Avg(0),
                    {category_cat, amount_type->top()},
                    ResultDimensionSpec::Auto(),
                    kNowChronon,
                    true};
  auto rejected = AggregateFormation(purchases, bad);
  std::cout << "AVG over products: " << rejected.status() << "\n";
  return 0;
}
