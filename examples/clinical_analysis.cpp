// The paper's clinical case study end to end: load the Table 1 data as a
// six-dimensional Patient MO, reproduce the tables from the model, and
// run the analyses the paper motivates — do some diagnoses occur more
// often in some areas than in others?
//
//   $ ./examples/clinical_analysis

#include <cstdlib>
#include <iostream>

#include "algebra/derived.h"
#include "algebra/operators.h"
#include "common/date.h"
#include "core/properties.h"
#include "workload/case_study.h"
#include "workload/clinical_generator.h"

namespace {

using namespace mddc;

template <typename T>
T Unwrap(Result<T> result) {
  if (!result.ok()) {
    std::cerr << "error: " << result.status() << "\n";
    std::exit(1);
  }
  return std::move(result).ValueOrDie();
}

}  // namespace

int main() {
  CaseStudy cs = Unwrap(BuildCaseStudy());

  std::cout << "== Table 1, re-derived from the Patient MO ==\n\n";
  std::cout << "Patient Table\n" << Unwrap(RenderPatientTable(cs)) << "\n";
  std::cout << "Has Table\n" << Unwrap(RenderHasTable(cs)) << "\n";
  std::cout << "Diagnosis Table\n" << Unwrap(RenderDiagnosisTable(cs))
            << "\n";
  std::cout << "Grouping Table\n" << Unwrap(RenderGroupingTable(cs)) << "\n";

  std::cout << "== Example 12: patients per diagnosis group ==\n";
  CategoryTypeIndex group =
      *cs.mo.dimension(cs.diagnosis).type().Find("Diagnosis Group");
  auto per_group = Unwrap(SqlAggregate(
      cs.mo, {SqlGroupBy{cs.diagnosis, group, "Code"}},
      AggFunction::SetCount()));
  for (const SqlRow& row : per_group) {
    std::cout << "  group " << row.group[0] << ": " << row.value
              << " patient(s)\n";
  }
  std::cout << "  (patient 2 has several diagnoses in group E1 but counts "
               "once)\n\n";

  std::cout << "== Diagnoses by area (the motivating analysis) ==\n";
  CategoryTypeIndex area =
      *cs.mo.dimension(cs.residence).type().Find("Area");
  auto by_area = Unwrap(SqlAggregate(
      cs.mo, {SqlGroupBy{cs.residence, area, "Name"}},
      AggFunction::SetCount()));
  for (const SqlRow& row : by_area) {
    std::cout << "  " << row.group[0] << ": " << row.value
              << " patient(s)\n";
  }

  std::cout << "\n== Drill-down: diagnosis families per county ==\n";
  CategoryTypeIndex family =
      *cs.mo.dimension(cs.diagnosis).type().Find("Diagnosis Family");
  CategoryTypeIndex county =
      *cs.mo.dimension(cs.residence).type().Find("County");
  auto drill = Unwrap(SqlAggregate(
      cs.mo,
      {SqlGroupBy{cs.diagnosis, family, "Code"},
       SqlGroupBy{cs.residence, county, "Name"}},
      AggFunction::SetCount()));
  for (const SqlRow& row : drill) {
    std::cout << "  family " << row.group[0] << " in " << row.group[1]
              << ": " << row.value << "\n";
  }

  std::cout << "\n== Hierarchy properties (Example 11) ==\n";
  std::cout << "  Residence strict:        "
            << (IsStrict(cs.mo.dimension(cs.residence)) ? "yes" : "no")
            << "\n";
  std::cout << "  Diagnosis strict:        "
            << (IsStrict(cs.mo.dimension(cs.diagnosis)) ? "yes" : "no")
            << "\n";
  std::cout << "  Diagnosis partitioning@99: "
            << (IsPartitioningAt(cs.mo.dimension(cs.diagnosis),
                                 *ParseDate("01/06/99"))
                    ? "yes"
                    : "no")
            << "\n";

  std::cout << "\n== Scaling up: synthetic registry (1000 patients) ==\n";
  ClinicalWorkloadParams params;
  params.num_patients = 1000;
  params.num_groups = 8;
  ClinicalMo big = Unwrap(
      GenerateClinicalWorkload(params, std::make_shared<FactRegistry>()));
  auto region_counts = Unwrap(RollUp(big.mo, big.residence_dim, big.region,
                                     AggFunction::SetCount()));
  std::cout << "  " << big.mo.fact_count() << " patients, "
            << big.mo.relation(0).size() << " diagnosis registrations, "
            << big.mo.dimension(0).value_count() << " diagnosis values\n";
  std::cout << "  patients per region: " << region_counts.fact_count()
            << " groups computed\n";
  return 0;
}
