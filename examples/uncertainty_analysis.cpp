// Uncertainty in the model (requirement 8): physicians attach confidence
// to diagnoses; queries threshold on probability and report expected
// counts and full count distributions.
//
//   $ ./examples/uncertainty_analysis

#include <cstdlib>
#include <iostream>

#include "algebra/operators.h"
#include "uncertainty/probability.h"
#include "workload/case_study.h"
#include "workload/clinical_generator.h"

namespace {

using namespace mddc;

template <typename T>
T Unwrap(Result<T> result) {
  if (!result.ok()) {
    std::cerr << "error: " << result.status() << "\n";
    std::exit(1);
  }
  return std::move(result).ValueOrDie();
}

}  // namespace

int main() {
  // A small cohort: physicians are not always certain. (f,e) in_p R.
  CaseStudy cs = Unwrap(BuildCaseStudy());
  MdObject cohort("Patient", {cs.mo.dimension(cs.diagnosis)}, cs.registry,
                  TemporalType::kSnapshot);
  struct Entry {
    std::uint64_t patient;
    std::uint64_t diagnosis;
    double prob;
  };
  for (const Entry& e : {Entry{10, 9, 1.0}, Entry{11, 9, 0.9},
                         Entry{12, 9, 0.6}, Entry{13, 10, 0.8},
                         Entry{14, 5, 0.95}}) {
    FactId fact = cs.registry->Atom(e.patient);
    (void)cohort.AddFact(fact);
    if (Status s = cohort.Relate(0, fact, ValueId(e.diagnosis),
                                 Lifespan::AlwaysSpan(), e.prob);
        !s.ok()) {
      std::cerr << s << "\n";
      return 1;
    }
  }

  std::cout << "== Probability-threshold selection ==\n";
  for (double threshold : {0.5, 0.8, 0.95}) {
    MdObject selected = Unwrap(Select(
        cohort, Predicate::MinProbability(0, ValueId(9), threshold)));
    std::cout << "  patients with P(insulin-dep. diabetes) >= " << threshold
              << ": " << selected.fact_count() << "\n";
  }

  std::cout << "\n== Derived uncertainty through the hierarchy ==\n";
  // Diagnosis 5 <= family 9 <= group 11; an 0.95-certain diagnosis 5
  // yields an 0.95-certain group-11 characterization.
  FactId p14 = cs.registry->Atom(14);
  for (const auto& c : cohort.CharacterizedBy(p14, 0)) {
    if (c.value == ValueId(11)) {
      std::cout << "  P(patient 14 in group E1) = " << c.prob << "\n";
    }
  }

  std::cout << "\n== Expected counts per diagnosis group ==\n";
  // Collect group-11 membership probabilities over the cohort and report
  // expectation and full distribution (Poisson binomial).
  std::vector<double> probabilities;
  for (FactId fact : cohort.facts()) {
    for (const auto& c : cohort.CharacterizedBy(fact, 0)) {
      if (c.value == ValueId(11)) probabilities.push_back(c.prob);
    }
  }
  std::cout << "  membership probabilities:";
  for (double p : probabilities) std::cout << " " << p;
  std::cout << "\n  expected count = " << ExpectedCount(probabilities)
            << "\n";
  std::vector<double> distribution = CountDistribution(probabilities);
  for (std::size_t k = 0; k < distribution.size(); ++k) {
    std::cout << "  P(count = " << k << ") = " << distribution[k] << "\n";
  }

  std::cout << "\n== At scale: uncertain synthetic registry ==\n";
  ClinicalWorkloadParams params;
  params.num_patients = 500;
  params.num_groups = 5;
  params.uncertain_rate = 0.3;
  ClinicalMo big = Unwrap(
      GenerateClinicalWorkload(params, std::make_shared<FactRegistry>()));
  std::size_t uncertain = 0;
  double expected = 0.0;
  for (const auto& entry : big.mo.relation(0).entries()) {
    if (entry.prob < 1.0) ++uncertain;
    expected += entry.prob;
  }
  std::cout << "  " << big.mo.relation(0).size()
            << " diagnosis registrations, " << uncertain
            << " uncertain; expected total registrations = " << expected
            << "\n";
  return 0;
}
