// Temporal analysis with the model: view the clinical data as it was at
// any point in time (valid-timeslice), follow a diagnosis classification
// change (Example 10), and audit corrections with transaction time.
//
//   $ ./examples/temporal_analysis

#include <cstdlib>
#include <iostream>

#include "algebra/operators.h"
#include "algebra/timeslice.h"
#include "common/date.h"
#include "workload/case_study.h"

namespace {

using namespace mddc;

template <typename T>
T Unwrap(Result<T> result) {
  if (!result.ok()) {
    std::cerr << "error: " << result.status() << "\n";
    std::exit(1);
  }
  return std::move(result).ValueOrDie();
}

Chronon Day(const char* text) { return Unwrap(ParseDate(text)); }

void DescribeSlice(const MdObject& slice, const char* when) {
  const Dimension& diagnosis = slice.dimension(0);
  std::cout << "  " << when << ": " << slice.fact_count()
            << " patient(s) with diagnoses; classification has "
            << diagnosis.value_count() - 1 << " diagnosis values\n";
}

}  // namespace

int main() {
  CaseStudy cs = Unwrap(BuildCaseStudy());

  std::cout << "== Valid-timeslices of the Patient MO ==\n";
  // 1975: the old classification (P11, P1, D1); patient 1 not yet ill.
  MdObject in_75 = Unwrap(ValidTimeslice(cs.mo, Day("15/06/75")));
  DescribeSlice(in_75, "15/06/1975");
  // 1985: the new classification (O24, E10, E11, E1, O2).
  MdObject in_85 = Unwrap(ValidTimeslice(cs.mo, Day("15/06/85")));
  DescribeSlice(in_85, "15/06/1985");
  // 1999: both patients current.
  MdObject in_99 = Unwrap(ValidTimeslice(cs.mo, Day("01/06/99")));
  DescribeSlice(in_99, "01/06/1999");

  std::cout << "\n== Example 10: analysis across the 1980 re-coding ==\n";
  // Patient 2 was diagnosed with the *old* Diabetes family (8) in the
  // 70s. The user-defined bridge 8 <= 11 (valid from 1980) makes that
  // history count toward the *new* Diabetes group 11.
  FactId p2 = cs.registry->Atom(2);
  Lifespan in_group_11 =
      cs.mo.CharacterizationSpan(p2, cs.diagnosis, ValueId(11));
  std::cout << "  patient 2 counts toward new group E1 during: "
            << in_group_11.valid.ToString() << "\n";
  std::cout << "  (via old D1 from 1980-1981, via new E10 from 1982)\n";

  std::cout << "\n== Bitemporal audit: correcting a diagnosis period ==\n";
  // A bitemporal MO records *when the database believed what*. The pair
  // (p1, 9) was recorded on 05/01/89 as valid from 01/01/89; on
  // 01/06/90 the onset was corrected to 01/03/89.
  auto registry = std::make_shared<FactRegistry>();
  CaseStudy fresh = Unwrap(BuildCaseStudy());
  MdObject audit("Patient", {fresh.mo.dimension(fresh.diagnosis)},
                 fresh.registry, TemporalType::kBitemporal);
  FactId p1 = fresh.registry->Atom(1);
  (void)audit.AddFact(p1);
  Chronon recorded = Day("05/01/89");
  Chronon corrected = Day("01/06/90");
  (void)audit.Relate(
      0, p1, ValueId(9),
      Lifespan{TemporalElement(Interval(Day("01/01/89"), kNowChronon)),
               TemporalElement(Interval(recorded, corrected - 1))});
  (void)audit.Relate(
      0, p1, ValueId(9),
      Lifespan{TemporalElement(Interval(Day("01/03/89"), kNowChronon)),
               TemporalElement(Interval(corrected, kNowChronon))});

  for (auto [label, at] :
       {std::pair<const char*, Chronon>{"as recorded in 1989", recorded},
        {"after the 1990 correction", corrected}}) {
    MdObject as_of = Unwrap(TransactionTimeslice(audit, at));
    auto pairs = as_of.relation(0).ForFact(p1);
    std::cout << "  " << label << ": diagnosis valid "
              << pairs.front()->life.valid.ToString() << "\n";
  }

  std::cout << "\n== Counting per group at different times ==\n";
  CategoryTypeIndex group =
      *cs.mo.dimension(cs.diagnosis).type().Find("Diagnosis Group");
  for (auto [label, at] :
       {std::pair<const char*, Chronon>{"1985", Day("15/06/85")},
        {"1999", Day("01/06/99")}}) {
    MdObject slice = Unwrap(ValidTimeslice(cs.mo, at));
    AggregateSpec spec{AggFunction::SetCount(), {}, ResultDimensionSpec::Auto(),
                       kNowChronon, true};
    for (std::size_t i = 0; i < slice.dimension_count(); ++i) {
      spec.grouping.push_back(i == cs.diagnosis
                                  ? group
                                  : slice.dimension(i).type().top());
    }
    MdObject counted = Unwrap(AggregateFormation(slice, spec));
    std::cout << "  " << label << ": " << counted.fact_count()
              << " non-empty diagnosis group(s)\n";
  }
  return 0;
}
