// MDQL in action: register the case study and a synthetic retail cube in
// one session and query them textually — including schema navigation
// (SHOW), temporal queries (ASOF) and probabilistic thresholds (PROB).
//
//   $ ./examples/mdql_demo

#include <cstdlib>
#include <iostream>

#include "mdql/mdql.h"
#include "workload/case_study.h"
#include "workload/retail_generator.h"

namespace {

using namespace mddc;

void Run(mdql::Session& session, const std::string& query) {
  std::cout << "mdql> " << query << "\n";
  auto result = session.Execute(query);
  if (!result.ok()) {
    std::cout << "error: " << result.status() << "\n\n";
    return;
  }
  std::cout << result->ToString() << "\n";
}

}  // namespace

int main() {
  mdql::Session session;

  auto cs = BuildCaseStudy();
  if (!cs.ok()) {
    std::cerr << cs.status() << "\n";
    return 1;
  }
  (void)session.Register("patients", cs->mo);

  RetailWorkloadParams params;
  params.num_purchases = 2000;
  auto retail =
      GenerateRetailWorkload(params, std::make_shared<FactRegistry>());
  if (!retail.ok()) {
    std::cerr << retail.status() << "\n";
    return 1;
  }
  (void)session.Register("sales", retail->mo);

  // Schema navigation: the lattice at the user's fingertips (the paper's
  // future-work UI idea).
  Run(session, "SHOW DIMENSIONS FROM patients");
  Run(session, "SHOW HIERARCHY Diagnosis FROM patients");
  Run(session, "SHOW PATHS \"Date of Birth\" FROM patients");

  // Example 12 as a one-liner.
  Run(session,
      "SELECT COUNT FROM patients BY Diagnosis.\"Diagnosis Group\" AS Code");

  // The motivating analysis: counts by area, restricted and timesliced.
  Run(session, "SELECT COUNT FROM patients BY Residence.Area AS Name");
  Run(session, "SELECT COUNT FROM patients ASOF '15/06/1975'");
  Run(session,
      "SELECT COUNT FROM patients WHERE Name.Name = 'Jane Doe'");

  // Retail: several aggregates over one grouping.
  Run(session,
      "SELECT COUNT, SUM(Amount), AVG(Price) FROM sales "
      "BY Product.Department AS Name");
  Run(session,
      "SELECT SUM(Amount) FROM sales BY Store.Region AS Name "
      "WHERE Price >= 400");

  // The aggregation-type guard surfaces through the language too.
  Run(session, "SELECT SUM(Diagnosis) FROM patients");
  return 0;
}
