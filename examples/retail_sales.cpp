// The introduction's retail scenario: purchases characterized by product,
// store, date, amount and price — with amount and price as *dimensions*
// (the model's symmetric view), a pre-aggregation cache with
// summarizability-guided reuse, and a comparison against the star-schema
// baseline.
//
//   $ ./examples/retail_sales

#include <cstdlib>
#include <iostream>

#include "algebra/derived.h"
#include "baselines/star_schema.h"
#include "engine/advisor.h"
#include "engine/preagg_cache.h"
#include "workload/retail_generator.h"

namespace {

using namespace mddc;

template <typename T>
T Unwrap(Result<T> result) {
  if (!result.ok()) {
    std::cerr << "error: " << result.status() << "\n";
    std::exit(1);
  }
  return std::move(result).ValueOrDie();
}

std::vector<CategoryTypeIndex> GroupingAt(const MdObject& mo,
                                          std::size_t dim,
                                          CategoryTypeIndex category) {
  std::vector<CategoryTypeIndex> grouping;
  for (std::size_t i = 0; i < mo.dimension_count(); ++i) {
    grouping.push_back(i == dim ? category : mo.dimension(i).type().top());
  }
  return grouping;
}

}  // namespace

int main() {
  RetailWorkloadParams params;
  params.num_purchases = 5000;
  RetailMo retail = Unwrap(
      GenerateRetailWorkload(params, std::make_shared<FactRegistry>()));
  std::cout << "Generated " << retail.mo.fact_count() << " purchases over "
            << params.num_products << " products and " << params.num_stores
            << " stores.\n\n";

  std::cout << "== SUM(amount) by region ==\n";
  auto by_region = Unwrap(SqlAggregate(
      retail.mo, {SqlGroupBy{retail.store_dim, retail.region, "Name"}},
      AggFunction::Sum(retail.amount_dim)));
  for (const SqlRow& row : by_region) {
    std::cout << "  " << row.group[0] << ": " << row.value << "\n";
  }

  std::cout << "\n== AVG(price) by department ==\n";
  auto by_department = Unwrap(SqlAggregate(
      retail.mo, {SqlGroupBy{retail.product_dim, retail.department, "Name"}},
      AggFunction::Avg(retail.price_dim)));
  for (const SqlRow& row : by_department) {
    std::cout << "  department " << row.group[0] << ": " << row.value
              << "\n";
  }

  std::cout << "\n== Pre-aggregation cache ==\n";
  PreAggregateCache cache(retail.mo);
  // Materialize at Category level; Department and grand total then reuse
  // the category partials instead of rescanning 5000 purchases.
  (void)cache.Materialize(
      AggFunction::Sum(retail.amount_dim),
      GroupingAt(retail.mo, retail.product_dim, retail.category));
  (void)cache.Query(AggFunction::Sum(retail.amount_dim),
                    GroupingAt(retail.mo, retail.product_dim,
                               retail.department));
  (void)cache.Query(
      AggFunction::Sum(retail.amount_dim),
      GroupingAt(retail.mo, retail.product_dim,
                 retail.mo.dimension(retail.product_dim).type().top()));
  std::cout << "  base scans:   " << cache.stats().base_scans << "\n";
  std::cout << "  rollup reuse: " << cache.stats().rollup_hits << "\n";

  std::cout << "\n== Materialization advisor ==\n";
  MaterializationAdvisor advisor(retail.mo,
                                 AggFunction::Sum(retail.amount_dim));
  std::vector<AdvisorQuery> workload = {
      {GroupingAt(retail.mo, retail.product_dim, retail.category), 10.0},
      {GroupingAt(retail.mo, retail.product_dim, retail.department), 4.0},
      {GroupingAt(retail.mo, retail.store_dim, retail.region), 4.0},
      {GroupingAt(retail.mo, retail.store_dim, retail.city), 2.0},
  };
  AdvisorPlan plan = Unwrap(advisor.Advise(workload, 2));
  std::cout << plan.ToString(retail.mo);
  PreAggregateCache advised(retail.mo);
  (void)advisor.Apply(plan, &advised);
  advised.ResetStats();
  for (const AdvisorQuery& query : workload) {
    (void)advised.Query(AggFunction::Sum(retail.amount_dim),
                        query.grouping);
  }
  std::cout << "  replay: " << advised.stats().exact_hits << " exact hits, "
            << advised.stats().rollup_hits << " rollup reuses, "
            << advised.stats().base_scans << " base scans\n";

  std::cout << "\n== Star-schema baseline comparison ==\n";
  // A purchase of a product that sits in two promotional categories would
  // double count in a star schema; our model counts it once. Build a tiny
  // demonstration.
  StarSchemaEngine star;
  relational::Relation product({"key", "name", "category"});
  (void)product.Insert({relational::Value(std::int64_t{1}),
                        relational::Value(std::string("gift box")),
                        relational::Value(std::string("food"))});
  (void)product.Insert({relational::Value(std::int64_t{2}),
                        relational::Value(std::string("gift box")),
                        relational::Value(std::string("gifts"))});
  (void)star.AddDimensionTable("Product", std::move(product), "key");
  relational::Relation fact({"purchase", "product_fk", "amount"});
  (void)fact.Insert({relational::Value(std::int64_t{100}),
                     relational::Value(std::int64_t{1}),
                     relational::Value(std::int64_t{5})});
  (void)fact.Insert({relational::Value(std::int64_t{100}),
                     relational::Value(std::int64_t{2}),
                     relational::Value(std::int64_t{5})});
  (void)star.SetFactTable(std::move(fact), {{"Product", "product_fk"}});
  auto star_total = Unwrap(star.AggregateByLevel(
      "Product", "name",
      {relational::AggregateTerm::Func::kSum, "amount", "total"}));
  std::cout << "  star schema total for 'gift box' (true amount 5):\n"
            << star_total.ToString();
  std::cout << "  (the fact row is duplicated per category: classic "
               "double counting the MD model avoids)\n";
  return 0;
}
