// An interactive MDQL shell over the library: query registered MOs, save
// them to .mddc files and load them back.
//
//   $ ./examples/mddc_shell            # starts with 'patients' loaded
//   mddc> SHOW DIMENSIONS FROM patients
//   mddc> SELECT COUNT FROM patients BY Diagnosis."Diagnosis Group"
//   mddc> save patients /tmp/patients.mddc
//   mddc> load copy /tmp/patients.mddc
//   mddc> quit
//
// Also works non-interactively: echo queries into stdin.

#include <iostream>
#include <sstream>
#include <string>

#include "io/serialize.h"
#include "mdql/mdql.h"
#include "workload/case_study.h"

namespace {

using namespace mddc;

/// Splits "cmd name path" into words (path may contain no spaces here;
/// quote-free convenience parsing for the shell's meta commands).
std::vector<std::string> Words(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> words;
  std::string word;
  while (in >> word) words.push_back(word);
  return words;
}

std::string Lower(std::string text) {
  for (char& c : text) c = static_cast<char>(std::tolower(c));
  return text;
}

}  // namespace

int main() {
  mdql::Session session;
  auto registry = std::make_shared<FactRegistry>();

  if (auto cs = BuildCaseStudy(); cs.ok()) {
    (void)session.Register("patients", cs->mo);
    std::cout << "Loaded the ICDE'99 case study as 'patients'.\n";
  }
  std::cout << "MDQL shell — try: SHOW DIMENSIONS FROM patients\n"
            << "Meta commands: load <name> <path>, save <name> <path>, "
               "names, quit\n";

  std::string line;
  while (true) {
    std::cout << "mddc> " << std::flush;
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    std::vector<std::string> words = Words(line);
    std::string command = Lower(words.front());
    if (command == "quit" || command == "exit") break;
    if (command == "names") {
      for (const std::string& name : session.names()) {
        std::cout << "  " << name << "\n";
      }
      continue;
    }
    if (command == "save" || command == "load") {
      if (words.size() != 3) {
        std::cout << "usage: " << command << " <name> <path>\n";
        continue;
      }
      if (command == "save") {
        auto mo = session.Get(words[1]);
        if (!mo.ok()) {
          std::cout << mo.status() << "\n";
          continue;
        }
        Status saved = io::SaveMoToFile(**mo, words[2]);
        std::cout << (saved.ok() ? "saved\n" : saved.ToString() + "\n");
      } else {
        auto loaded = io::LoadMoFromFile(words[2], registry);
        if (!loaded.ok()) {
          std::cout << loaded.status() << "\n";
          continue;
        }
        Status registered = session.Register(words[1], *std::move(loaded));
        std::cout << (registered.ok() ? "loaded\n"
                                      : registered.ToString() + "\n");
      }
      continue;
    }
    auto result = session.Execute(line);
    if (!result.ok()) {
      std::cout << "error: " << result.status() << "\n";
      continue;
    }
    std::cout << result->ToString();
  }
  std::cout << "\n";
  return 0;
}
