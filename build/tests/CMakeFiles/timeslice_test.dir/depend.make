# Empty dependencies file for timeslice_test.
# This may be replaced when dependencies are built.
