# Empty compiler generated dependencies file for preagg_cache_test.
# This may be replaced when dependencies are built.
