file(REMOVE_RECURSE
  "CMakeFiles/preagg_cache_test.dir/preagg_cache_test.cc.o"
  "CMakeFiles/preagg_cache_test.dir/preagg_cache_test.cc.o.d"
  "preagg_cache_test"
  "preagg_cache_test.pdb"
  "preagg_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preagg_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
