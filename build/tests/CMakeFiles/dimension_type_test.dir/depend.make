# Empty dependencies file for dimension_type_test.
# This may be replaced when dependencies are built.
