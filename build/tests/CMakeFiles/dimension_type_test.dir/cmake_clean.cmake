file(REMOVE_RECURSE
  "CMakeFiles/dimension_type_test.dir/dimension_type_test.cc.o"
  "CMakeFiles/dimension_type_test.dir/dimension_type_test.cc.o.d"
  "dimension_type_test"
  "dimension_type_test.pdb"
  "dimension_type_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimension_type_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
