file(REMOVE_RECURSE
  "CMakeFiles/bitemporal_test.dir/bitemporal_test.cc.o"
  "CMakeFiles/bitemporal_test.dir/bitemporal_test.cc.o.d"
  "bitemporal_test"
  "bitemporal_test.pdb"
  "bitemporal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitemporal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
