# Empty dependencies file for bitemporal_test.
# This may be replaced when dependencies are built.
