# Empty dependencies file for temporal_element_test.
# This may be replaced when dependencies are built.
