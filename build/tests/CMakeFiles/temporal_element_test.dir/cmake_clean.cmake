file(REMOVE_RECURSE
  "CMakeFiles/temporal_element_test.dir/temporal_element_test.cc.o"
  "CMakeFiles/temporal_element_test.dir/temporal_element_test.cc.o.d"
  "temporal_element_test"
  "temporal_element_test.pdb"
  "temporal_element_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temporal_element_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
