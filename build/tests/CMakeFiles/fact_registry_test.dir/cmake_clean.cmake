file(REMOVE_RECURSE
  "CMakeFiles/fact_registry_test.dir/fact_registry_test.cc.o"
  "CMakeFiles/fact_registry_test.dir/fact_registry_test.cc.o.d"
  "fact_registry_test"
  "fact_registry_test.pdb"
  "fact_registry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fact_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
