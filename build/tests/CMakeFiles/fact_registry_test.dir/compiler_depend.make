# Empty compiler generated dependencies file for fact_registry_test.
# This may be replaced when dependencies are built.
