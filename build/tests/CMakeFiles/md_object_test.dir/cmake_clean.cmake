file(REMOVE_RECURSE
  "CMakeFiles/md_object_test.dir/md_object_test.cc.o"
  "CMakeFiles/md_object_test.dir/md_object_test.cc.o.d"
  "md_object_test"
  "md_object_test.pdb"
  "md_object_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/md_object_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
