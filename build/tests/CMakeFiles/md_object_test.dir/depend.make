# Empty dependencies file for md_object_test.
# This may be replaced when dependencies are built.
