# Empty dependencies file for mdql_test.
# This may be replaced when dependencies are built.
