file(REMOVE_RECURSE
  "CMakeFiles/mdql_test.dir/mdql_test.cc.o"
  "CMakeFiles/mdql_test.dir/mdql_test.cc.o.d"
  "mdql_test"
  "mdql_test.pdb"
  "mdql_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
