# Empty compiler generated dependencies file for bitemporal_ops_test.
# This may be replaced when dependencies are built.
