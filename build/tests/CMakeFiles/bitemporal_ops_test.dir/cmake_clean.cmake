file(REMOVE_RECURSE
  "CMakeFiles/bitemporal_ops_test.dir/bitemporal_ops_test.cc.o"
  "CMakeFiles/bitemporal_ops_test.dir/bitemporal_ops_test.cc.o.d"
  "bitemporal_ops_test"
  "bitemporal_ops_test.pdb"
  "bitemporal_ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitemporal_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
