# Empty dependencies file for relational_equivalence_test.
# This may be replaced when dependencies are built.
