file(REMOVE_RECURSE
  "CMakeFiles/relational_equivalence_test.dir/relational_equivalence_test.cc.o"
  "CMakeFiles/relational_equivalence_test.dir/relational_equivalence_test.cc.o.d"
  "relational_equivalence_test"
  "relational_equivalence_test.pdb"
  "relational_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relational_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
