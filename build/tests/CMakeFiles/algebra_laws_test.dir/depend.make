# Empty dependencies file for algebra_laws_test.
# This may be replaced when dependencies are built.
