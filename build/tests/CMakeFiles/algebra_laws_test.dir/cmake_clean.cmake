file(REMOVE_RECURSE
  "CMakeFiles/algebra_laws_test.dir/algebra_laws_test.cc.o"
  "CMakeFiles/algebra_laws_test.dir/algebra_laws_test.cc.o.d"
  "algebra_laws_test"
  "algebra_laws_test.pdb"
  "algebra_laws_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algebra_laws_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
