add_test([=[EndToEndTest.ClinicalStudyPipeline]=]  /root/repo/build/tests/end_to_end_test [==[--gtest_filter=EndToEndTest.ClinicalStudyPipeline]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[EndToEndTest.ClinicalStudyPipeline]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  end_to_end_test_TESTS EndToEndTest.ClinicalStudyPipeline)
