file(REMOVE_RECURSE
  "CMakeFiles/mdql_demo.dir/mdql_demo.cpp.o"
  "CMakeFiles/mdql_demo.dir/mdql_demo.cpp.o.d"
  "mdql_demo"
  "mdql_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdql_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
