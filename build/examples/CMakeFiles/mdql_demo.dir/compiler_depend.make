# Empty compiler generated dependencies file for mdql_demo.
# This may be replaced when dependencies are built.
