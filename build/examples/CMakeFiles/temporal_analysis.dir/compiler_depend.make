# Empty compiler generated dependencies file for temporal_analysis.
# This may be replaced when dependencies are built.
