file(REMOVE_RECURSE
  "CMakeFiles/temporal_analysis.dir/temporal_analysis.cpp.o"
  "CMakeFiles/temporal_analysis.dir/temporal_analysis.cpp.o.d"
  "temporal_analysis"
  "temporal_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temporal_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
