# Empty compiler generated dependencies file for mddc_shell.
# This may be replaced when dependencies are built.
