file(REMOVE_RECURSE
  "CMakeFiles/mddc_shell.dir/mddc_shell.cpp.o"
  "CMakeFiles/mddc_shell.dir/mddc_shell.cpp.o.d"
  "mddc_shell"
  "mddc_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mddc_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
