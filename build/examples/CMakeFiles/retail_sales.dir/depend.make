# Empty dependencies file for retail_sales.
# This may be replaced when dependencies are built.
