file(REMOVE_RECURSE
  "CMakeFiles/clinical_analysis.dir/clinical_analysis.cpp.o"
  "CMakeFiles/clinical_analysis.dir/clinical_analysis.cpp.o.d"
  "clinical_analysis"
  "clinical_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clinical_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
