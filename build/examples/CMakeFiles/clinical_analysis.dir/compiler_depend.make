# Empty compiler generated dependencies file for clinical_analysis.
# This may be replaced when dependencies are built.
