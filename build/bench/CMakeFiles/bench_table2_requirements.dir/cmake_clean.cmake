file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_requirements.dir/bench_table2_requirements.cpp.o"
  "CMakeFiles/bench_table2_requirements.dir/bench_table2_requirements.cpp.o.d"
  "bench_table2_requirements"
  "bench_table2_requirements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_requirements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
