file(REMOVE_RECURSE
  "CMakeFiles/bench_figure2_schema.dir/bench_figure2_schema.cpp.o"
  "CMakeFiles/bench_figure2_schema.dir/bench_figure2_schema.cpp.o.d"
  "bench_figure2_schema"
  "bench_figure2_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure2_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
