# Empty dependencies file for bench_theorem2_equivalence.
# This may be replaced when dependencies are built.
