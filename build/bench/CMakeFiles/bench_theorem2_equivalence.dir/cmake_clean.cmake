file(REMOVE_RECURSE
  "CMakeFiles/bench_theorem2_equivalence.dir/bench_theorem2_equivalence.cpp.o"
  "CMakeFiles/bench_theorem2_equivalence.dir/bench_theorem2_equivalence.cpp.o.d"
  "bench_theorem2_equivalence"
  "bench_theorem2_equivalence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theorem2_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
