file(REMOVE_RECURSE
  "CMakeFiles/bench_timeslice.dir/bench_timeslice.cpp.o"
  "CMakeFiles/bench_timeslice.dir/bench_timeslice.cpp.o.d"
  "bench_timeslice"
  "bench_timeslice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_timeslice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
