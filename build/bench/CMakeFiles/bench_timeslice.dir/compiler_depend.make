# Empty compiler generated dependencies file for bench_timeslice.
# This may be replaced when dependencies are built.
