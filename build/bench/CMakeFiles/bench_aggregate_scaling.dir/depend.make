# Empty dependencies file for bench_aggregate_scaling.
# This may be replaced when dependencies are built.
