# Empty dependencies file for bench_algebra_ops.
# This may be replaced when dependencies are built.
