file(REMOVE_RECURSE
  "CMakeFiles/bench_algebra_ops.dir/bench_algebra_ops.cpp.o"
  "CMakeFiles/bench_algebra_ops.dir/bench_algebra_ops.cpp.o.d"
  "bench_algebra_ops"
  "bench_algebra_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_algebra_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
