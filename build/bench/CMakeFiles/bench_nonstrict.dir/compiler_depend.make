# Empty compiler generated dependencies file for bench_nonstrict.
# This may be replaced when dependencies are built.
