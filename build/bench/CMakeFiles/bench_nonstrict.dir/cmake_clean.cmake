file(REMOVE_RECURSE
  "CMakeFiles/bench_nonstrict.dir/bench_nonstrict.cpp.o"
  "CMakeFiles/bench_nonstrict.dir/bench_nonstrict.cpp.o.d"
  "bench_nonstrict"
  "bench_nonstrict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nonstrict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
