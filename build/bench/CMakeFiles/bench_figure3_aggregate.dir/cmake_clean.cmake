file(REMOVE_RECURSE
  "CMakeFiles/bench_figure3_aggregate.dir/bench_figure3_aggregate.cpp.o"
  "CMakeFiles/bench_figure3_aggregate.dir/bench_figure3_aggregate.cpp.o.d"
  "bench_figure3_aggregate"
  "bench_figure3_aggregate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure3_aggregate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
