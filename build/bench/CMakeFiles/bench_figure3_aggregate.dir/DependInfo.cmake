
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_figure3_aggregate.cpp" "bench/CMakeFiles/bench_figure3_aggregate.dir/bench_figure3_aggregate.cpp.o" "gcc" "bench/CMakeFiles/bench_figure3_aggregate.dir/bench_figure3_aggregate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mddc_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mddc_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mddc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mddc_mdql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mddc_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mddc_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mddc_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mddc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mddc_temporal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mddc_uncertainty.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mddc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
