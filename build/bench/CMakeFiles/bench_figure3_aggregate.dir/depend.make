# Empty dependencies file for bench_figure3_aggregate.
# This may be replaced when dependencies are built.
