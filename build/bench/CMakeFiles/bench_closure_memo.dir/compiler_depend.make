# Empty compiler generated dependencies file for bench_closure_memo.
# This may be replaced when dependencies are built.
