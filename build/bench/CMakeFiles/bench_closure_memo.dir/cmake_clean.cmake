file(REMOVE_RECURSE
  "CMakeFiles/bench_closure_memo.dir/bench_closure_memo.cpp.o"
  "CMakeFiles/bench_closure_memo.dir/bench_closure_memo.cpp.o.d"
  "bench_closure_memo"
  "bench_closure_memo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_closure_memo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
