# Empty compiler generated dependencies file for bench_preagg_reuse.
# This may be replaced when dependencies are built.
