file(REMOVE_RECURSE
  "CMakeFiles/bench_preagg_reuse.dir/bench_preagg_reuse.cpp.o"
  "CMakeFiles/bench_preagg_reuse.dir/bench_preagg_reuse.cpp.o.d"
  "bench_preagg_reuse"
  "bench_preagg_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_preagg_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
