file(REMOVE_RECURSE
  "CMakeFiles/bench_wide_schema.dir/bench_wide_schema.cpp.o"
  "CMakeFiles/bench_wide_schema.dir/bench_wide_schema.cpp.o.d"
  "bench_wide_schema"
  "bench_wide_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wide_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
