# Empty dependencies file for bench_wide_schema.
# This may be replaced when dependencies are built.
