file(REMOVE_RECURSE
  "libmddc_io.a"
)
