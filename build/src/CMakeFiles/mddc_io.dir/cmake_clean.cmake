file(REMOVE_RECURSE
  "CMakeFiles/mddc_io.dir/io/csv.cc.o"
  "CMakeFiles/mddc_io.dir/io/csv.cc.o.d"
  "CMakeFiles/mddc_io.dir/io/serialize.cc.o"
  "CMakeFiles/mddc_io.dir/io/serialize.cc.o.d"
  "libmddc_io.a"
  "libmddc_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mddc_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
