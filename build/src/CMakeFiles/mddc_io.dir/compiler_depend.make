# Empty compiler generated dependencies file for mddc_io.
# This may be replaced when dependencies are built.
