file(REMOVE_RECURSE
  "CMakeFiles/mddc_mdql.dir/mdql/mdql.cc.o"
  "CMakeFiles/mddc_mdql.dir/mdql/mdql.cc.o.d"
  "CMakeFiles/mddc_mdql.dir/mdql/parser.cc.o"
  "CMakeFiles/mddc_mdql.dir/mdql/parser.cc.o.d"
  "CMakeFiles/mddc_mdql.dir/mdql/token.cc.o"
  "CMakeFiles/mddc_mdql.dir/mdql/token.cc.o.d"
  "libmddc_mdql.a"
  "libmddc_mdql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mddc_mdql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
