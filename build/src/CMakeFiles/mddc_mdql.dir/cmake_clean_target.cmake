file(REMOVE_RECURSE
  "libmddc_mdql.a"
)
