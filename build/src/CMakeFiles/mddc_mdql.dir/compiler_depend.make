# Empty compiler generated dependencies file for mddc_mdql.
# This may be replaced when dependencies are built.
