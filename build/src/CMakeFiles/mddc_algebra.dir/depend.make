# Empty dependencies file for mddc_algebra.
# This may be replaced when dependencies are built.
