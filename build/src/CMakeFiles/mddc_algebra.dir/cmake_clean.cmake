file(REMOVE_RECURSE
  "CMakeFiles/mddc_algebra.dir/algebra/agg_function.cc.o"
  "CMakeFiles/mddc_algebra.dir/algebra/agg_function.cc.o.d"
  "CMakeFiles/mddc_algebra.dir/algebra/derived.cc.o"
  "CMakeFiles/mddc_algebra.dir/algebra/derived.cc.o.d"
  "CMakeFiles/mddc_algebra.dir/algebra/expression.cc.o"
  "CMakeFiles/mddc_algebra.dir/algebra/expression.cc.o.d"
  "CMakeFiles/mddc_algebra.dir/algebra/operators.cc.o"
  "CMakeFiles/mddc_algebra.dir/algebra/operators.cc.o.d"
  "CMakeFiles/mddc_algebra.dir/algebra/predicate.cc.o"
  "CMakeFiles/mddc_algebra.dir/algebra/predicate.cc.o.d"
  "CMakeFiles/mddc_algebra.dir/algebra/timeslice.cc.o"
  "CMakeFiles/mddc_algebra.dir/algebra/timeslice.cc.o.d"
  "libmddc_algebra.a"
  "libmddc_algebra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mddc_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
