file(REMOVE_RECURSE
  "libmddc_algebra.a"
)
