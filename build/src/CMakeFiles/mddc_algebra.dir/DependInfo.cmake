
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algebra/agg_function.cc" "src/CMakeFiles/mddc_algebra.dir/algebra/agg_function.cc.o" "gcc" "src/CMakeFiles/mddc_algebra.dir/algebra/agg_function.cc.o.d"
  "/root/repo/src/algebra/derived.cc" "src/CMakeFiles/mddc_algebra.dir/algebra/derived.cc.o" "gcc" "src/CMakeFiles/mddc_algebra.dir/algebra/derived.cc.o.d"
  "/root/repo/src/algebra/expression.cc" "src/CMakeFiles/mddc_algebra.dir/algebra/expression.cc.o" "gcc" "src/CMakeFiles/mddc_algebra.dir/algebra/expression.cc.o.d"
  "/root/repo/src/algebra/operators.cc" "src/CMakeFiles/mddc_algebra.dir/algebra/operators.cc.o" "gcc" "src/CMakeFiles/mddc_algebra.dir/algebra/operators.cc.o.d"
  "/root/repo/src/algebra/predicate.cc" "src/CMakeFiles/mddc_algebra.dir/algebra/predicate.cc.o" "gcc" "src/CMakeFiles/mddc_algebra.dir/algebra/predicate.cc.o.d"
  "/root/repo/src/algebra/timeslice.cc" "src/CMakeFiles/mddc_algebra.dir/algebra/timeslice.cc.o" "gcc" "src/CMakeFiles/mddc_algebra.dir/algebra/timeslice.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mddc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mddc_uncertainty.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mddc_temporal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mddc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
