# Empty compiler generated dependencies file for mddc_baselines.
# This may be replaced when dependencies are built.
