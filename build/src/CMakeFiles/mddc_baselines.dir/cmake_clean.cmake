file(REMOVE_RECURSE
  "CMakeFiles/mddc_baselines.dir/baselines/conformance.cc.o"
  "CMakeFiles/mddc_baselines.dir/baselines/conformance.cc.o.d"
  "CMakeFiles/mddc_baselines.dir/baselines/data_cube.cc.o"
  "CMakeFiles/mddc_baselines.dir/baselines/data_cube.cc.o.d"
  "CMakeFiles/mddc_baselines.dir/baselines/star_schema.cc.o"
  "CMakeFiles/mddc_baselines.dir/baselines/star_schema.cc.o.d"
  "libmddc_baselines.a"
  "libmddc_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mddc_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
