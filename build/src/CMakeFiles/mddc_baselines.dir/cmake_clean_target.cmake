file(REMOVE_RECURSE
  "libmddc_baselines.a"
)
