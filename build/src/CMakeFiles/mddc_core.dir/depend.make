# Empty dependencies file for mddc_core.
# This may be replaced when dependencies are built.
