file(REMOVE_RECURSE
  "libmddc_core.a"
)
