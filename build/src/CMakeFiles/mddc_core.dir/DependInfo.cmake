
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aggregation.cc" "src/CMakeFiles/mddc_core.dir/core/aggregation.cc.o" "gcc" "src/CMakeFiles/mddc_core.dir/core/aggregation.cc.o.d"
  "/root/repo/src/core/dimension.cc" "src/CMakeFiles/mddc_core.dir/core/dimension.cc.o" "gcc" "src/CMakeFiles/mddc_core.dir/core/dimension.cc.o.d"
  "/root/repo/src/core/dimension_type.cc" "src/CMakeFiles/mddc_core.dir/core/dimension_type.cc.o" "gcc" "src/CMakeFiles/mddc_core.dir/core/dimension_type.cc.o.d"
  "/root/repo/src/core/fact.cc" "src/CMakeFiles/mddc_core.dir/core/fact.cc.o" "gcc" "src/CMakeFiles/mddc_core.dir/core/fact.cc.o.d"
  "/root/repo/src/core/fact_dim_relation.cc" "src/CMakeFiles/mddc_core.dir/core/fact_dim_relation.cc.o" "gcc" "src/CMakeFiles/mddc_core.dir/core/fact_dim_relation.cc.o.d"
  "/root/repo/src/core/md_object.cc" "src/CMakeFiles/mddc_core.dir/core/md_object.cc.o" "gcc" "src/CMakeFiles/mddc_core.dir/core/md_object.cc.o.d"
  "/root/repo/src/core/properties.cc" "src/CMakeFiles/mddc_core.dir/core/properties.cc.o" "gcc" "src/CMakeFiles/mddc_core.dir/core/properties.cc.o.d"
  "/root/repo/src/core/representation.cc" "src/CMakeFiles/mddc_core.dir/core/representation.cc.o" "gcc" "src/CMakeFiles/mddc_core.dir/core/representation.cc.o.d"
  "/root/repo/src/core/schema.cc" "src/CMakeFiles/mddc_core.dir/core/schema.cc.o" "gcc" "src/CMakeFiles/mddc_core.dir/core/schema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mddc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mddc_temporal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
