file(REMOVE_RECURSE
  "CMakeFiles/mddc_core.dir/core/aggregation.cc.o"
  "CMakeFiles/mddc_core.dir/core/aggregation.cc.o.d"
  "CMakeFiles/mddc_core.dir/core/dimension.cc.o"
  "CMakeFiles/mddc_core.dir/core/dimension.cc.o.d"
  "CMakeFiles/mddc_core.dir/core/dimension_type.cc.o"
  "CMakeFiles/mddc_core.dir/core/dimension_type.cc.o.d"
  "CMakeFiles/mddc_core.dir/core/fact.cc.o"
  "CMakeFiles/mddc_core.dir/core/fact.cc.o.d"
  "CMakeFiles/mddc_core.dir/core/fact_dim_relation.cc.o"
  "CMakeFiles/mddc_core.dir/core/fact_dim_relation.cc.o.d"
  "CMakeFiles/mddc_core.dir/core/md_object.cc.o"
  "CMakeFiles/mddc_core.dir/core/md_object.cc.o.d"
  "CMakeFiles/mddc_core.dir/core/properties.cc.o"
  "CMakeFiles/mddc_core.dir/core/properties.cc.o.d"
  "CMakeFiles/mddc_core.dir/core/representation.cc.o"
  "CMakeFiles/mddc_core.dir/core/representation.cc.o.d"
  "CMakeFiles/mddc_core.dir/core/schema.cc.o"
  "CMakeFiles/mddc_core.dir/core/schema.cc.o.d"
  "libmddc_core.a"
  "libmddc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mddc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
