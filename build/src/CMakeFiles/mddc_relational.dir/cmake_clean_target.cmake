file(REMOVE_RECURSE
  "libmddc_relational.a"
)
