
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relational/algebra.cc" "src/CMakeFiles/mddc_relational.dir/relational/algebra.cc.o" "gcc" "src/CMakeFiles/mddc_relational.dir/relational/algebra.cc.o.d"
  "/root/repo/src/relational/relation.cc" "src/CMakeFiles/mddc_relational.dir/relational/relation.cc.o" "gcc" "src/CMakeFiles/mddc_relational.dir/relational/relation.cc.o.d"
  "/root/repo/src/relational/translation.cc" "src/CMakeFiles/mddc_relational.dir/relational/translation.cc.o" "gcc" "src/CMakeFiles/mddc_relational.dir/relational/translation.cc.o.d"
  "/root/repo/src/relational/value.cc" "src/CMakeFiles/mddc_relational.dir/relational/value.cc.o" "gcc" "src/CMakeFiles/mddc_relational.dir/relational/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mddc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mddc_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mddc_temporal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mddc_uncertainty.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mddc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
