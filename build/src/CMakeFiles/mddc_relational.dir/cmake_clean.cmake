file(REMOVE_RECURSE
  "CMakeFiles/mddc_relational.dir/relational/algebra.cc.o"
  "CMakeFiles/mddc_relational.dir/relational/algebra.cc.o.d"
  "CMakeFiles/mddc_relational.dir/relational/relation.cc.o"
  "CMakeFiles/mddc_relational.dir/relational/relation.cc.o.d"
  "CMakeFiles/mddc_relational.dir/relational/translation.cc.o"
  "CMakeFiles/mddc_relational.dir/relational/translation.cc.o.d"
  "CMakeFiles/mddc_relational.dir/relational/value.cc.o"
  "CMakeFiles/mddc_relational.dir/relational/value.cc.o.d"
  "libmddc_relational.a"
  "libmddc_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mddc_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
