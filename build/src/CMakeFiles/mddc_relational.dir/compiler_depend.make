# Empty compiler generated dependencies file for mddc_relational.
# This may be replaced when dependencies are built.
