file(REMOVE_RECURSE
  "libmddc_temporal.a"
)
