
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/temporal/bitemporal.cc" "src/CMakeFiles/mddc_temporal.dir/temporal/bitemporal.cc.o" "gcc" "src/CMakeFiles/mddc_temporal.dir/temporal/bitemporal.cc.o.d"
  "/root/repo/src/temporal/interval.cc" "src/CMakeFiles/mddc_temporal.dir/temporal/interval.cc.o" "gcc" "src/CMakeFiles/mddc_temporal.dir/temporal/interval.cc.o.d"
  "/root/repo/src/temporal/temporal_element.cc" "src/CMakeFiles/mddc_temporal.dir/temporal/temporal_element.cc.o" "gcc" "src/CMakeFiles/mddc_temporal.dir/temporal/temporal_element.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mddc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
