file(REMOVE_RECURSE
  "CMakeFiles/mddc_temporal.dir/temporal/bitemporal.cc.o"
  "CMakeFiles/mddc_temporal.dir/temporal/bitemporal.cc.o.d"
  "CMakeFiles/mddc_temporal.dir/temporal/interval.cc.o"
  "CMakeFiles/mddc_temporal.dir/temporal/interval.cc.o.d"
  "CMakeFiles/mddc_temporal.dir/temporal/temporal_element.cc.o"
  "CMakeFiles/mddc_temporal.dir/temporal/temporal_element.cc.o.d"
  "libmddc_temporal.a"
  "libmddc_temporal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mddc_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
