# Empty compiler generated dependencies file for mddc_temporal.
# This may be replaced when dependencies are built.
