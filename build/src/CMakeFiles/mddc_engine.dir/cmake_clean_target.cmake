file(REMOVE_RECURSE
  "libmddc_engine.a"
)
