# Empty dependencies file for mddc_engine.
# This may be replaced when dependencies are built.
