file(REMOVE_RECURSE
  "CMakeFiles/mddc_engine.dir/engine/advisor.cc.o"
  "CMakeFiles/mddc_engine.dir/engine/advisor.cc.o.d"
  "CMakeFiles/mddc_engine.dir/engine/preagg_cache.cc.o"
  "CMakeFiles/mddc_engine.dir/engine/preagg_cache.cc.o.d"
  "libmddc_engine.a"
  "libmddc_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mddc_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
