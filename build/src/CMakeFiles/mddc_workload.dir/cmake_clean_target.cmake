file(REMOVE_RECURSE
  "libmddc_workload.a"
)
