file(REMOVE_RECURSE
  "CMakeFiles/mddc_workload.dir/workload/case_study.cc.o"
  "CMakeFiles/mddc_workload.dir/workload/case_study.cc.o.d"
  "CMakeFiles/mddc_workload.dir/workload/clinical_generator.cc.o"
  "CMakeFiles/mddc_workload.dir/workload/clinical_generator.cc.o.d"
  "CMakeFiles/mddc_workload.dir/workload/retail_generator.cc.o"
  "CMakeFiles/mddc_workload.dir/workload/retail_generator.cc.o.d"
  "libmddc_workload.a"
  "libmddc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mddc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
