# Empty dependencies file for mddc_workload.
# This may be replaced when dependencies are built.
