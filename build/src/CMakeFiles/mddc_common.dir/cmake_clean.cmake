file(REMOVE_RECURSE
  "CMakeFiles/mddc_common.dir/common/date.cc.o"
  "CMakeFiles/mddc_common.dir/common/date.cc.o.d"
  "CMakeFiles/mddc_common.dir/common/status.cc.o"
  "CMakeFiles/mddc_common.dir/common/status.cc.o.d"
  "CMakeFiles/mddc_common.dir/common/strings.cc.o"
  "CMakeFiles/mddc_common.dir/common/strings.cc.o.d"
  "CMakeFiles/mddc_common.dir/common/table_printer.cc.o"
  "CMakeFiles/mddc_common.dir/common/table_printer.cc.o.d"
  "libmddc_common.a"
  "libmddc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mddc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
