# Empty compiler generated dependencies file for mddc_common.
# This may be replaced when dependencies are built.
