file(REMOVE_RECURSE
  "libmddc_common.a"
)
