file(REMOVE_RECURSE
  "libmddc_uncertainty.a"
)
