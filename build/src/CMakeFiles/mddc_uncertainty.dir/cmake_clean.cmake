file(REMOVE_RECURSE
  "CMakeFiles/mddc_uncertainty.dir/uncertainty/probability.cc.o"
  "CMakeFiles/mddc_uncertainty.dir/uncertainty/probability.cc.o.d"
  "libmddc_uncertainty.a"
  "libmddc_uncertainty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mddc_uncertainty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
