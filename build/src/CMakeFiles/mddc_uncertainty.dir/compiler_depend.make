# Empty compiler generated dependencies file for mddc_uncertainty.
# This may be replaced when dependencies are built.
